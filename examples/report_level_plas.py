#!/usr/bin/env python
"""All five §5 annotation kinds, enforced one by one (Fig 4 in depth).

Demonstrates: (i) attribute access, (ii) aggregation thresholds,
(iii) anonymization, (iv) join prohibitions, (v) integration permissions,
plus the hidden-column intensional condition ("exam results shown only for
patients that are not HIV positive").

Run: python examples/report_level_plas.py
"""

from repro.anonymize import Pseudonymizer
from repro.core import (
    PLA,
    AggregationThreshold,
    AnonymizationRequirement,
    AttributeAccess,
    ComplianceChecker,
    IntegrationPermission,
    IntensionalCondition,
    JoinPermission,
    MetaReport,
    MetaReportSet,
    PlaLevel,
    PlaRegistry,
    ReportLevelEnforcer,
    to_etl_registry,
)
from repro.policy import SubjectRegistry
from repro.relational import Catalog, Query, Table, View, make_schema, parse_expression, parse_query
from repro.relational.types import ColumnType
from repro.reports import ReportDefinition

COLUMNS = ("patient", "drug", "disease", "result", "cost")


def build_world() -> Catalog:
    catalog = Catalog()
    schema = make_schema(
        ("patient", ColumnType.STRING),
        ("drug", ColumnType.STRING),
        ("disease", ColumnType.STRING),
        ("result", ColumnType.STRING),
        ("cost", ColumnType.INT),
    )
    rows = [
        ("Alice", "DH", "HIV", "cd4: low", 60),
        ("Chris", "DV", "HIV", "cd4: ok", 30),
        ("Bob", "DR", "asthma", "spiro: 82%", 10),
        ("Dana", "DR", "asthma", "spiro: 91%", 10),
        ("Math", "DM", "diabetes", "hba1c: 7.1", 10),
        ("Elio", "DR", "asthma", "spiro: 77%", 10),
    ]
    catalog.add_table(Table.from_rows("base", schema, rows, provider="hospital"))
    catalog.add_view(View("wide", Query.from_("base").project(*COLUMNS)))
    return catalog


def main() -> None:
    catalog = build_world()

    metareports = MetaReportSet()
    metareport = MetaReport("mr", Query.from_("wide").project(*COLUMNS))
    registry = PlaRegistry()
    pla = PLA(
        name="pla_mr",
        owner="hospital",
        level=PlaLevel.METAREPORT,
        target="mr",
        annotations=(
            # (i) who can access an attribute
            AttributeAccess("patient", frozenset({"health_director", "analyst"})),
            # (ii) aggregation requirement
            AggregationThreshold(min_group_size=2, scope="patient"),
            # (iii) anonymization requirement
            AnonymizationRequirement("patient", "pseudonymize"),
            # (iv) join prohibition (source vocabulary)
            JoinPermission("municipality/residents", "laboratory/exams", False),
            # (v) integration permission
            IntegrationPermission(owner="municipality", allowed=True),
            # intensional, instance-specific condition with a hidden column
            IntensionalCondition(
                attribute="result",
                condition=parse_expression("disease != 'HIV'"),
                action="suppress_cell",
            ),
        ),
    )
    registry.add(pla)
    metareport.attach_pla(registry.approve("pla_mr"))
    metareports.add(metareport)
    metareports.register_views(catalog)

    print("The owner's PLA on the meta-report:")
    print(metareport.pla.describe())

    subjects = SubjectRegistry()
    subjects.purposes.declare("care/quality")
    for role in ("analyst", "municipality_official"):
        subjects.add_role(role)
    subjects.add_user("ann", "analyst")
    checker = ComplianceChecker(catalog=catalog, metareports=metareports)
    enforcer = ReportLevelEnforcer(
        catalog=catalog, pseudonymizer=Pseudonymizer(salt="demo")
    )

    # -- the paper's §5 example: exam results, HIV column hidden -------------
    exam_report = ReportDefinition(
        name="exam_results",
        title="Examination results",
        query=parse_query("SELECT patient, result FROM wide"),
        audience=frozenset({"analyst"}),
        purpose="care/quality",
    )
    verdict = checker.check_report(exam_report)
    print(f"\n{verdict.summary()}")
    if not verdict.compliant:
        # record-level exposure violates (ii); narrow the audience/report:
        print("  -> record-level report blocked by the aggregation threshold;")
        print("     demonstrating the aggregate path instead.")

    agg_report = ReportDefinition(
        name="cost_by_disease",
        title="Cost by disease",
        query=parse_query(
            "SELECT disease, SUM(cost) AS total FROM wide GROUP BY disease"
        ),
        audience=frozenset({"analyst"}),
        purpose="care/quality",
    )
    verdict = checker.check_report(agg_report)
    print(f"\n{verdict.summary()}")
    instance = enforcer.generate(
        agg_report, subjects.context("ann", "care/quality"), verdict
    )
    print(instance.table.pretty())
    print(f"(suppressed {instance.suppressed_rows} undersized group(s); "
          "HIV rows never contributed)")

    # -- audience violation: wrong role asks for patient data ---------------
    blocked = ReportDefinition(
        name="patients_for_muni",
        title="Patient list",
        query=parse_query("SELECT patient, COUNT(*) AS n FROM wide GROUP BY patient"),
        audience=frozenset({"municipality_official"}),
        purpose="care/quality",
    )
    print(f"\n{checker.check_report(blocked).summary()}")

    # -- (iv)+(v) projected into the ETL layer -------------------------------
    etl_registry = to_etl_registry([metareport.pla])
    print("\nETL constraints derived from the PLA:")
    print(etl_registry.describe())


if __name__ == "__main__":
    main()
