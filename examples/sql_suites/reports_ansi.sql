-- Healthcare BI report suite: chronic-disease cost monitoring.
-- ANSI core: a CREATE VIEW chain feeding aggregate and UNION reports.

CREATE VIEW chronic_rx AS
SELECT drug, disease, doctor, zip, birth_year, gender, date, cost
FROM wide_prescriptions
WHERE disease IN ('diabetes', 'hypertension', 'asthma');

CREATE VIEW chronic_rx_recent AS
SELECT drug, disease, doctor, zip, cost
FROM chronic_rx
WHERE date >= DATE '2007-01-01';

-- report: chronic_cost_by_drug
-- title: Chronic-care cost by drug
-- audience: analyst auditor
-- purpose: care/quality
SELECT drug, COUNT(*) AS prescriptions, SUM(cost) AS total_cost
FROM chronic_rx_recent
GROUP BY drug
ORDER BY total_cost DESC;

-- report: high_cost_regions
-- title: Regions with costly prescriptions, chronic or otherwise
-- audience: analyst
-- purpose: care/quality
SELECT zip, cost FROM chronic_rx_recent WHERE cost > 500
UNION
SELECT zip, cost FROM wide_prescriptions WHERE cost > 2000;
