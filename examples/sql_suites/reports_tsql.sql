-- dialect: tsql
-- T-SQL flavored: [bracketed] identifiers, SELECT TOP n (rewritten to
-- LIMIT during normalization), and a nested FROM subquery.

CREATE VIEW flu_rx AS
SELECT [drug], [disease], [doctor], [zip], [date], [cost]
FROM [wide_prescriptions]
WHERE [disease] = 'flu';

-- report: top_flu_drugs
-- title: Ten most prescribed flu drugs
-- audience: analyst auditor
-- purpose: care/quality
SELECT TOP 10 drug, COUNT(*) AS prescriptions
FROM flu_rx
GROUP BY drug
ORDER BY prescriptions DESC;

-- report: costly_flu_regions
-- title: Costly flu prescriptions by region
-- audience: analyst
-- purpose: care/quality
SELECT zip, SUM(cost) AS total_cost
FROM (SELECT [zip], [cost] FROM flu_rx WHERE [cost] > 50) AS costly
GROUP BY zip;
