-- TPC-H-style workload rewritten over the healthcare star schema.
-- The fact table plays lineitem; the dimension tables play part,
-- supplier, and customer. Q1's pricing summary, Q6's revenue band,
-- Q14's promo share, and Q17's small-quantity probe become
-- prescription-cost analytics over wide_prescriptions.

-- Q17 flavor: prescriptions priced above the corpus-wide average.
-- The scalar subquery compiles to a name-mangled single-row aggregate
-- view cross-joined into this block, so the staging view exercises
-- scalar-subquery lineage end to end.
CREATE VIEW above_typical_rx AS
SELECT drug, disease, zip, date, cost
FROM wide_prescriptions
WHERE cost > (SELECT AVG(cost) AS typical_cost FROM wide_prescriptions);

-- Q14 flavor: promo-eligible rows picked by a searched CASE predicate.
CREATE VIEW promo_rx AS
SELECT drug, disease, zip, date, cost
FROM wide_prescriptions
WHERE (CASE WHEN disease = 'flu' THEN cost ELSE 0 END) > 0;

-- report: pricing_summary
-- title: Pricing summary by drug (TPC-H Q1 flavor)
-- audience: analyst auditor
-- purpose: care/quality
SELECT drug, COUNT(*) AS prescriptions, SUM(cost) AS total_cost,
       AVG(cost) AS avg_cost, MIN(cost) AS min_cost, MAX(cost) AS max_cost
FROM wide_prescriptions
GROUP BY drug
ORDER BY drug;

-- report: discount_revenue
-- title: Revenue from low-cost 2007 prescriptions (TPC-H Q6 flavor)
-- audience: analyst
-- purpose: care/quality
SELECT SUM(cost) AS revenue
FROM wide_prescriptions
WHERE date >= DATE '2007-01-01' AND date < DATE '2008-01-01' AND cost < 100;

-- report: promo_cost_share
-- title: Promo-eligible prescription cost by drug (TPC-H Q14 flavor)
-- audience: analyst
-- purpose: care/quality
SELECT drug, SUM(cost) AS promo_cost
FROM promo_rx
GROUP BY drug
ORDER BY promo_cost DESC;

-- report: price_band_catalog
-- title: Catalog of prescriptions by price band (searched CASE projection)
-- audience: analyst
-- purpose: care/quality
SELECT drug, disease,
       CASE WHEN cost > 500 THEN 'premium'
            WHEN cost > 100 THEN 'standard'
            ELSE 'economy' END AS price_band
FROM wide_prescriptions
WHERE date >= DATE '2007-01-01';
