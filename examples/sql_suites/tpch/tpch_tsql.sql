-- dialect: tsql
-- TPC-H Q2/Q3/Q18 flavors in T-SQL dress: [bracketed] identifiers,
-- TOP n both at the outer level and inside a subquery (each rewrite is
-- scoped to its own SELECT), and a FULL JOIN staging view.

-- Q2 flavor: every doctor matched against the costly prescriptions they
-- wrote, keeping doctors with none and orphaned rows alike (FULL JOIN).
CREATE VIEW costly_rx AS
SELECT [doctor] AS costly_doctor, [drug], [cost]
FROM [wide_prescriptions]
WHERE [cost] > 500;

CREATE VIEW doctor_cost_coverage AS
SELECT [doctor], [drug], [cost]
FROM [dim_doctor]
FULL JOIN [costly_rx] ON [doctor] = [costly_doctor];

-- Q18 flavor staging: the newest prescriptions sampled with TOP inside
-- a subquery, then re-filtered outside it.
CREATE VIEW recent_rx_sample AS
SELECT [drug], [cost]
FROM (SELECT TOP 1000 [drug], [cost], [date]
      FROM [wide_prescriptions]
      ORDER BY [date] DESC) AS newest
WHERE [cost] > 0;

-- report: top_spend_drugs
-- title: Five drugs with the highest total spend (TPC-H Q3 flavor)
-- audience: analyst auditor
-- purpose: care/quality
SELECT TOP 5 [drug], SUM([cost]) AS [total_cost]
FROM [wide_prescriptions]
GROUP BY [drug]
ORDER BY [total_cost] DESC;

-- report: gender_case_mix
-- title: Case mix for female patients via a simple CASE predicate
-- audience: analyst
-- purpose: care/quality
SELECT [disease], COUNT(*) AS [prescriptions]
FROM [wide_prescriptions]
WHERE (CASE [gender] WHEN 'F' THEN 1 ELSE 0 END) = 1
GROUP BY [disease];
