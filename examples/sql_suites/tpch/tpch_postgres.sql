-- dialect: postgres
-- TPC-H Q2/Q8 flavors Postgres-style: "quoted" identifiers, ::casts
-- inside CASE arms and aggregate arguments (dropped during
-- normalization), and a RIGHT JOIN staging view.

-- Q2 flavor: every drug in the catalog, with its costly prescriptions
-- where they exist (RIGHT JOIN keeps drugs never prescribed).
CREATE VIEW costly_rx_named AS
SELECT "drug" AS costly_drug, "cost", "zip"
FROM "wide_prescriptions"
WHERE "cost"::numeric > 250;

CREATE VIEW drug_market_coverage AS
SELECT "drug", "cost", "zip"
FROM "costly_rx_named"
RIGHT JOIN "dim_drug" ON "costly_drug" = "drug";

-- report: seasonal_cost_profile
-- title: Average cost of costly prescriptions by disease (TPC-H Q8 flavor)
-- audience: analyst
-- purpose: care/quality
SELECT "disease", AVG("cost"::numeric) AS avg_cost
FROM "wide_prescriptions"
WHERE (CASE WHEN "cost"::numeric > 100 THEN 'costly' ELSE 'routine' END) = 'costly'
GROUP BY "disease"
ORDER BY avg_cost DESC;

-- report: regional_cohort_spend
-- title: Prescription spend by region for the post-1940 cohort
-- audience: analyst auditor
-- purpose: care/quality
WITH banded AS (
    SELECT "zip", "cost" FROM "wide_prescriptions" WHERE "birth_year" >= 1940
)
SELECT zip, COUNT(*) AS prescriptions, SUM(cost) AS total_cost
FROM banded
GROUP BY zip;
