-- dialect: postgres
-- The same warehouse queried Postgres-style: quoted identifiers,
-- ::type casts (dropped during normalization), and WITH (CTE) reports.

CREATE VIEW elderly_rx AS
SELECT "drug", "disease", "zip", "birth_year", "cost"
FROM "wide_prescriptions"
WHERE "birth_year" < 1950;

-- report: elderly_cost_by_disease
-- title: Elderly prescription cost by disease
-- audience: analyst
-- purpose: care/quality
WITH eligible AS (
    SELECT "disease", "zip", "cost"
    FROM elderly_rx
    WHERE "cost"::numeric > 0
)
SELECT disease, COUNT(*) AS prescriptions, AVG(cost) AS avg_cost
FROM eligible
GROUP BY disease;

-- report: elderly_dense_regions
-- title: Regions with many elderly prescriptions
-- audience: analyst auditor
-- purpose: care/quality
WITH dense AS (
    SELECT "zip", "cost" FROM elderly_rx WHERE "cost" > 100
)
SELECT zip, COUNT(*) AS prescriptions
FROM dense
GROUP BY zip
ORDER BY prescriptions DESC;
