#!/usr/bin/env python
"""An elicitation sitting, end to end: present → negotiate → finalize → gate.

Models §5's elicitation tool session: the BI provider presents a meta-report
(columns, sample values, provenance), negotiates the aggregation threshold
and the patient-attribute audience with a simulated owner, files the agreed
PLA, and immediately uses it to gate a new report.

Run: python examples/elicitation_session.py
"""

import random

from repro.core import (
    AnonymizationRequirement,
    ComplianceChecker,
    ElicitationTool,
    IntensionalCondition,
    MetaReport,
    MetaReportSet,
    PlaRegistry,
    analyze_coverage,
)
from repro.relational import Catalog, Query, View, parse_expression, parse_query
from repro.reports import ReportDefinition
from repro.simulation import OwnerPreferences, negotiate_audience, negotiate_threshold
from repro.workloads import paper_prescriptions

COLUMNS = ("patient", "doctor", "drug", "disease", "date")


def main() -> None:
    catalog = Catalog()
    catalog.add_table(paper_prescriptions())
    catalog.add_view(
        View("wide", Query.from_("prescriptions").project(*COLUMNS))
    )
    metareports = MetaReportSet()
    metareport = metareports.add(
        MetaReport(
            "mr_prescriptions",
            Query.from_("wide").project(*COLUMNS),
            description="everything prescription reports may draw from",
        )
    )
    metareports.register_views(catalog)

    # 1. Present the artifact the way the owner sees it.
    tool = ElicitationTool(catalog=catalog)
    print(tool.present(metareport))

    # 2. Negotiate the two contentious annotations.
    rng = random.Random(42)
    owner = OwnerPreferences(
        min_threshold=3,
        forbidden_roles=frozenset({"municipality_official"}),
        comprehension=0.9,
    )
    threshold = negotiate_threshold(
        owner, opening=2, artifact_kind="metareport", rng=rng
    )
    print("\nThreshold negotiation:")
    for line in threshold.transcript:
        print(f"  {line}")
    audience = negotiate_audience(
        owner,
        attribute="patient",
        opening_roles=frozenset(
            {"analyst", "health_director", "municipality_official"}
        ),
        artifact_kind="metareport",
        rng=rng,
    )
    print("Audience negotiation:")
    for line in audience.transcript:
        print(f"  {line}")

    # 3. Collect the agreed annotations and finalize the PLA.
    tool.propose(metareport, threshold.final)
    tool.propose(metareport, audience.final)
    tool.propose(
        metareport, AnonymizationRequirement("patient", "pseudonymize")
    )
    tool.propose(
        metareport,
        IntensionalCondition(
            "disease", parse_expression("disease != 'HIV'"), "suppress_row"
        ),
    )
    registry = PlaRegistry()
    pla = tool.finalize(metareport, owner="hospital", registry=registry)
    print("\nAgreed PLA:")
    print(pla.describe())

    # 4. Gap analysis: does the agreement cover the stated requirements?
    coverage = analyze_coverage(metareports, list(pla.annotations))
    print(f"\n{coverage.summary()}")

    # 5. The agreement immediately gates new reports.
    checker = ComplianceChecker(catalog=catalog, metareports=metareports)
    report = ReportDefinition(
        name="drug_consumption",
        title="Drug consumption",
        query=parse_query(
            "SELECT drug, COUNT(*) AS n FROM mr_prescriptions GROUP BY drug"
        ),
        audience=frozenset({"analyst"}),
        purpose="care/quality",
    )
    print(f"\nGate: {checker.check_report(report).summary()}")
    blocked_patient = ReportDefinition(
        name="patient_list",
        title="Patients",
        query=parse_query(
            "SELECT patient, COUNT(*) AS n FROM mr_prescriptions GROUP BY patient"
        ),
        audience=frozenset({"municipality_official"}),
        purpose="care/quality",
    )
    print(f"Gate: {checker.check_report(blocked_patient).summary()}")


if __name__ == "__main__":
    main()
