#!/usr/bin/env python
"""Source-level enforcement (Fig 2): the filter/anonymization gateway.

A low-IT-skill municipality chooses the SOURCE_ENFORCES posture: everything
it exports passes through consent-driven cell policies, intensional
restrictions, and a k-anonymization pass — before the BI provider sees a
single row.

Run: python examples/anonymization_pipeline.py
"""

from repro.anonymize import (
    Pseudonymizer,
    QuasiIdentifier,
    average_class_size,
    discernibility,
    is_k_anonymous,
    is_l_diverse,
)
from repro.bench import print_table
from repro.policy import IntensionalAssociation, SubjectRegistry
from repro.relational import parse_expression
from repro.sources import (
    CellPolicy,
    ConsentRegistry,
    DataProvider,
    ProviderKind,
    SourceGateway,
)
from repro.workloads import HealthcareConfig, generate


def main() -> None:
    data = generate(HealthcareConfig(n_patients=150, n_prescriptions=600, seed=21))

    hospital = DataProvider("hospital", ProviderKind.HOSPITAL)
    hospital.add_table(data.prescriptions)
    hospital.consents = ConsentRegistry.from_policies_table(data.policies)
    hospital.metadata.add(
        IntensionalAssociation(
            "hiv-rows-stay-home",
            "prescriptions",
            parse_expression("disease = 'HIV'"),
            {"deny_row": True},
        )
    )

    gateway = SourceGateway(hospital, pseudonymizer=Pseudonymizer(salt="muni"))
    gateway.add_cell_policy(CellPolicy("patient", "show_name", "pseudonymize"))
    gateway.add_cell_policy(CellPolicy("disease", "show_disease", "suppress"))

    subjects = SubjectRegistry()
    subjects.purposes.declare("care/quality")
    subjects.add_role("bi_provider")
    subjects.add_user("bi", "bi_provider")
    context = subjects.context("bi", "care/quality")

    exported, report = gateway.export_table("prescriptions", context)
    print("Gateway report:", report.summary())
    print("\nFirst rows as the BI provider receives them:")
    print(exported.pretty(6))

    # Municipality residents with a k-anonymization pass.
    municipality = DataProvider("municipality", ProviderKind.MUNICIPALITY)
    municipality.add_table(data.residents)
    muni_gateway = SourceGateway(municipality, enforce_purpose=False)
    rows = []
    for k in (2, 5, 10, 25):
        muni_gateway.require_k_anonymity(
            [QuasiIdentifier("zip"), QuasiIdentifier("birth_year")], k=k
        )
        released, _ = muni_gateway.export_table("residents", context)
        assert is_k_anonymous(released, ["zip", "birth_year"], k)
        diversity = is_l_diverse(released, ["zip", "birth_year"], "gender", 2)
        rows.append(
            {
                "k": k,
                "rows": len(released),
                "discernibility": discernibility(released, ["zip", "birth_year"]),
                "l2_diverse_classes": diversity.classes_total - diversity.classes_failing,
                "classes": diversity.classes_total,
                "avg_class_size": average_class_size(
                    released, ["zip", "birth_year"]
                ),
            }
        )
    print_table(rows, title="k-anonymity: privacy vs utility at the gateway")


if __name__ == "__main__":
    main()
