#!/usr/bin/env python
"""Quickstart: the paper's running example in ~60 lines.

Builds the Prescriptions table from Figures 2-4, attaches a report-level PLA
with an aggregation threshold and the intensional "no HIV rows" condition,
checks the Fig 4 drug-consumption report for compliance, and generates it
with enforcement applied.

Run: python examples/quickstart.py
"""

from repro.core import (
    PLA,
    AggregationThreshold,
    ComplianceChecker,
    IntensionalCondition,
    MetaReport,
    MetaReportSet,
    PlaLevel,
    PlaRegistry,
    ReportLevelEnforcer,
)
from repro.policy import SubjectRegistry
from repro.relational import Catalog, Query, parse_expression, parse_query
from repro.reports import ReportDefinition
from repro.workloads import paper_prescriptions


def main() -> None:
    # 1. The source data (Fig 2-4's Prescriptions table).
    catalog = Catalog()
    catalog.add_table(paper_prescriptions())
    print("Source data:")
    print(catalog.table("prescriptions").pretty())

    # 2. A meta-report over it, with the owner's PLA annotations (§5).
    metareports = MetaReportSet()
    metareport = MetaReport(
        "mr_prescriptions",
        Query.from_("prescriptions").project(
            "patient", "doctor", "drug", "disease", "date"
        ),
    )
    registry = PlaRegistry()
    pla = PLA(
        name="pla_prescriptions",
        owner="hospital",
        level=PlaLevel.METAREPORT,
        target="mr_prescriptions",
        annotations=(
            AggregationThreshold(min_group_size=2, scope="patient"),
            IntensionalCondition(
                attribute="disease",
                condition=parse_expression("disease != 'HIV'"),
                action="suppress_row",
            ),
        ),
    )
    registry.add(pla)
    metareport.attach_pla(registry.approve("pla_prescriptions"))
    metareports.add(metareport)
    metareports.register_views(catalog)
    print("\nAgreed PLA:")
    print(metareport.pla.describe())

    # 3. The Fig 4 report, authored over the meta-report.
    report = ReportDefinition(
        name="drug_consumption",
        title="Drug consumption",
        query=parse_query(
            "SELECT drug, COUNT(*) AS consumption "
            "FROM mr_prescriptions GROUP BY drug ORDER BY drug"
        ),
        audience=frozenset({"analyst"}),
        purpose="care/quality",
    )

    # 4. Compliance check (testable *before* deployment — the paper's point).
    checker = ComplianceChecker(catalog=catalog, metareports=metareports)
    verdict = checker.check_report(report)
    print(f"\nCompliance verdict: {verdict.summary()}")

    # 5. Enforced generation.
    subjects = SubjectRegistry()
    subjects.purposes.declare("care/quality")
    subjects.add_role("analyst")
    subjects.add_user("ann", "analyst")
    enforcer = ReportLevelEnforcer(catalog=catalog)
    instance = enforcer.generate(
        report, subjects.context("ann", "care/quality"), verdict
    )
    print("\nDelivered report (HIV rows dropped, groups < 2 suppressed):")
    print(instance.table.pretty())
    print(f"\n{instance.suppressed_rows} group(s) suppressed by the threshold.")


if __name__ == "__main__":
    main()
