#!/usr/bin/env python
"""The full Fig 1 scenario: providers → ETL → warehouse → reports → audit.

Builds the complete outsourced-BI deployment (four providers with consents,
annotated ETL, star-schema warehouse, generated report workload,
meta-reports with PLAs), delivers every compliant report to its audience,
and closes the loop with a third-party audit of the disclosure log.

Run: python examples/healthcare_outsourcing.py
"""

from repro.audit import AuditLog, Auditor
from repro.bench import print_table
from repro.simulation import build_scenario

ROLE_TO_USER = {
    "analyst": "ann",
    "auditor": "aldo",
    "health_director": "dora",
    "municipality_official": "mara",
}


def main() -> None:
    scenario = build_scenario()

    print("Providers (Fig 1):")
    for provider in scenario.providers.values():
        print(f"  {provider.describe()}")

    print(f"\nETL flow: {scenario.flow_result.summary()}")
    print(scenario.flow.describe())

    wide = scenario.bi_catalog.table("dwh_prescriptions")
    print(f"\nWarehouse wide table: {len(wide)} rows, columns {wide.schema.names}")
    print("Provenance explanation (the elicitation GUI's view):")
    print(scenario.provenance.explain("dwh_prescriptions"))

    print(f"\nMeta-reports ({len(scenario.metareports)}):")
    for metareport in scenario.metareports:
        print(f"  {metareport.describe()}")

    # Check the whole report catalog before operation (§6: testing first).
    verdicts = scenario.checker.check_catalog(scenario.report_catalog.all_current())
    compliant = [v for v in verdicts.values() if v.compliant]
    print(
        f"\nCompliance: {len(compliant)}/{len(verdicts)} reports deployable as-is"
    )
    for verdict in verdicts.values():
        if not verdict.compliant:
            print(f"  BLOCKED {verdict.summary()}")

    # Deliver every compliant report and log the disclosures.
    log = AuditLog()
    delivery_rows = []
    for name, verdict in sorted(verdicts.items()):
        if not verdict.compliant:
            continue
        report = scenario.report_catalog.current(name)
        role = sorted(report.audience)[0]
        context = scenario.subjects.context(ROLE_TO_USER[role], report.purpose)
        instance = scenario.enforcer.generate(report, context, verdict)
        record = log.record_instance(instance, context)
        delivery_rows.append(
            {
                "report": name,
                "consumer": record.consumer,
                "rows": record.row_count,
                "suppressed": record.suppressed_rows,
                "min_contributors": record.min_contributors,
            }
        )
    print_table(delivery_rows[:12], title="Deliveries (first 12)")

    audit = Auditor(checker=scenario.checker, reports=scenario.report_catalog).audit(log)
    print(f"\nThird-party audit: {audit.summary()}")
    assert audit.clean, "enforced deliveries must audit clean"


if __name__ == "__main__":
    main()
