#!/usr/bin/env python
"""Meta-report lifecycle under report evolution (§5's robustness story).

Replays a generated evolution stream against the deployed meta-reports:
each event is checked for coverage (derivability from an approved
meta-report); covered events deploy immediately, uncovered ones trigger a
re-elicitation round. Compare with the per-report alternative, which needs
an owner interaction for almost every event.

Run: python examples/metareport_evolution.py
"""

from repro.bench import print_table
from repro.reports import EvolutionKind, apply_event
from repro.simulation import build_scenario, build_levels
from repro.workloads import generate_evolution_stream


def main() -> None:
    scenario = build_scenario()
    events = generate_evolution_stream(
        scenario.workload_spec(), scenario.workload, n_events=20, seed=13
    )
    metareport_level = build_levels(scenario)[2]
    report_level = build_levels(scenario)[3]

    rows = []
    for event in events:
        covered_mr = metareport_level.covers_event(event)
        covered_rpt = report_level.covers_event(event)
        metareport_level.note_event(event)
        report_level.note_event(event)
        rows.append(
            {
                "event": event.describe()[:60],
                "metareport_pla": "covered" if covered_mr else "RE-ELICIT",
                "per_report_pla": "covered" if covered_rpt else "RE-ELICIT",
            }
        )
    print_table(rows, title="Evolution stream vs PLA coverage")

    mr_hits = sum(1 for r in rows if r["metareport_pla"] == "covered")
    rpt_hits = sum(1 for r in rows if r["per_report_pla"] == "covered")
    print(
        f"\nmeta-report PLAs absorbed {mr_hits}/{len(rows)} changes; "
        f"per-report PLAs absorbed {rpt_hits}/{len(rows)}."
    )

    # Show the compliance check actually gating a new report end to end.
    add_events = [e for e in events if e.kind is EvolutionKind.ADD_REPORT]
    if add_events:
        new_report = add_events[0].definition
        assert new_report is not None
        apply_event(scenario.report_catalog, add_events[0])
        verdict = scenario.checker.check_report(new_report)
        print(f"\nNew report gate: {verdict.summary()}")

    # When a report changes, the owner reviews only the delta.
    from repro.reports import diff_definitions

    modifications = [
        e
        for e in events
        if e.kind in (EvolutionKind.ADD_COLUMN, EvolutionKind.CHANGE_FILTER)
        and e.report in scenario.report_catalog
    ]
    if modifications:
        event = modifications[0]
        before = scenario.report_catalog.current(event.report)
        after = apply_event(scenario.report_catalog, event)
        assert after is not None
        diff = diff_definitions(before, after)
        print(f"\nRe-elicitation delta for the owner: {diff.describe()}")
        print(f"(only {diff.elements_touched} element(s) to re-discuss, "
              f"not the whole report)")


if __name__ == "__main__":
    main()
