#!/usr/bin/env python
"""Warehouse-level PLA enforcement (§4): DWH metadata + cube authorization.

Shows the two §4 enforcement points working over the scenario warehouse:

* :class:`WarehouseEnforcer` gates ad-hoc queries with field/table/row
  metadata (role limits, purpose limits, join permissions, aggregation
  floors, intensional row rules);
* :class:`CubeAuthorizer` limits which dimension levels a role may group
  by and suppresses undersized cells via lineage.

Run: python examples/warehouse_level_plas.py
"""

from repro.errors import ComplianceError, PolicyError
from repro.policy import IntensionalAssociation
from repro.relational import parse_expression, parse_query
from repro.relational.algebra import AggSpec
from repro.simulation import build_scenario
from repro.warehouse import (
    ColumnAnnotation,
    Cube,
    CubeAuthorizationRule,
    CubeAuthorizer,
    PrivacyMetadataRegistry,
    TableAnnotation,
    WarehouseEnforcer,
)


def main() -> None:
    scenario = build_scenario()

    # -- §4 metadata on the warehouse ----------------------------------------
    metadata = PrivacyMetadataRegistry()
    metadata.annotate_column(
        ColumnAnnotation(
            "dwh_prescriptions", "patient",
            sensitivity="identifying",
            allowed_roles=frozenset({"health_director"}),
        )
    )
    metadata.annotate_table(
        TableAnnotation(
            "dwh_prescriptions",
            min_aggregation=scenario.config.aggregation_threshold,
            allowed_purposes=frozenset({"care", "admin"}),
        )
    )
    metadata.add_row_rule(
        IntensionalAssociation(
            "hiv-hidden", "dwh_prescriptions",
            parse_expression("disease = 'HIV'"), {"deny_row": True},
        )
    )
    enforcer = WarehouseEnforcer(catalog=scenario.bi_catalog, metadata=metadata)

    analyst = scenario.subjects.context("ann", "care/quality")
    director = scenario.subjects.context("dora", "care/quality")

    query = parse_query(
        "SELECT disease, COUNT(*) AS n FROM dwh_prescriptions GROUP BY disease"
    )
    table, suppressed = enforcer.run(query, analyst)
    print("disease summary for the analyst "
          f"({suppressed} undersized group(s) suppressed):")
    print(table.pretty())

    patient_query = parse_query(
        "SELECT patient, COUNT(*) AS n FROM dwh_prescriptions GROUP BY patient"
    )
    try:
        enforcer.run(patient_query, analyst)
    except ComplianceError as exc:
        print(f"\nanalyst blocked: {exc}")
    table, suppressed = enforcer.run(patient_query, director)
    print(
        f"director sees {len(table)} patient group(s) "
        f"({suppressed} below the floor)"
    )

    # -- cube authorization -----------------------------------------------------
    cube = Cube(scenario.star, scenario.bi_catalog)
    authorizer = CubeAuthorizer(cube)
    authorizer.add_rule(
        CubeAuthorizationRule(
            role="analyst",
            max_detail={"drug": "drug", "disease": "disease", "patient": "zip"},
            min_cell_contributors=scenario.config.aggregation_threshold,
            denied_slices=(parse_expression("disease = 'HIV'"),),
        )
    )
    request = cube.base_query(
        ["drug"], [AggSpec("count", None, "n"), AggSpec("sum", "cost", "total")]
    )
    published, suppressed = authorizer.evaluate(analyst, request)
    print(f"\ncube by drug for the analyst ({suppressed} cell(s) suppressed):")
    print(published.pretty(6))

    try:
        authorizer.evaluate(
            analyst, cube.base_query(["patient"], [AggSpec("count", None, "n")])
        )
    except PolicyError as exc:
        print(f"\npatient-grain denied: {exc}")
    rolled = cube.rollup(
        cube.base_query(["patient"], [AggSpec("count", None, "n")]), "patient"
    )
    published, _ = authorizer.evaluate(analyst, rolled)
    print(f"zip-grain allowed instead: {len(published)} cells")


if __name__ == "__main__":
    main()
