"""Resilience wrapper overhead benchmark: the no-fault path must be cheap.

The injector→retry→breaker call path wraps every ETL operator and every
delivery-time source probe. Its promise: with no faults injected (an empty
plan), the wrapped pipeline stays within 3% of the bare one — the price of
robustness is paid only when something actually fails. This benchmark
holds that line with the same interleaved bare/wrapped/bare design as
``bench_obs_overhead`` (the two bare legs bound the machine's own drift):

* **etl_flow** — the Fig 1 ETL flow, bare vs wrapped in a
  :class:`~repro.resilience.ResiliencePolicy` over a faultless plan; this
  is the gated workload, where each wrapped unit is a real operator
  execution;
* **delivery_sweep** — deliver-all-compliant over the report catalog, bare
  vs probing every source through the full resilience path. One warm
  delivery takes tens of microseconds, so the few-µs fixed cost of its
  four source probes is a large *fraction* while being the same small
  *absolute* cost — like the obs bench's warm-cache mix it is reported as
  ``probe_cost_us`` rather than gated as a percentage.

``main`` (via ``python benchmarks/run_all.py resilience`` or ``repro bench
resilience``) prints the table, optionally writes ``BENCH_resilience.json``,
and returns non-zero when the overhead exceeds the gate.
"""

from __future__ import annotations

import gc
import json
import time
from typing import Any, Callable

from repro.audit.log import AuditLog
from repro.reports.delivery import DeliveryService
from repro.resilience import (
    BreakerConfig,
    BreakerRegistry,
    DeliveryResilience,
    FaultInjector,
    ResiliencePolicy,
    RetryPolicy,
    named_plan,
)
from repro.simulation import build_scenario

#: No-fault overhead gates, percent. The smoke pass shares CI runners with
#: everything else, so its gate is looser; the calibrated full run applies
#: the real 3% bound.
FULL_GATE_PCT = 3.0
SMOKE_GATE_PCT = 12.0

JSON_PATH = "BENCH_resilience.json"

ROLE_TO_USER = {
    "analyst": "ann",
    "auditor": "aldo",
    "health_director": "dora",
    "municipality_official": "mara",
}


def _faultless_policy() -> ResiliencePolicy:
    return ResiliencePolicy(
        injector=FaultInjector(named_plan("none"), sleep=lambda _s: None),
        retry=RetryPolicy(),
        breakers=BreakerRegistry(BreakerConfig()),
        sleep=lambda _s: None,
    )


def _workloads() -> tuple[
    dict[str, tuple[Callable[[], Any], Callable[[], Any]]], set[str]
]:
    """``{name: (bare_fn, wrapped_fn)}`` closures, plus the gated subset."""
    scenario = build_scenario()
    policy = _faultless_policy()

    def flow_bare() -> None:
        scenario.flow.run()

    def flow_wrapped() -> None:
        scenario.flow.run(resilience=policy)

    def service(resilience: DeliveryResilience | None) -> DeliveryService:
        return DeliveryService(
            reports=scenario.report_catalog,
            checker=scenario.checker,
            enforcer=scenario.enforcer,
            subjects=scenario.subjects,
            audit_log=AuditLog(),
            resilience=resilience,
        )

    sweep_policy = _faultless_policy()
    bare_service = service(None)
    wrapped_service = service(
        DeliveryResilience(policy=sweep_policy, mode="refuse")
    )

    def sweep_bare() -> None:
        bare_service.deliver_all_compliant(ROLE_TO_USER)

    def sweep_wrapped() -> None:
        wrapped_service.deliver_all_compliant(ROLE_TO_USER)

    # Probes per sweep, for the fixed-cost-per-probe figure: one counted
    # sweep against the same injector the measured closures use.
    injector = sweep_policy.injector
    assert injector is not None
    injector.reset()
    sweep_wrapped()
    probes_per_sweep = injector.total_calls()

    workloads = {
        "etl_flow": (flow_bare, flow_wrapped),
        "delivery_sweep": (sweep_bare, sweep_wrapped),
    }
    return workloads, {"etl_flow"}, probes_per_sweep


def _measure_interleaved(
    bare: Callable[[], Any],
    wrapped: Callable[[], Any],
    *,
    repeats: int,
    inner: int,
) -> tuple[float, float, float]:
    """Best-of bare/wrapped/bare batch times, interleaved within each repeat."""

    def batch(fn: Callable[[], Any]) -> float:
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        return time.perf_counter() - start

    best = [float("inf")] * 3
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            best[0] = min(best[0], batch(bare))
            best[1] = min(best[1], batch(wrapped))
            best[2] = min(best[2], batch(bare))
    finally:
        if was_enabled:
            gc.enable()
    return best[0], best[1], best[2]


def run_resilience_bench(
    *, smoke: bool = False, repeats: int = 5, inner: int = 3
) -> dict[str, Any]:
    gate_pct = SMOKE_GATE_PCT if smoke else FULL_GATE_PCT
    if smoke:
        repeats, inner = min(repeats, 3), min(inner, 2)
    workloads, gated, probes_per_sweep = _workloads()

    rows: list[dict[str, Any]] = []
    for name, (bare, wrapped) in workloads.items():
        t_bare1, t_wrapped, t_bare2 = _measure_interleaved(
            bare, wrapped, repeats=repeats, inner=inner
        )
        t_bare = min(t_bare1, t_bare2)
        overhead_pct = (t_wrapped / t_bare - 1.0) * 100.0 if t_bare else 0.0
        noise_pct = abs(t_bare1 - t_bare2) / t_bare * 100.0 if t_bare else 0.0
        rows.append(
            {
                "workload": name,
                "gated": name in gated,
                "bare1_s": t_bare1,
                "wrapped_s": t_wrapped,
                "bare2_s": t_bare2,
                "overhead_pct": overhead_pct,
                "noise_pct": noise_pct,
            }
        )

    gated_rows = [r for r in rows if r["gated"]]
    worst = max(gated_rows, key=lambda r: r["overhead_pct"])
    # A gated workload passes if its overhead is inside the gate, or
    # statistically indistinguishable from the machine's own drift between
    # the two bare legs.
    failed = [
        r["workload"]
        for r in gated_rows
        if r["overhead_pct"] > gate_pct and r["overhead_pct"] > 2.0 * r["noise_pct"]
    ]
    # Fixed cost of one source probe (injector + retry + breaker layers),
    # from the delivery sweep's absolute bare/wrapped difference.
    sweep = next(r for r in rows if r["workload"] == "delivery_sweep")
    t_bare_sweep = min(sweep["bare1_s"], sweep["bare2_s"])
    probe_cost_us = max(
        0.0,
        (sweep["wrapped_s"] - t_bare_sweep) / inner / max(1, probes_per_sweep) * 1e6,
    )
    return {
        "smoke": smoke,
        "repeats": repeats,
        "inner": inner,
        "gate_pct": gate_pct,
        "rows": rows,
        "probes_per_sweep": probes_per_sweep,
        "probe_cost_us": probe_cost_us,
        "worst": {
            "workload": worst["workload"],
            "overhead_pct": worst["overhead_pct"],
        },
        "failed": failed,
        "passed": not failed,
    }


def _print_report(results: dict[str, Any]) -> None:
    print(
        f"Resilience wrapper overhead, no faults injected "
        f"(best of {results['repeats']}x{results['inner']} runs)"
    )
    print(
        f"{'workload':<18} {'bare s':>9} {'wrapped s':>10} {'overhead':>9} {'noise':>8}"
    )
    for r in results["rows"]:
        t_bare = min(r["bare1_s"], r["bare2_s"])
        marker = "" if r["gated"] else "  (info)"
        print(
            f"{r['workload']:<18} {t_bare:>9.4f} {r['wrapped_s']:>10.4f} "
            f"{r['overhead_pct']:>8.1f}% {r['noise_pct']:>7.1f}%{marker}"
        )
    w = results["worst"]
    verdict = "PASS" if results["passed"] else "FAIL"
    print(
        f"\n{verdict}: worst gated overhead {w['overhead_pct']:.1f}% "
        f"({w['workload']}), gate {results['gate_pct']:.0f}%."
    )
    if results["failed"]:
        print("over gate: " + ", ".join(results["failed"]))
    print(
        f"Fixed cost per source probe: {results['probe_cost_us']:.1f}us "
        f"({results['probes_per_sweep']} probes per delivery sweep)."
    )


def main(*, smoke: bool = False, json_path: str | None = None) -> int:
    results = run_resilience_bench(smoke=smoke)
    _print_report(results)
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
        print(f"\nwrote {json_path}")
    return 0 if results["passed"] else 1


# ---------------------------------------------------------------------------
# pytest smoke: keep the harness itself from rotting. Loose gate — CI noise
# on shared runners must not fail the tier-1 suite; the calibrated run via
# run_all.py applies the real one.
# ---------------------------------------------------------------------------


def test_resilience_overhead_smoke():
    results = run_resilience_bench(smoke=True, repeats=3, inner=2)
    assert results["rows"], "no workloads measured"
    assert all(r["wrapped_s"] > 0 for r in results["rows"])
    assert results["probes_per_sweep"] > 0
    worst = results["worst"]["overhead_pct"]
    noise = max(r["noise_pct"] for r in results["rows"] if r["gated"])
    assert worst < 25.0 or worst < 2.0 * noise, (
        f"no-fault resilience overhead {worst:.1f}% >= 25%"
    )


if __name__ == "__main__":
    raise SystemExit(main())
