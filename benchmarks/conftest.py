"""Shared benchmark fixtures: one scenario per session."""

from __future__ import annotations

import pytest

from repro.simulation import build_scenario


@pytest.fixture(scope="session")
def scenario():
    return build_scenario()
