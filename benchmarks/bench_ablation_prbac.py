"""ABL-PBAC — generic policy languages vs report-level PLAs (§1's claim).

"Privacy policy languages and purpose-based access control languages are of
general applicability ... However, their generality makes it hard to express
actionable privacy requirements that are directly 'testable' and
'verifiable' along the BI data lifecycle."

We generate a realistic PLA requirement workload (the six kinds, skewed as
elicited in practice) and classify each requirement by whether the P-RBAC
baseline can state it as a *directly testable* check, versus the
report/meta-report PLA model of this library.

Expected shape: P-RBAC covers only the attribute-access slice (~30%); the
report-level model covers everything, with integration permissions
discharged at the ETL layer.

Run standalone:  python benchmarks/bench_ablation_prbac.py
"""

from __future__ import annotations

from collections import Counter

from repro.bench import print_table
from repro.core import TESTABILITY, PlaLevel
from repro.policy import PRBACPolicy
from repro.workloads import generate_requirements


def coverage_rows(n: int = 300, seed: int = 23) -> list[dict]:
    requirements = generate_requirements(n, seed=seed)
    by_kind = Counter(r.requirement_kind for r in requirements)
    rows = []
    for kind, count in sorted(by_kind.items()):
        prbac = PRBACPolicy.can_express(kind)
        rows.append(
            {
                "requirement_kind": kind,
                "count": count,
                "prbac": prbac,
                "report_pla": _pla_class(TESTABILITY[PlaLevel.REPORT][kind]),
                "metareport_pla": _pla_class(TESTABILITY[PlaLevel.METAREPORT][kind]),
            }
        )
    return rows


def _pla_class(score: float) -> str:
    if score >= 1.0:
        return "testable"
    if score > 0.0:
        return "approximate"
    return "inexpressible"


def coverage_summary(rows: list[dict]) -> dict:
    total = sum(r["count"] for r in rows)

    def fraction(column: str, label: str) -> float:
        return sum(r["count"] for r in rows if r[column] == label) / total

    return {
        "total_requirements": total,
        "prbac_testable": fraction("prbac", "testable"),
        "prbac_inexpressible": fraction("prbac", "inexpressible"),
        "report_pla_testable": fraction("report_pla", "testable"),
        "metareport_pla_testable": fraction("metareport_pla", "testable"),
    }


def main() -> None:
    rows = coverage_rows()
    print_table(rows, title="ABL-PBAC: requirement expressibility by policy model")
    print_table([coverage_summary(rows)], title="ABL-PBAC: coverage summary")


# -- pytest-benchmark targets -------------------------------------------------


def test_prbac_coverage_gap(benchmark):
    rows = benchmark.pedantic(coverage_rows, rounds=1, iterations=1)
    summary = coverage_summary(rows)
    # The paper's claim: a large actionability gap for generic languages...
    assert summary["prbac_testable"] < 0.5
    assert summary["prbac_inexpressible"] > 0.4
    # ...that the report/meta-report PLA model closes.
    assert summary["metareport_pla_testable"] == 1.0
    assert summary["report_pla_testable"] > summary["prbac_testable"]
    main()


def test_prbac_check_throughput(benchmark):
    """The baseline is at least *fast* at what it can do."""
    from repro.policy import PurposeTree, SubjectRegistry

    subjects = SubjectRegistry(purposes=PurposeTree(["care", "care/quality"]))
    subjects.add_role("analyst")
    subjects.add_user("ann", "analyst")
    policy = PRBACPolicy(subjects.purposes)
    for i in range(50):
        policy.grant("analyst", f"table_{i}", ["a", "b"], purpose="care")
    context = subjects.context("ann", "care/quality")
    decision = benchmark(policy.check, context, "table_49", ["a"])
    assert decision


if __name__ == "__main__":
    main()
