"""Lint scaling: static-analysis wall time versus catalog size.

The point of a static pass is that it is cheap enough to run on every
catalog change, so this bench measures one `StaticAnalyzer.analyze()` sweep
over synthetic deployments of 10 / 100 / 1000 reports (with meta-reports
scaled alongside) and reports wall time plus per-report cost. The dominant
term is the derivability re-proof of each report against the meta-report
set, so time should grow roughly linearly in the report count.

Run standalone:  python benchmarks/bench_analysis_lint.py
"""

from __future__ import annotations

import random
import time

import pytest

from repro.analysis import AnalysisInput, StaticAnalyzer
from repro.bench import print_table
from repro.core.annotations import AggregationThreshold, AttributeAccess
from repro.core.metareport import MetaReport, MetaReportSet
from repro.core.pla import PLA, PlaLevel
from repro.relational import Catalog, Table, make_schema
from repro.relational.algebra import AggSpec
from repro.relational.query import Query
from repro.relational.types import ColumnType

COLUMNS = (
    "patient", "zip", "gender", "doctor", "disease", "drug", "cost",
    "region", "quarter", "visits",
)


def build_deployment(n_reports: int, *, seed: int = 23) -> AnalysisInput:
    """A wide one-table star, ceil(n/10) meta-reports, n derived reports."""
    rng = random.Random(seed)
    schema = make_schema(
        *[(c, ColumnType.INT if c in ("cost", "visits") else ColumnType.STRING)
          for c in COLUMNS]
    )
    table = Table.from_rows(
        "wide",
        schema,
        [tuple(f"v{rng.randint(0, 9)}" if c not in ("cost", "visits")
               else rng.randint(0, 99) for c in COLUMNS)
         for _ in range(50)],
        provider="bi",
    )
    catalog = Catalog()
    catalog.add_table(table)

    metareports = MetaReportSet()
    n_metareports = max(1, n_reports // 10)
    for i in range(n_metareports):
        exposed = tuple(
            sorted(rng.sample(COLUMNS, rng.randint(4, len(COLUMNS))),
                   key=COLUMNS.index)
        )
        metareport = MetaReport(f"mr_{i}", Query.from_("wide").project(*exposed))
        metareport.attach_pla(
            PLA(
                f"pla_{i}", "owner", PlaLevel.METAREPORT, f"mr_{i}",
                (
                    AggregationThreshold(5),
                    AttributeAccess("patient", frozenset({"doctor"})),
                ),
            ).approved()
        )
        metareports.add(metareport)
    metareports.register_views(catalog)

    from repro.reports.catalog import ReportCatalog
    from repro.reports.definition import ReportDefinition

    reports = ReportCatalog()
    for i in range(n_reports):
        group = rng.choice(("drug", "region", "quarter"))
        query = (
            Query.from_("wide").group(group)
            .agg(AggSpec("count", None, "n"))
        )
        reports.add(
            ReportDefinition(
                f"rpt_{i:04d}", f"Report {i}", query,
                frozenset({"analyst"}), "care/quality",
            )
        )
    return AnalysisInput(catalog=catalog, metareports=metareports, reports=reports)


def time_lint(target: AnalysisInput) -> tuple[float, int]:
    analyzer = StaticAnalyzer(target)
    start = time.perf_counter()
    report = analyzer.analyze()
    elapsed = time.perf_counter() - start
    return elapsed, len(report.diagnostics)


def main() -> None:
    rows = []
    for n_reports in (10, 100, 1000):
        target = build_deployment(n_reports)
        elapsed, findings = time_lint(target)
        rows.append(
            {
                "reports": n_reports,
                "metareports": max(1, n_reports // 10),
                "lint_s": f"{elapsed:.3f}",
                "ms_per_report": f"{1000 * elapsed / n_reports:.2f}",
                "findings": findings,
            }
        )
    print_table(rows, title="LINT: static analysis wall time vs catalog size")
    print(
        "\nReading: ms_per_report should stay roughly flat — the sweep is "
        "linear in the report count (each report is re-proved against the "
        "meta-report set, never executed)."
    )


# -- pytest-benchmark targets -------------------------------------------------


@pytest.fixture(scope="module", params=[10, 100])
def sized_deployment(request):
    return request.param, build_deployment(request.param)


def test_lint_scales(benchmark, sized_deployment):
    n_reports, target = sized_deployment
    report = benchmark(StaticAnalyzer(target).analyze)
    assert report.coverage["reports"] == n_reports
    # every report in the synthetic deployment is a clean aggregate
    assert report.exit_code() == 0


if __name__ == "__main__":
    main()
