"""FIG5 — the PLA-definition continuum (paper Fig 5, the headline figure).

The paper sketches two opposed axes across the four engineering levels:
"ease of PLA elicitation" grows source → warehouse → meta-report → report,
while "stability" shrinks the same way, with meta-reports as the engineered
sweet spot. This benchmark measures both axes (plus over-engineering and
requirement testability) by running the elicitation simulation and
replaying report-evolution streams at two scales.

Expected shape (the reproduction target):
  * effort-per-artifact strictly decreasing source → report (= ease rising);
  * stability strictly decreasing source → report;
  * over-engineering: source > warehouse ≥ meta-report = report = 0;
  * meta-reports minimize total interaction cost over the deployment's life.

Run standalone:  python benchmarks/bench_fig5_continuum.py
"""

from __future__ import annotations

from repro.bench import print_table
from repro.simulation import build_scenario, compare_levels
from repro.workloads import generate_evolution_stream


def run_fig5(scenario, *, n_events: int, seed: int, new_feed_rate: float = 0.1):
    events = generate_evolution_stream(
        scenario.workload_spec(),
        scenario.workload,
        n_events=n_events,
        seed=seed,
        new_feed_rate=new_feed_rate,
    )
    return compare_levels(scenario, events)


def main(scenario=None) -> None:
    if scenario is None:
        from repro.simulation import build_scenario

        scenario = build_scenario()
    for n_events, seed in ((25, 3), (100, 5)):
        metrics = run_fig5(scenario, n_events=n_events, seed=seed)
        print_table(
            [m.row() for m in metrics],
            title=f"FIG5: PLA continuum under {n_events} evolution events (seed {seed})",
        )
    print(
        "\nReading: effort_per_artifact ↓ = the paper's 'ease of PLA "
        "elicitation' axis rising; stability ↓ = the 'stability' axis "
        "falling; meta-reports minimize total_effort."
    )


# -- pytest-benchmark targets -------------------------------------------------


def test_fig5_continuum_shape(benchmark, scenario):
    metrics = benchmark.pedantic(
        lambda: run_fig5(scenario, n_events=100, seed=5), rounds=1, iterations=1
    )
    levels = [m.level for m in metrics]
    assert levels == ["source", "warehouse", "metareport", "report"]

    ease = [m.effort_per_artifact for m in metrics]
    assert ease == sorted(ease, reverse=True), "ease axis broken"

    stability = [m.stability for m in metrics]
    assert stability == sorted(stability, reverse=True), "stability axis broken"
    assert stability[0] == 1.0 and stability[-1] < 0.3

    over = {m.level: m.over_engineering for m in metrics}
    assert over["source"] > over["warehouse"] >= over["metareport"]
    assert over["report"] == 0.0

    totals = {m.level: m.total_effort for m in metrics}
    assert totals["metareport"] == min(totals.values()), "sweet spot lost"
    main(scenario)


def test_fig5_shape_is_seed_robust(scenario):
    """The ordering claims must hold across several evolution streams."""
    for seed in (1, 2, 3, 4, 5):
        metrics = run_fig5(scenario, n_events=60, seed=seed)
        stability = [m.stability for m in metrics]
        assert stability == sorted(stability, reverse=True), f"seed {seed}"
        ease = [m.effort_per_artifact for m in metrics]
        assert ease == sorted(ease, reverse=True), f"seed {seed}"


def test_fig5_scales_to_a_large_workload(benchmark):
    """The sweet spot persists at 100 reports / 200 evolution events —
    "dozens or even hundreds of reports is common" (§5)."""
    from repro.simulation import ScenarioConfig, build_scenario
    from repro.workloads import HealthcareConfig, generate_evolution_stream

    def run():
        big = build_scenario(
            ScenarioConfig(
                n_reports=100,
                max_metareports=6,
                healthcare=HealthcareConfig(
                    n_patients=400, n_prescriptions=4_000
                ),
            )
        )
        events = generate_evolution_stream(
            big.workload_spec(), big.workload,
            n_events=200, seed=5, new_feed_rate=0.08,
        )
        return compare_levels(big, events)

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    stability = [m.stability for m in metrics]
    assert all(a >= b for a, b in zip(stability, stability[1:]))
    totals = {m.level: m.total_effort for m in metrics}
    assert totals["metareport"] == min(totals.values())
    assert totals["report"] > 5 * totals["metareport"]  # churn dominates


def test_fig5_shape_is_owner_robust(scenario):
    """The continuum does not depend on who the owner happens to be:
    novice or expert, the ease and stability orderings persist (absolute
    costs shrink with expertise, ratios do not flip)."""
    from repro.simulation import OwnerAgent, compare_levels
    from repro.workloads import generate_evolution_stream

    events = generate_evolution_stream(
        scenario.workload_spec(), scenario.workload, n_events=40, seed=9,
        new_feed_rate=0.1,
    )
    totals_by_expertise = {}
    for expertise in (0.1, 0.5, 0.9):
        # confusion_scale=0 isolates the expertise effect: confusion is a
        # per-artifact coin flip whose single-run noise can swap adjacent
        # levels; the ordering claim is about expected cost.
        owner = OwnerAgent("dpo", expertise=expertise, seed=13, confusion_scale=0.0)
        metrics = compare_levels(scenario, events, owner=owner)
        ease = [m.effort_per_artifact for m in metrics]
        assert ease == sorted(ease, reverse=True), f"expertise {expertise}"
        stability = [m.stability for m in metrics]
        assert stability == sorted(stability, reverse=True)
        totals_by_expertise[expertise] = metrics[0].total_effort
    # An expert owner makes every discussion cheaper.
    assert totals_by_expertise[0.9] < totals_by_expertise[0.1]


if __name__ == "__main__":
    main()
