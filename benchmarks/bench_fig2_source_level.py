"""FIG2 — PLAs at the data source level (paper Fig 2).

Regenerates Fig 2's mechanism as measurements: the Policies metadata table
(show_name/show_disease) plus an intensional HIV rule drive the source
gateway; we report disclosure correctness (no denied cell ever leaves), the
source level's over-engineering ratio, and the VPD query-rewrite overhead
relative to unrestricted execution.

Expected shape: enforcement is exact (0 violations), over-engineering is
the *highest* of all levels, and VPD rewriting costs only a modest constant
factor.

Run standalone:  python benchmarks/bench_fig2_source_level.py
"""

from __future__ import annotations

import time

from repro.anonymize import Pseudonymizer
from repro.bench import print_table
from repro.policy import (
    IntensionalAssociation,
    SubjectRegistry,
    VPDPolicy,
    VPDRule,
)
from repro.relational import execute, parse_expression, parse_query
from repro.sources import CellPolicy, ConsentRegistry, DataProvider, ProviderKind, SourceGateway
from repro.workloads import HealthcareConfig, generate


def build_provider(n_patients: int, n_prescriptions: int, seed: int = 2):
    data = generate(
        HealthcareConfig(
            n_patients=n_patients, n_prescriptions=n_prescriptions, n_exams=0, seed=seed
        )
    )
    provider = DataProvider("hospital", ProviderKind.HOSPITAL)
    provider.add_table(data.prescriptions)
    if data.admissions is not None:
        provider.add_table(data.admissions)
    if data.billing is not None:
        provider.add_table(data.billing)
    provider.consents = ConsentRegistry.from_policies_table(data.policies)
    provider.metadata.add(
        IntensionalAssociation(
            "hiv-deny",
            "prescriptions",
            parse_expression("disease = 'HIV'"),
            {"deny_row": True},
        )
    )
    gateway = SourceGateway(provider, pseudonymizer=Pseudonymizer(salt="fig2"))
    gateway.add_cell_policy(CellPolicy("patient", "show_name", "pseudonymize"))
    gateway.add_cell_policy(CellPolicy("disease", "show_disease", "suppress"))
    return data, provider, gateway


def check_export(data, provider, exported) -> dict:
    """Count residual disclosures in the exported table (must all be 0)."""
    consents = provider.consents
    hiv_rows = sum(1 for v in exported.column_values("disease") if v == "HIV")
    raw_names = 0
    raw_diseases = 0
    patients = set(data.patients)
    for row in exported.iter_dicts():
        value = row["patient"]
        if value in patients and not consents.for_patient(value).show_name:
            raw_names += 1
        if row["disease"] is not None:
            # disease visible: the (re-identified) subject must have consented
            subject = value
            if subject in patients and not consents.for_patient(subject).show_disease:
                raw_diseases += 1
    return {
        "hiv_rows_leaked": hiv_rows,
        "unconsented_names": raw_names,
        "unconsented_diseases": raw_diseases,
    }


def vpd_overhead(data, runs: int = 5) -> tuple[float, float]:
    """Seconds per query, without and with VPD rewriting."""
    from repro.relational import Catalog

    catalog = Catalog()
    catalog.add_table(data.prescriptions)
    subjects = SubjectRegistry()
    subjects.purposes.declare("care")
    subjects.add_role("analyst")
    subjects.add_user("ann", "analyst")
    context = subjects.context("ann", "care")
    policy = VPDPolicy()
    policy.add_rule(
        VPDRule("prescriptions", parse_expression("disease != 'HIV'"))
    )
    query = parse_query(
        "SELECT drug, COUNT(*) AS n FROM prescriptions GROUP BY drug"
    )
    start = time.perf_counter()
    for _ in range(runs):
        execute(query, catalog)
    plain = (time.perf_counter() - start) / runs
    start = time.perf_counter()
    for _ in range(runs):
        policy.run(query, catalog, context)
    rewritten = (time.perf_counter() - start) / runs
    return plain, rewritten


def source_over_engineering(provider, data) -> float:
    """Columns the owner must annotate vs columns the BI feed uses."""
    total = sum(
        len(provider.table(t).schema) for t in provider.table_names()
    )
    used = len(data.prescriptions.schema)
    return 1.0 - used / total


def main() -> None:
    rows = []
    for n in (1_000, 5_000):
        data, provider, gateway = build_provider(
            n_patients=max(50, n // 10), n_prescriptions=n
        )
        subjects = SubjectRegistry()
        subjects.purposes.declare("care")
        subjects.add_role("bi")
        subjects.add_user("bi", "bi")
        context = subjects.context("bi", "care")
        start = time.perf_counter()
        exported, report = gateway.export_table("prescriptions", context)
        elapsed = time.perf_counter() - start
        residuals = check_export(data, provider, exported)
        plain, rewritten = vpd_overhead(data)
        rows.append(
            {
                "n_prescriptions": n,
                "rows_exported": report.rows_out,
                "hiv_dropped": report.rows_dropped_intensional,
                "pseudonymized": report.cells_pseudonymized,
                "suppressed": report.cells_suppressed,
                "leaks(all kinds)": sum(residuals.values()),
                "gateway_s": elapsed,
                "vpd_overhead_x": rewritten / plain if plain else 0.0,
                "over_engineering": source_over_engineering(provider, data),
            }
        )
    print_table(rows, title="FIG2: source-level PLA enforcement (gateway + VPD)")


def posture_comparison() -> list[dict]:
    """SOURCE_ENFORCES vs BI_ENFORCES on the full scenario: what source-side
    anonymization costs downstream integration (§3's trust trade-off)."""
    from repro.simulation import ScenarioConfig, build_scenario

    rows = []
    for flag in (False, True):
        scenario = build_scenario(ScenarioConfig(source_enforces=flag))
        wide = scenario.bi_catalog.table("dwh_prescriptions")
        null_zip = sum(1 for v in wide.column_values("zip") if v is None)
        hiv = sum(1 for v in wide.column_values("disease") if v == "HIV")
        rows.append(
            {
                "posture": "source_enforces" if flag else "bi_enforces",
                "warehouse_rows": len(wide),
                "hiv_rows_in_dwh": hiv,
                "facts_missing_demographics": null_zip,
                "integration_loss": null_zip / len(wide) if len(wide) else 0.0,
            }
        )
    return rows


# -- pytest-benchmark targets -------------------------------------------------


def test_fig2_posture_tradeoff(benchmark):
    rows = benchmark.pedantic(posture_comparison, rounds=1, iterations=1)
    by = {r["posture"]: r for r in rows}
    # Source enforcement keeps sensitive rows out of the warehouse entirely...
    assert by["source_enforces"]["hiv_rows_in_dwh"] == 0
    assert by["bi_enforces"]["hiv_rows_in_dwh"] > 0  # (blocked later, at reports)
    # ...at a real integration cost: pseudonymized patients cannot be joined
    # with the municipality registry.
    assert by["source_enforces"]["integration_loss"] > 0.3
    assert by["bi_enforces"]["integration_loss"] == 0.0
    from repro.bench import print_table

    print_table(rows, title="FIG2: enforcement posture trade-off (§3)")


def test_fig2_gateway_enforcement_is_exact(benchmark):
    data, provider, gateway = build_provider(n_patients=100, n_prescriptions=1_000)
    subjects = SubjectRegistry()
    subjects.purposes.declare("care")
    subjects.add_role("bi")
    subjects.add_user("bi", "bi")
    context = subjects.context("bi", "care")
    exported, report = benchmark(gateway.export_table, "prescriptions", context)
    residuals = check_export(data, provider, exported)
    assert residuals == {
        "hiv_rows_leaked": 0,
        "unconsented_names": 0,
        "unconsented_diseases": 0,
    }
    assert report.rows_dropped_intensional > 0


def test_fig2_vpd_rewrite_overhead_is_bounded(benchmark):
    data, _, _ = build_provider(n_patients=100, n_prescriptions=1_000)
    plain, rewritten = benchmark.pedantic(
        lambda: vpd_overhead(data, runs=3), rounds=1, iterations=1
    )
    assert rewritten < plain * 5  # rewrite adds a predicate, not a new plan


def test_fig2_source_over_engineering_is_high():
    data, provider, _ = build_provider(n_patients=100, n_prescriptions=500)
    ratio = source_over_engineering(provider, data)
    assert ratio > 0.4  # most of the hospital's schema is never fed to BI
    main()


if __name__ == "__main__":
    main()
