"""FIG1 — the outsourcing scenario end-to-end (paper Fig 1).

Regenerates the data-flow picture as numbers: rows at each hop
(provider → staging → warehouse → reports), PLA checks performed, and —
the reproduction target — **zero uncontrolled disclosures**: every
delivered row passes the audit, and the no-policy baseline provably leaks.

Run standalone:  python benchmarks/bench_fig1_scenario.py
Run as bench:    pytest benchmarks/bench_fig1_scenario.py --benchmark-only
"""

from __future__ import annotations

from repro.audit import AuditLog, Auditor
from repro.bench import print_table
from repro.reports import ReportEngine
from repro.simulation import ScenarioConfig, build_scenario

ROLE_TO_USER = {
    "analyst": "ann",
    "auditor": "aldo",
    "health_director": "dora",
    "municipality_official": "mara",
}


def run_fig1(scenario) -> dict:
    """Deliver the whole compliant workload and audit it."""
    verdicts = scenario.checker.check_catalog(scenario.report_catalog.all_current())
    log = AuditLog()
    delivered = 0
    blocked = 0
    for name, verdict in sorted(verdicts.items()):
        if not verdict.compliant:
            blocked += 1
            continue
        report = scenario.report_catalog.current(name)
        role = sorted(report.audience)[0]
        context = scenario.subjects.context(ROLE_TO_USER[role], report.purpose)
        instance = scenario.enforcer.generate(report, context, verdict)
        log.record_instance(instance, context)
        delivered += 1
    audit = Auditor(
        checker=scenario.checker, reports=scenario.report_catalog
    ).audit(log)
    return {
        "verdicts": verdicts,
        "delivered": delivered,
        "blocked": blocked,
        "audit": audit,
        "log": log,
    }


def data_flow_rows(scenario, outcome) -> list[dict]:
    wide = scenario.bi_catalog.table("dwh_prescriptions")
    rows = [
        {
            "hop": f"source:{p.name}",
            "rows": sum(len(p.table(t)) for t in p.table_names()),
            "pla": "consents + source PLA",
        }
        for p in scenario.providers.values()
    ]
    rows.append(
        {
            "hop": "warehouse:dwh_prescriptions",
            "rows": len(wide),
            "pla": "ETL annotations + DWH metadata",
        }
    )
    rows.append(
        {
            "hop": "reports:delivered",
            "rows": sum(r.row_count for r in outcome["log"].records),
            "pla": f"meta-report PLAs ({outcome['delivered']} reports, "
            f"{outcome['blocked']} blocked)",
        }
    )
    return rows


def uncontrolled_disclosures(scenario, outcome) -> int:
    """Audit findings of CRITICAL severity across all deliveries."""
    from repro.audit import Severity

    return sum(
        1
        for violation in outcome["audit"].violations
        if violation.severity is Severity.CRITICAL
    )


def baseline_leaks(scenario) -> int:
    """The no-policy baseline: raw engine, no PLA hooks — counts leaked
    HIV rows and sub-threshold cells that an enforced deployment blocks."""
    rogue = ReportEngine(scenario.bi_catalog)
    leaks = 0
    for report in scenario.report_catalog.all_current():
        role = sorted(report.audience)[0]
        context = scenario.subjects.context(ROLE_TO_USER[role], report.purpose)
        try:
            instance = rogue.generate(report, context)
        except Exception:
            continue
        table = instance.table
        if "disease" in table.schema:
            leaks += sum(1 for v in table.column_values("disease") if v == "HIV")
        if report.query.is_aggregate:
            leaks += sum(
                1
                for i in range(len(table))
                if len(table.lineage_of(i)) < scenario.config.aggregation_threshold
            )
    return leaks


def main(scenario=None) -> None:
    if scenario is None:
        scenario = build_scenario()
    outcome = run_fig1(scenario)
    print_table(data_flow_rows(scenario, outcome), title="FIG1: data flow with PLAs at each hop")
    print(f"\naudit: {outcome['audit'].summary()}")
    print(f"uncontrolled disclosures (enforced): {uncontrolled_disclosures(scenario, outcome)}")
    print(f"leaked rows/cells (no-policy baseline): {baseline_leaks(scenario)}")


# -- pytest-benchmark targets -------------------------------------------------


def test_fig1_pipeline_build(benchmark):
    """Time the full scenario build (sources → ETL → warehouse → PLAs)."""
    scenario = benchmark.pedantic(
        lambda: build_scenario(ScenarioConfig()), rounds=1, iterations=1
    )
    assert scenario.flow_result.clean


def test_fig1_delivery_and_audit(benchmark, scenario):
    outcome = benchmark.pedantic(lambda: run_fig1(scenario), rounds=1, iterations=1)
    assert outcome["audit"].clean
    assert uncontrolled_disclosures(scenario, outcome) == 0
    assert baseline_leaks(scenario) > 0  # the baseline demonstrably leaks
    main(scenario)


if __name__ == "__main__":
    main()
