"""ABL-CONT — containment/derivability checker correctness and scaling.

The §5 compliance mechanism hinges on deciding "is this report expressible
as a subset or view over a meta-report" quickly and soundly. We measure:

* correctness of the CQ containment checker against brute-force evaluation
  on random instances (soundness must be perfect; completeness is reported);
* throughput vs number of atoms (joins) and vs catalog/report-count, since
  every report-catalog change re-runs the check.

Expected shape: zero unsound verdicts; cost grows with atom count
(homomorphism search) but stays sub-millisecond at workload-realistic sizes.

Run standalone:  python benchmarks/bench_ablation_containment.py
"""

from __future__ import annotations

import random
import time

from repro.bench import print_table
from repro.core import NotConjunctive, check_derivability, is_contained
from repro.relational import Catalog, Table, execute, make_schema, parse_query
from repro.relational.types import ColumnType


def build_catalog(n_rows: int = 60, seed: int = 3) -> Catalog:
    rng = random.Random(seed)
    cat = Catalog()
    t = make_schema(
        ("k", ColumnType.INT), ("x", ColumnType.INT), ("y", ColumnType.INT)
    )
    u = make_schema(("k", ColumnType.INT), ("z", ColumnType.INT))
    cat.add_table(
        Table.from_rows(
            "t",
            t,
            [
                (rng.randint(0, 9), rng.randint(-20, 20), rng.randint(-20, 20))
                for _ in range(n_rows)
            ],
            provider="p",
        )
    )
    cat.add_table(
        Table.from_rows(
            "u",
            u,
            [(rng.randint(0, 9), rng.randint(-20, 20)) for _ in range(n_rows)],
            provider="q",
        )
    )
    return cat


def random_query(rng: random.Random, *, join: bool) -> str:
    ops = ["<", "<=", ">", ">=", "=", "!="]
    conjuncts = [
        f"{rng.choice(['x', 'y'])} {rng.choice(ops)} {rng.randint(-15, 15)}"
        for _ in range(rng.randint(0, 2))
    ]
    where = f" WHERE {' AND '.join(conjuncts)}" if conjuncts else ""
    if join:
        return f"SELECT x, y FROM t JOIN u ON k = k{where}"
    return f"SELECT x, y FROM t{where}"


def correctness_trial(n_pairs: int = 400, seed: int = 11) -> dict:
    rng = random.Random(seed)
    cat = build_catalog()
    unsound = 0
    certified = 0
    incomplete = 0
    for _ in range(n_pairs):
        join = rng.random() < 0.4
        q1 = parse_query(random_query(rng, join=join))
        q2 = parse_query(random_query(rng, join=join))
        try:
            verdict = is_contained(q1, q2, cat)
        except NotConjunctive:
            continue
        out1 = {tuple(r) for r in execute(q1, cat).rows}
        out2 = {tuple(r) for r in execute(q2, cat).rows}
        truth = out1 <= out2
        if verdict:
            certified += 1
            if not truth:
                unsound += 1
        elif truth:
            incomplete += 1  # expected: the checker is conservative
    return {
        "pairs": n_pairs,
        "certified": certified,
        "unsound": unsound,
        "conservative_misses": incomplete,
    }


def scaling_rows(atom_counts=(1, 2, 3, 4), repeats: int = 200) -> list[dict]:
    cat = Catalog()
    rows = []
    for n in atom_counts:
        # n relations r0..r{n-1}, chained joins on shared key columns.
        for i in range(n):
            schema = make_schema(("k", ColumnType.INT), (f"v{i}", ColumnType.INT))
            cat.add_table(
                Table.from_rows(f"r{n}_{i}", schema, [], provider="p"),
                replace=True,
            )
        froms = f"FROM r{n}_0 " + " ".join(
            f"JOIN r{n}_{i} ON r{n}_{i - 1}.k = r{n}_{i}.k" for i in range(1, n)
        )
        sql = f"SELECT v0 {froms} WHERE v0 > 3"
        q1 = parse_query(sql)
        q2 = parse_query(f"SELECT v0 {froms}")
        start = time.perf_counter()
        for _ in range(repeats):
            assert is_contained(q1, q2, cat)
        elapsed = (time.perf_counter() - start) / repeats
        rows.append({"atoms": n, "us_per_check": elapsed * 1e6})
    return rows


def derivability_throughput(scenario=None) -> float:
    """Checks/second of the production derivability path on the scenario."""
    from repro.simulation import build_scenario

    if scenario is None:
        scenario = build_scenario()
    reports = scenario.report_catalog.all_current()
    metareport = scenario.metareports.metareports[0]
    start = time.perf_counter()
    n = 0
    for report in reports:
        check_derivability(
            report.query, metareport.name, metareport.query, scenario.bi_catalog
        )
        n += 1
    return n / (time.perf_counter() - start)


def main(scenario=None) -> None:
    print_table([correctness_trial()], title="ABL-CONT: containment soundness trial")
    print_table(scaling_rows(), title="ABL-CONT: homomorphism check vs atom count")
    print(f"\nderivability checks/s on scenario workload: {derivability_throughput(scenario):,.0f}")


# -- pytest-benchmark targets -------------------------------------------------


def test_containment_soundness():
    outcome = correctness_trial()
    assert outcome["unsound"] == 0
    assert outcome["certified"] > 0


def test_containment_scaling(benchmark):
    rows = benchmark.pedantic(scaling_rows, rounds=1, iterations=1)
    assert all(r["us_per_check"] < 10_000 for r in rows)


def test_derivability_throughput(benchmark, scenario):
    rate = benchmark.pedantic(
        lambda: derivability_throughput(scenario), rounds=1, iterations=1
    )
    assert rate > 100  # fast enough to gate every catalog change
    main(scenario)


if __name__ == "__main__":
    main()
