"""FIG3 — PLAs at the DWH/ETL level (paper Fig 3).

Regenerates Fig 3's mechanism: annotations on ETL procedures restrict the
operations allowed on source tables. The flow attempts the paper's
FamilyDoctor ⋈ Prescriptions ⋈ DrugCost combination; with the
municipality's join prohibition in force, the prohibited operator (and
everything downstream of it) never materializes, and a *laundered* variant
(routing the data through an integrate step first) is caught through
lineage, not wiring.

Expected shape: prohibited ops blocked = exactly the annotated ones;
permitted pipeline unchanged; laundering detected; zero prohibited
combinations in any produced table.

Run standalone:  python benchmarks/bench_fig3_warehouse_level.py
"""

from __future__ import annotations

from repro.bench import print_table
from repro.etl import (
    EtlFlow,
    EtlPlaRegistry,
    ExtractOp,
    IntegrateOp,
    IntegrationProhibition,
    JoinOp,
    JoinProhibition,
    LoadOp,
)
from repro.relational import Catalog
from repro.workloads import HealthcareConfig, generate


def build_flow(data) -> EtlFlow:
    flow = EtlFlow("fig3")
    flow.add(ExtractOp("x_presc", data.prescriptions, "p"))
    flow.add(ExtractOp("x_fd", data.familydoctor, "fd"))
    flow.add(ExtractOp("x_cost", data.drugcost, "c"))
    # The "laundering" route: familydoctor data flows into the
    # prescriptions table through an integration step...
    flow.add(
        IntegrateOp(
            "fill_doctor", "p", "fd", "filled",
            key=("patient", "patient"),
            fill_column="doctor",
            reference_column="doctor",
        )
    )
    # ...and only *then* is joined with drug costs.
    flow.add(JoinOp("join_cost", "filled", "c", [("drug", "drug")], "joined"))
    flow.add(LoadOp("load", "joined", "dwh_presc"))
    return flow


PROHIBITION = JoinProhibition(
    "muni-fd-no-costs",
    "municipality",
    "municipality/familydoctor",
    "health_agency/drugcost",
    reason="family-doctor assignments must not be crossed with drug spending",
)


def run_fig3(data) -> dict:
    catalog_free = Catalog()
    free = build_flow(data).run(catalog_free)

    catalog_pla = Catalog()
    pla = EtlPlaRegistry()
    pla.add(PROHIBITION)
    pla.add(IntegrationProhibition("lab-never-cleans", "laboratory"))
    restricted = build_flow(data).run(catalog_pla, pla=pla)

    # Check no produced table combines the prohibited pair.
    def combines_pair(catalog: Catalog) -> int:
        count = 0
        for name in catalog.table_names():
            footprint = {
                f"{rid.provider}/{rid.table}"
                for rid in catalog.table(name).all_lineage()
            }
            if PROHIBITION.left in footprint and PROHIBITION.right in footprint:
                count += 1
        return count

    return {
        "free": free,
        "restricted": restricted,
        "free_combined_tables": combines_pair(catalog_free),
        "restricted_combined_tables": combines_pair(catalog_pla),
    }


def main(data=None) -> None:
    if data is None:
        data = generate(HealthcareConfig(n_patients=100, n_prescriptions=2_000, n_exams=0))
    outcome = run_fig3(data)
    rows = [
        {
            "variant": "no ETL annotations",
            "executed": len(outcome["free"].executed),
            "skipped": len(outcome["free"].skipped),
            "violations": len(outcome["free"].violations),
            "tables_combining_pair": outcome["free_combined_tables"],
        },
        {
            "variant": "Fig 3 annotations",
            "executed": len(outcome["restricted"].executed),
            "skipped": len(outcome["restricted"].skipped),
            "violations": len(outcome["restricted"].violations),
            "tables_combining_pair": outcome["restricted_combined_tables"],
        },
    ]
    print_table(rows, title="FIG3: ETL-level PLA enforcement")
    print("\nviolation detail:")
    for violation in outcome["restricted"].violations:
        print(f"  {violation}")


# -- pytest-benchmark targets -------------------------------------------------


def test_fig3_prohibition_blocks_laundered_join(benchmark):
    data = generate(HealthcareConfig(n_patients=100, n_prescriptions=2_000, n_exams=0))
    outcome = benchmark.pedantic(lambda: run_fig3(data), rounds=1, iterations=1)
    # Unrestricted flow does combine the pair (that is the leak):
    assert outcome["free_combined_tables"] > 0
    # With the annotation, nothing combining the pair ever materializes:
    assert outcome["restricted_combined_tables"] == 0
    assert [v.constraint for v in outcome["restricted"].violations] == [
        "muni-fd-no-costs"
    ]
    # Blocked op cascades: join and load are both skipped.
    assert {"join_cost", "load"} <= set(outcome["restricted"].skipped)
    main(data)


def test_fig3_flow_throughput(benchmark):
    data = generate(HealthcareConfig(n_patients=200, n_prescriptions=5_000, n_exams=0))

    def run():
        return build_flow(data).run(Catalog())

    result = benchmark(run)
    assert result.clean


if __name__ == "__main__":
    main()
