#!/usr/bin/env python
"""Regenerate every paper figure and ablation table in one run.

Usage::

    python benchmarks/run_all.py               # print everything
    python benchmarks/run_all.py fig5 abl-mr   # a subset

The per-figure assertions live in the pytest targets (``pytest
benchmarks/``); this runner is for regenerating the tables behind
EXPERIMENTS.md in one sitting.
"""

from __future__ import annotations

import importlib
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

TARGETS: dict[str, str] = {
    "fig1": "benchmarks.bench_fig1_scenario",
    "fig2": "benchmarks.bench_fig2_source_level",
    "fig3": "benchmarks.bench_fig3_warehouse_level",
    "fig4": "benchmarks.bench_fig4_report_level",
    "fig5": "benchmarks.bench_fig5_continuum",
    "abl-mr": "benchmarks.bench_ablation_granularity",
    "abl-cont": "benchmarks.bench_ablation_containment",
    "abl-anon": "benchmarks.bench_ablation_anonymization",
    "abl-pbac": "benchmarks.bench_ablation_prbac",
    "abl-neg": "benchmarks.bench_ablation_negotiation",
    "abl-int": "benchmarks.bench_ablation_integration",
}


def main(argv: list[str]) -> int:
    names = argv or list(TARGETS)
    unknown = [n for n in names if n not in TARGETS]
    if unknown:
        print(f"unknown target(s): {unknown}; choose from {sorted(TARGETS)}")
        return 2
    for name in names:
        print(f"\n{'#' * 70}\n# {name}\n{'#' * 70}")
        started = time.perf_counter()
        module = importlib.import_module(TARGETS[name])
        module.main()
        print(f"\n[{name} completed in {time.perf_counter() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
