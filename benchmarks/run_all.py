#!/usr/bin/env python
"""Regenerate every paper figure and ablation table in one run.

Usage::

    python benchmarks/run_all.py                  # print everything
    python benchmarks/run_all.py fig5 abl-mr      # a subset
    python benchmarks/run_all.py --smoke --json   # CI: tiny sizes + BENCH_engine.json

The per-figure assertions live in the pytest targets (``pytest
benchmarks/``); this runner is for regenerating the tables behind
EXPERIMENTS.md in one sitting. A target that raises is reported and the
runner exits nonzero, so CI can't silently publish half a result set.

``--smoke`` is forwarded to targets whose ``main`` accepts it (currently the
engine bench), shrinking sizes for a fast sanity pass. ``--json`` makes the
engine bench write its numbers to ``BENCH_engine.json`` in the working
directory.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pathlib
import sys
import time
import traceback

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

TARGETS: dict[str, str] = {
    "fig1": "benchmarks.bench_fig1_scenario",
    "fig2": "benchmarks.bench_fig2_source_level",
    "fig3": "benchmarks.bench_fig3_warehouse_level",
    "fig4": "benchmarks.bench_fig4_report_level",
    "fig5": "benchmarks.bench_fig5_continuum",
    "abl-mr": "benchmarks.bench_ablation_granularity",
    "abl-cont": "benchmarks.bench_ablation_containment",
    "abl-anon": "benchmarks.bench_ablation_anonymization",
    "abl-pbac": "benchmarks.bench_ablation_prbac",
    "abl-neg": "benchmarks.bench_ablation_negotiation",
    "abl-int": "benchmarks.bench_ablation_integration",
    "engine": "benchmarks.bench_engine_scaling",
    "obs": "benchmarks.bench_obs_overhead",
    "resilience": "benchmarks.bench_resilience",
    "verify": "benchmarks.bench_verify",
    "ingest": "benchmarks.bench_ingest",
    "service": "benchmarks.bench_service",
}

JSON_PATH = "BENCH_engine.json"

#: Per-target output files for ``--json`` (default: the engine bench's).
JSON_PATHS: dict[str, str] = {
    "engine": "BENCH_engine.json",
    "obs": "BENCH_obs.json",
    "resilience": "BENCH_resilience.json",
    "verify": "BENCH_verify.json",
    "ingest": "BENCH_ingest.json",
    "service": "BENCH_service.json",
}


def _target_kwargs(entry, *, name: str, smoke: bool, emit_json: bool) -> dict:
    """Forward only the options a target's ``main`` declares."""
    params = inspect.signature(entry).parameters
    kwargs = {}
    if smoke and "smoke" in params:
        kwargs["smoke"] = True
    if emit_json and "json_path" in params:
        kwargs["json_path"] = JSON_PATHS.get(name, JSON_PATH)
    return kwargs


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("targets", nargs="*", metavar="target")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for targets that support it (fast CI sanity pass)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help=f"write engine-bench results to {JSON_PATH}",
    )
    args = parser.parse_args(argv)

    names = args.targets or list(TARGETS)
    unknown = [n for n in names if n not in TARGETS]
    if unknown:
        print(f"unknown target(s): {unknown}; choose from {sorted(TARGETS)}")
        return 2
    failures: list[str] = []
    for name in names:
        print(f"\n{'#' * 70}\n# {name}\n{'#' * 70}")
        started = time.perf_counter()
        try:
            module = importlib.import_module(TARGETS[name])
            code = module.main(
                **_target_kwargs(
                    module.main, name=name, smoke=args.smoke, emit_json=args.json
                )
            )
            # Gate-style targets (the obs bench) signal failure by exit code.
            if isinstance(code, int) and code != 0:
                failures.append(name)
                print(f"\n[{name} FAILED (exit {code}) "
                      f"after {time.perf_counter() - started:.1f}s]")
                continue
        except Exception:
            traceback.print_exc()
            failures.append(name)
            print(f"\n[{name} FAILED after {time.perf_counter() - started:.1f}s]")
            continue
        print(f"\n[{name} completed in {time.perf_counter() - started:.1f}s]")
    if failures:
        print(f"\n{len(failures)} target(s) failed: {', '.join(failures)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
