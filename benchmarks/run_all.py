#!/usr/bin/env python
"""Regenerate every paper figure and ablation table in one run.

Usage::

    python benchmarks/run_all.py                  # print everything
    python benchmarks/run_all.py fig5 abl-mr      # a subset
    python benchmarks/run_all.py --smoke --json   # CI: tiny sizes + BENCH_engine.json

The per-figure assertions live in the pytest targets (``pytest
benchmarks/``); this runner is for regenerating the tables behind
EXPERIMENTS.md in one sitting. A target that raises is reported and the
runner exits nonzero, so CI can't silently publish half a result set.

``--smoke`` is forwarded to targets whose ``main`` accepts it (currently the
engine bench), shrinking sizes for a fast sanity pass. ``--json`` makes the
engine bench write its numbers to ``BENCH_engine.json`` in the working
directory.

After the targets run, the runner prints a consolidated summary over every
``BENCH_*.json`` present in the working directory — per file, the gate
results (``gates`` lists plus legacy top-level ``passed`` booleans) — and
exits nonzero if any gate regressed, whether the file was just rewritten or
is the committed baseline.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import json
import pathlib
import sys
import time
import traceback

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

TARGETS: dict[str, str] = {
    "fig1": "benchmarks.bench_fig1_scenario",
    "fig2": "benchmarks.bench_fig2_source_level",
    "fig3": "benchmarks.bench_fig3_warehouse_level",
    "fig4": "benchmarks.bench_fig4_report_level",
    "fig5": "benchmarks.bench_fig5_continuum",
    "abl-mr": "benchmarks.bench_ablation_granularity",
    "abl-cont": "benchmarks.bench_ablation_containment",
    "abl-anon": "benchmarks.bench_ablation_anonymization",
    "abl-pbac": "benchmarks.bench_ablation_prbac",
    "abl-neg": "benchmarks.bench_ablation_negotiation",
    "abl-int": "benchmarks.bench_ablation_integration",
    "engine": "benchmarks.bench_engine_scaling",
    "obs": "benchmarks.bench_obs_overhead",
    "resilience": "benchmarks.bench_resilience",
    "verify": "benchmarks.bench_verify",
    "ingest": "benchmarks.bench_ingest",
    "service": "benchmarks.bench_service",
}

JSON_PATH = "BENCH_engine.json"

#: Per-target output files for ``--json`` (default: the engine bench's).
JSON_PATHS: dict[str, str] = {
    "engine": "BENCH_engine.json",
    "obs": "BENCH_obs.json",
    "resilience": "BENCH_resilience.json",
    "verify": "BENCH_verify.json",
    "ingest": "BENCH_ingest.json",
    "service": "BENCH_service.json",
}


def _target_kwargs(entry, *, name: str, smoke: bool, emit_json: bool) -> dict:
    """Forward only the options a target's ``main`` declares."""
    params = inspect.signature(entry).parameters
    kwargs = {}
    if smoke and "smoke" in params:
        kwargs["smoke"] = True
    if emit_json and "json_path" in params:
        kwargs["json_path"] = JSON_PATHS.get(name, JSON_PATH)
    return kwargs


def _collect_gates(data: object) -> list[dict]:
    """Normalize one BENCH_*.json payload into gate rows.

    Structured ``gates`` lists are taken as-is; a top-level ``passed``
    boolean (the older bench convention) becomes a single synthetic gate so
    every file contributes at least one row to the summary.
    """
    gates: list[dict] = []
    if not isinstance(data, dict):
        return gates
    for gate in data.get("gates") or []:
        if isinstance(gate, dict) and "passed" in gate:
            gates.append(
                {
                    "name": str(gate.get("name", "unnamed")),
                    "value": gate.get("value"),
                    "threshold": gate.get("threshold"),
                    "passed": bool(gate["passed"]),
                }
            )
    if "passed" in data:
        gates.append(
            {
                "name": "overall",
                "value": None,
                "threshold": None,
                "passed": bool(data["passed"]),
            }
        )
    return gates


def summarize_bench_files(directory: str = ".") -> int:
    """Print the consolidated gate table; return the number of failed gates."""
    files = sorted(pathlib.Path(directory).glob("BENCH_*.json"))
    print(f"\n{'#' * 70}\n# consolidated gate summary\n{'#' * 70}")
    if not files:
        print("no BENCH_*.json files found")
        return 0
    failed = 0
    print(f"{'file':<24} {'gate':<38} {'value':>10} {'threshold':>10} status")
    for path in files:
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            print(f"{path.name:<24} {'<unreadable>':<38} {'-':>10} {'-':>10} FAIL")
            failed += 1
            continue
        gates = _collect_gates(data)
        if not gates:
            print(f"{path.name:<24} {'(no gates)':<38} {'-':>10} {'-':>10} ok")
            continue
        for gate in gates:
            value = "-" if gate["value"] is None else f"{gate['value']:.2f}"
            threshold = (
                "-" if gate["threshold"] is None else f"{gate['threshold']:.2f}"
            )
            status = "PASS" if gate["passed"] else "FAIL"
            if not gate["passed"]:
                failed += 1
            print(
                f"{path.name:<24} {gate['name']:<38} {value:>10} "
                f"{threshold:>10} {status}"
            )
    if failed:
        print(f"\n{failed} gate(s) failed")
    else:
        print("\nall gates pass")
    return failed


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("targets", nargs="*", metavar="target")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for targets that support it (fast CI sanity pass)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help=f"write engine-bench results to {JSON_PATH}",
    )
    args = parser.parse_args(argv)

    names = args.targets or list(TARGETS)
    unknown = [n for n in names if n not in TARGETS]
    if unknown:
        print(f"unknown target(s): {unknown}; choose from {sorted(TARGETS)}")
        return 2
    failures: list[str] = []
    for name in names:
        print(f"\n{'#' * 70}\n# {name}\n{'#' * 70}")
        started = time.perf_counter()
        try:
            module = importlib.import_module(TARGETS[name])
            code = module.main(
                **_target_kwargs(
                    module.main, name=name, smoke=args.smoke, emit_json=args.json
                )
            )
            # Gate-style targets (the obs bench) signal failure by exit code.
            if isinstance(code, int) and code != 0:
                failures.append(name)
                print(f"\n[{name} FAILED (exit {code}) "
                      f"after {time.perf_counter() - started:.1f}s]")
                continue
        except Exception:
            traceback.print_exc()
            failures.append(name)
            print(f"\n[{name} FAILED after {time.perf_counter() - started:.1f}s]")
            continue
        print(f"\n[{name} completed in {time.perf_counter() - started:.1f}s]")
    failed_gates = summarize_bench_files()
    if failures:
        print(f"\n{len(failures)} target(s) failed: {', '.join(failures)}")
        return 1
    return 1 if failed_gates else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
