"""Concurrent delivery-daemon benchmark: throughput, tail latency, and proof.

Drives the daemon with the two standard load mixes — ``read_heavy`` (3%
mutations) and ``mutation_heavy`` (30% mutations) — at 32 concurrent
consumers each, then **replays every run's commit log serially** and gates
on zero linearizability violations: a throughput number from a run whose
concurrent results diverge from some serial order would be a number about
broken code.

Reported per mix: requests, wall seconds, throughput (req/s), and
nearest-rank p50/p95/p99 latency (submit → result, i.e. including queue
wait). ``main`` (via ``python benchmarks/run_all.py service`` or ``repro
bench service``) prints the table, optionally writes ``BENCH_service.json``,
and returns non-zero when any replay reports a violation.
"""

from __future__ import annotations

import json
from typing import Any

from repro.service.loadgen import LOAD_MIXES, run_mix

JSON_PATH = "BENCH_service.json"

CONSUMERS = 32
FULL_REQUESTS_PER_CONSUMER = 12
SMOKE_REQUESTS_PER_CONSUMER = 4


def run(*, smoke: bool = False) -> dict[str, Any]:
    """Run both mixes with linearizability checking; returns the result doc."""
    requests_per_consumer = (
        SMOKE_REQUESTS_PER_CONSUMER if smoke else FULL_REQUESTS_PER_CONSUMER
    )
    mixes: dict[str, Any] = {}
    for mix in sorted(LOAD_MIXES):
        result = run_mix(
            mix,
            consumers=CONSUMERS,
            requests_per_consumer=requests_per_consumer,
            check=True,
        )
        mixes[mix] = result.as_dict()
    return {
        "bench": "service",
        "smoke": smoke,
        "consumers": CONSUMERS,
        "requests_per_consumer": requests_per_consumer,
        "mixes": mixes,
    }


def render(doc: dict[str, Any]) -> str:
    lines = [
        f"service bench: {doc['consumers']} consumers x "
        f"{doc['requests_per_consumer']} requests"
        + (" (smoke)" if doc["smoke"] else ""),
        "",
        f"{'mix':<16} {'req':>5} {'wall_s':>8} {'req/s':>8} "
        f"{'p50_ms':>8} {'p95_ms':>8} {'p99_ms':>8} {'epoch':>6}  linearizable",
    ]
    for mix, r in doc["mixes"].items():
        lin = r["linearizability"]
        verdict = "PASS" if lin["ok"] else f"FAIL({len(lin['violations'])})"
        lines.append(
            f"{mix:<16} {r['requests']:>5} {r['wall_s']:>8.3f} "
            f"{r['throughput_rps']:>8.1f} {r['p50_ms']:>8.1f} "
            f"{r['p95_ms']:>8.1f} {r['p99_ms']:>8.1f} {r['epoch']:>6}  {verdict}"
        )
    for mix, r in doc["mixes"].items():
        for violation in r["linearizability"]["violations"]:
            lines.append(f"  {mix} violation: {violation}")
    return "\n".join(lines)


def main(*, smoke: bool = False, json_path: str | None = None) -> int:
    doc = run(smoke=smoke)
    print(render(doc))
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"\nwrote {json_path}")
    failed = [
        mix
        for mix, r in doc["mixes"].items()
        if not r["linearizability"]["ok"]
    ]
    if failed:
        print(f"\nLINEARIZABILITY GATE FAILED for: {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
