"""Verifier benchmark: solver throughput and whole-catalog verify wall time.

The cross-level verifier runs on every catalog mutation in CI, so its cost
must stay interactive. Two measurements:

* **solver throughput** — implication/satisfiability decisions per second
  over a generated mix of conjunctive range/equality/IN/NULL predicates
  shaped like the healthcare workload's filters;
* **whole-catalog verify** — wall time of a full :class:`DeploymentVerifier`
  pass (replay included) over scenarios with 10/100/1000 reports (smoke:
  5/20), the §5 scaling axis that dominates real deployments.

``main`` (via ``python benchmarks/run_all.py verify`` or ``repro bench
verify``) prints the table and optionally writes ``BENCH_verify.json``.
"""

from __future__ import annotations

import json
import time
from typing import Any

from repro.relational.expressions import (
    And,
    Col,
    Comparison,
    Expr,
    InList,
    IsNull,
    Lit,
    Not,
    Or,
)
from repro.simulation import ScenarioConfig, build_scenario
from repro.verify import (
    DeploymentVerifier,
    Sat,
    VerificationInput,
    implication_counterexample,
    satisfiable,
)

JSON_PATH = "BENCH_verify.json"

FULL_SIZES = (10, 100, 1000)
SMOKE_SIZES = (5, 20)


def _predicate_mix(n: int) -> list[tuple[Expr, Expr]]:
    """``n`` (premise, conclusion) pairs cycling through workload shapes."""
    diseases = ("asthma", "diabetes", "flu", "hypertension", "HIV")
    pairs: list[tuple[Expr, Expr]] = []
    for i in range(n):
        lo, hi = (i % 7) * 10, (i % 7) * 10 + 50 + (i % 3)
        premise: Expr = And(
            Comparison(">", Col("cost"), Lit(lo)),
            Comparison("<", Col("cost"), Lit(hi)),
        )
        if i % 2:
            premise = And(
                premise, InList(Col("disease"), diseases[: 2 + i % 3])
            )
        if i % 3 == 0:
            premise = And(premise, Not(IsNull(Col("drug"))))
        if i % 5 == 0:
            premise = Or(
                premise, Comparison("=", Col("disease"), Lit(diseases[i % 5]))
            )
        conclusion: Expr = Comparison(">", Col("cost"), Lit(lo - 10))
        if i % 4 == 0:
            conclusion = And(
                conclusion, Not(Comparison("=", Col("disease"), Lit("HIV")))
            )
        pairs.append((premise, conclusion))
    return pairs


def run_solver_bench(*, n_predicates: int = 400) -> dict[str, Any]:
    pairs = _predicate_mix(n_predicates)
    counts = {s.name: 0 for s in Sat}
    start = time.perf_counter()
    for premise, conclusion in pairs:
        counts[satisfiable(premise).status.name] += 1
        counts[implication_counterexample(premise, conclusion).status.name] += 1
    elapsed = time.perf_counter() - start
    decisions = 2 * len(pairs)
    return {
        "predicates": len(pairs),
        "decisions": decisions,
        "elapsed_s": elapsed,
        "decisions_per_s": decisions / elapsed if elapsed else 0.0,
        "status_counts": counts,
    }


def run_catalog_bench(sizes: tuple[int, ...]) -> list[dict[str, Any]]:
    rows: list[dict[str, Any]] = []
    for size in sizes:
        scenario = build_scenario(ScenarioConfig(n_reports=size))
        target = VerificationInput.from_scenario(scenario)
        start = time.perf_counter()
        report = DeploymentVerifier(target).verify()
        elapsed = time.perf_counter() - start
        counts = report.counts()
        rows.append(
            {
                "n_reports": size,
                "checks": len(report.results),
                "proved": counts["proved"],
                "refuted": counts["refuted"],
                "unknown": counts["unknown"],
                "elapsed_s": elapsed,
                "checks_per_s": len(report.results) / elapsed
                if elapsed
                else 0.0,
            }
        )
    return rows


def run_verify_bench(*, smoke: bool = False) -> dict[str, Any]:
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    solver = run_solver_bench(n_predicates=100 if smoke else 400)
    catalog = run_catalog_bench(sizes)
    return {
        "smoke": smoke,
        "solver": solver,
        "catalog": catalog,
        "passed": all(r["refuted"] == 0 and r["unknown"] == 0 for r in catalog),
    }


def _print_report(results: dict[str, Any]) -> None:
    s = results["solver"]
    print("Solver throughput (SAT + implication over workload-shaped mix)")
    print(
        f"  {s['decisions']} decisions over {s['predicates']} predicate "
        f"pairs in {s['elapsed_s']:.3f}s = {s['decisions_per_s']:.0f}/s "
        f"({s['status_counts']})"
    )
    print("\nWhole-catalog verification (seed healthcare deployment)")
    print(f"{'reports':>8} {'checks':>7} {'verdicts':>22} {'wall s':>8} {'checks/s':>9}")
    for r in results["catalog"]:
        verdicts = (
            f"{r['proved']}P/{r['refuted']}R/{r['unknown']}U"
        )
        print(
            f"{r['n_reports']:>8} {r['checks']:>7} {verdicts:>22} "
            f"{r['elapsed_s']:>8.3f} {r['checks_per_s']:>9.1f}"
        )
    verdict = "PASS" if results["passed"] else "FAIL"
    print(f"\n{verdict}: seed deployment verifies clean at every size.")


def main(*, smoke: bool = False, json_path: str | None = None) -> int:
    results = run_verify_bench(smoke=smoke)
    _print_report(results)
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
        print(f"\nwrote {json_path}")
    return 0 if results["passed"] else 1


# ---------------------------------------------------------------------------
# pytest smoke: keep the harness itself from rotting.
# ---------------------------------------------------------------------------


def test_verify_bench_smoke():
    results = run_verify_bench(smoke=True)
    assert results["solver"]["decisions_per_s"] > 0
    assert results["catalog"], "no catalog sizes measured"
    assert results["passed"], "seed deployment did not verify clean"


if __name__ == "__main__":
    raise SystemExit(main())
