"""Verifier benchmark: solver throughput, whole-catalog and incremental verify.

The cross-level verifier runs on every catalog mutation in CI, so its cost
must stay interactive. Three measurements:

* **solver throughput** — implication/satisfiability decisions per second
  over a generated mix of conjunctive range/equality/IN/NULL predicates
  shaped like the healthcare workload's filters;
* **whole-catalog verify** — wall time of a full :class:`DeploymentVerifier`
  pass (replay included) over scenarios with 10/100/1000 reports (smoke:
  5/20), the §5 scaling axis that dominates real deployments;
* **incremental re-verification** — after mutating one report in a
  verification-bound catalog (rich predicates, so solver work rather than
  keying cost dominates), a warm :class:`IncrementalVerifier` pass must
  produce verdicts identical to a cold full pass and beat it by the gated
  factor (full runs: ≥20×; smoke: ≥2×, the fixture is tiny);
* **PROVED rate** — over a solver-depth corpus whose claims need linear
  arithmetic atoms or functional dependencies to decide, the fraction of
  checks that come back PROVED, gated against both an absolute floor and
  the gain over an ablated baseline (arithmetic off, FDs stripped). The
  seed catalog's own PROVED rate is gated at 1.0 so solver changes can
  never silently regress claims that used to prove.

``main`` (via ``python benchmarks/run_all.py verify`` or ``repro bench
verify``) prints the table and optionally writes ``BENCH_verify.json``,
including a ``gates`` list consumed by ``run_all.py``'s consolidated table.
"""

from __future__ import annotations

import json
import time
from typing import Any

from repro.core.containment import clear_proof_caches
from repro.core.metareport import MetaReport, MetaReportSet
from repro.core.pla import PLA, IntensionalCondition, PlaLevel, PlaStatus
from repro.relational import Catalog, Query, Table, make_schema
from repro.relational.expressions import (
    And,
    Arith,
    Col,
    Comparison,
    Expr,
    InList,
    IsNull,
    Lit,
    Not,
    Or,
)
from repro.relational.types import ColumnType
from repro.reports.definition import ReportDefinition
from repro.simulation import ScenarioConfig, build_scenario
from repro.verify import (
    DeploymentVerifier,
    FunctionalDependency,
    IncrementalVerifier,
    Sat,
    SourcePolicy,
    VerificationInput,
    implication_counterexample,
    satisfiable,
)
from repro.verify.domain import set_arithmetic_enabled

JSON_PATH = "BENCH_verify.json"

FULL_SIZES = (10, 100, 1000)
SMOKE_SIZES = (5, 20)

#: Warm incremental re-verification vs a cold full pass, after one report
#: mutation. The smoke fixture is small enough that fixed costs cap the
#: ratio, so it only sanity-checks the machinery.
INCREMENTAL_GATE_FULL = 20.0
INCREMENTAL_GATE_SMOKE = 2.0


def _predicate_mix(n: int) -> list[tuple[Expr, Expr]]:
    """``n`` (premise, conclusion) pairs cycling through workload shapes."""
    diseases = ("asthma", "diabetes", "flu", "hypertension", "HIV")
    pairs: list[tuple[Expr, Expr]] = []
    for i in range(n):
        lo, hi = (i % 7) * 10, (i % 7) * 10 + 50 + (i % 3)
        premise: Expr = And(
            Comparison(">", Col("cost"), Lit(lo)),
            Comparison("<", Col("cost"), Lit(hi)),
        )
        if i % 2:
            premise = And(
                premise, InList(Col("disease"), diseases[: 2 + i % 3])
            )
        if i % 3 == 0:
            premise = And(premise, Not(IsNull(Col("drug"))))
        if i % 5 == 0:
            premise = Or(
                premise, Comparison("=", Col("disease"), Lit(diseases[i % 5]))
            )
        conclusion: Expr = Comparison(">", Col("cost"), Lit(lo - 10))
        if i % 4 == 0:
            conclusion = And(
                conclusion, Not(Comparison("=", Col("disease"), Lit("HIV")))
            )
        pairs.append((premise, conclusion))
    return pairs


def run_solver_bench(*, n_predicates: int = 400) -> dict[str, Any]:
    pairs = _predicate_mix(n_predicates)
    counts = {s.name: 0 for s in Sat}
    start = time.perf_counter()
    for premise, conclusion in pairs:
        counts[satisfiable(premise).status.name] += 1
        counts[implication_counterexample(premise, conclusion).status.name] += 1
    elapsed = time.perf_counter() - start
    decisions = 2 * len(pairs)
    return {
        "predicates": len(pairs),
        "decisions": decisions,
        "elapsed_s": elapsed,
        "decisions_per_s": decisions / elapsed if elapsed else 0.0,
        "status_counts": counts,
    }


def run_catalog_bench(sizes: tuple[int, ...]) -> list[dict[str, Any]]:
    rows: list[dict[str, Any]] = []
    for size in sizes:
        scenario = build_scenario(ScenarioConfig(n_reports=size))
        target = VerificationInput.from_scenario(scenario)
        start = time.perf_counter()
        report = DeploymentVerifier(target).verify()
        elapsed = time.perf_counter() - start
        counts = report.counts()
        rows.append(
            {
                "n_reports": size,
                "checks": len(report.results),
                "proved": counts["proved"],
                "refuted": counts["refuted"],
                "unknown": counts["unknown"],
                "elapsed_s": elapsed,
                "checks_per_s": len(report.results) / elapsed
                if elapsed
                else 0.0,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Incremental re-verification (verification-bound fixture)
# ---------------------------------------------------------------------------

_DISEASES = ("asthma", "diabetes", "flu", "hypertension", "HIV")
_COLS = ("patient", "drug", "disease", "doctor", "zip", "gender", "cost")


def _rich_predicate(i: int) -> Expr:
    """A solver-heavy predicate: range ∧ IN ∧ NOT NULL ∨ equality branches.

    The seed scenario's filters decide in ~20µs each, which makes keying
    cost — not proving cost — the bottleneck and says nothing about real
    deployments. These shapes cost ~0.2ms per solver decision, so the
    incremental speedup measures avoided *proof* work.
    """
    lo, hi = (i % 7) * 10, (i % 7) * 10 + 50 + (i % 3)
    p: Expr = And(
        Comparison(">", Col("cost"), Lit(lo)),
        Comparison("<", Col("cost"), Lit(hi)),
    )
    if i % 2:
        p = And(p, InList(Col("disease"), _DISEASES[: 2 + i % 3]))
    if i % 3 == 0:
        p = And(p, Not(IsNull(Col("drug"))))
    if i % 5 == 0:
        p = Or(p, Comparison("=", Col("disease"), Lit(_DISEASES[i % 5])))
    return p


def build_verification_bound_input(
    n_reports: int, *, n_metareports: int = 6
) -> VerificationInput:
    """A deployment whose verification cost is dominated by solver work."""
    cat = Catalog()
    schema = make_schema(
        *(
            (c, ColumnType.INT if c == "cost" else ColumnType.STRING, True)
            for c in _COLS
        )
    )
    cat.add_table(Table.from_rows("universe", schema, [], provider="warehouse"))
    metareports = MetaReportSet()
    for m in range(n_metareports):
        region = And(
            Comparison(">", Col("cost"), Lit(-10 * m - 10)),
            Not(Comparison("=", Col("disease"), Lit("HIV"))),
        )
        query = Query.from_("universe").filter(region).project(*_COLS)
        mr = MetaReport(f"mr_{m}", query)
        pla = PLA(
            f"pla_mr_{m}",
            "owner",
            PlaLevel.METAREPORT,
            f"mr_{m}",
            (
                IntensionalCondition(
                    "disease", _rich_predicate(m + 3), "suppress_row"
                ),
            ),
            status=PlaStatus.APPROVED,
        )
        mr.attach_pla(pla)
        metareports.add(mr)
    metareports.register_views(cat)
    reports = []
    for i in range(n_reports):
        query = (
            Query.from_(f"mr_{i % n_metareports}")
            .filter(_rich_predicate(i))
            .project("drug", "disease", "cost")
        )
        reports.append(
            ReportDefinition(
                f"r_{i}", f"R {i}", query, frozenset({"analyst"}), "care"
            )
        )
    policies = tuple(
        SourcePolicy(
            f"policy_{k}",
            "universe",
            Or(_rich_predicate(k + 11), IsNull(Col("cost"))),
        )
        for k in range(4)
    )
    return VerificationInput(
        catalog=cat,
        metareports=metareports,
        reports=tuple(reports),
        universe="universe",
        universe_columns=_COLS,
        source_policies=policies,
    )


def run_incremental_bench(*, smoke: bool = False) -> dict[str, Any]:
    """Mutate one report, then race warm incremental vs cold full verify."""
    n_reports = 20 if smoke else 200
    target = build_verification_bound_input(n_reports)

    # Populate the verdict cache (untimed), then mutate one report — the
    # warm pass must re-prove exactly that unit and reuse everything else.
    verifier = IncrementalVerifier(target)
    verifier.verify()
    mutated = target.reports[n_reports // 2]
    new_query = (
        Query.from_(mutated.query.source)
        .filter(_rich_predicate(n_reports + 1))
        .project("drug", "disease", "cost")
    )
    reports = tuple(
        r.with_query(new_query) if r is mutated else r for r in target.reports
    )
    target = VerificationInput(
        catalog=target.catalog,
        metareports=target.metareports,
        reports=reports,
        universe=target.universe,
        universe_columns=target.universe_columns,
        source_policies=target.source_policies,
    )
    cache = verifier.cache
    cache.hits = cache.misses = 0  # report the warm pass, not the populate
    verifier = IncrementalVerifier(target, cache=cache)

    # Warm incremental first: timing cold afterwards means the cold run
    # cannot donate proof-cache warmth to the measurement it is racing.
    start = time.perf_counter()
    warm_report = verifier.verify()
    warm_s = time.perf_counter() - start

    clear_proof_caches()  # cold = fresh process: no memoized proofs either
    start = time.perf_counter()
    full_report = DeploymentVerifier(target).verify()
    cold_s = time.perf_counter() - start

    identical = [
        (r.code, r.location, r.verdict) for r in warm_report.results
    ] == [(r.code, r.location, r.verdict) for r in full_report.results]
    speedup = cold_s / warm_s if warm_s else float("inf")
    gate = INCREMENTAL_GATE_SMOKE if smoke else INCREMENTAL_GATE_FULL
    return {
        "n_reports": n_reports,
        "checks": len(full_report.results),
        "cold_full_s": cold_s,
        "warm_incremental_s": warm_s,
        "speedup": speedup,
        "units_reused": verifier.cache.hits,
        "units_reproved": verifier.cache.misses,
        "verdicts_identical": identical,
        "gate": gate,
        "passed": identical and speedup >= gate,
    }


# ---------------------------------------------------------------------------
# PROVED rate: how much of the claim space the solver actually decides
# ---------------------------------------------------------------------------

_HIV_DRUGS = ("lamivudine", "zidovudine")
_SAFE_DRUGS = ("aspirin", "ibuprofen", "metformin")

#: Every claim in the solver-depth corpus is decidable by construction, so
#: the PROVED rate must stay essentially perfect (1.0 expected).
PROVED_RATE_GATE = 0.9

#: The corpus must prove strictly more than the ablated solver (linear
#: arithmetic disabled, functional dependencies stripped) — the
#: no-regression guard on solver depth itself.
PROVED_RATE_GAIN_GATE = 0.1

#: The seed healthcare deployment has verified 100% PROVED since the
#: verifier landed; any drop is a regression.
SEED_PROVED_RATE_GATE = 1.0


def _solver_depth_fds() -> tuple[FunctionalDependency, ...]:
    """One dimensional dependency: the drug prescribed determines the disease."""
    mapping = tuple((d, "HIV") for d in _HIV_DRUGS) + tuple(
        zip(_SAFE_DRUGS, ("flu", "asthma", "diabetes"))
    )
    return (
        FunctionalDependency(
            name="dim_drug.drug->disease",
            determinant="drug",
            dependent="disease",
            mapping=mapping,
            source="dimension drug",
        ),
    )


def _times(column: str, factor: float) -> Expr:
    return Arith("*", Col(column), Lit(factor))


def build_solver_depth_input(*, with_fds: bool = True) -> VerificationInput:
    """A deployment whose claims need linear arithmetic or an FD to decide.

    Two meta-report families: arithmetic regions (``cost * 1.2 > 100``
    shapes — undecidable before the linear-atom extension) and FD regions
    (drug allow-lists whose source-policy implication only holds because
    the drug determines the disease). Every claim is decidable by
    construction, so the PROVED rate measures solver depth, not corpus
    noise; ``with_fds=False`` strips the dependencies for the ablation
    baseline.
    """
    cat = Catalog()
    schema = make_schema(
        *(
            (c, ColumnType.INT if c == "cost" else ColumnType.STRING, True)
            for c in _COLS
        )
    )
    cat.add_table(Table.from_rows("universe", schema, [], provider="warehouse"))
    metareports = MetaReportSet()
    no_hiv_drugs = Not(InList(Col("drug"), _HIV_DRUGS))
    for m in range(4):
        if m % 2 == 0:
            # Arithmetic region: cost floor expressed through a multiplier.
            region: Expr = And(
                Comparison(">", _times("cost", 1.2), Lit(100 + 10 * m)),
                no_hiv_drugs,
            )
            condition: Expr = Comparison(">", _times("cost", 1.2), Lit(90.0))
        else:
            # FD region: no arithmetic, but the source-policy implication
            # (no HIV rows) needs drug -> disease to go through.
            region = And(
                Comparison(">", Col("cost"), Lit(60 + m)), no_hiv_drugs
            )
            condition = Comparison(">", Col("cost"), Lit(75 + m))
        query = Query.from_("universe").filter(region).project(*_COLS)
        mr = MetaReport(f"sd_mr_{m}", query)
        pla = PLA(
            f"pla_sd_mr_{m}",
            "owner",
            PlaLevel.METAREPORT,
            f"sd_mr_{m}",
            (IntensionalCondition("cost", condition, "suppress_row"),),
            status=PlaStatus.APPROVED,
        )
        mr.attach_pla(pla)
        metareports.add(mr)
    metareports.register_views(cat)
    reports = tuple(
        ReportDefinition(
            f"sd_r_{i}",
            f"SD {i}",
            Query.from_(f"sd_mr_{i % 4}")
            .filter(Comparison(">", _times("cost", 1.2), Lit(200 + i)))
            .project("drug", "disease", "cost"),
            frozenset({"analyst"}),
            "care",
        )
        for i in range(4)
    )
    policies = (
        # Needs arithmetic against the even regions (boundary 100/1.2 ≈
        # 83.3 > 50) and plain comparisons against the odd ones (60 > 50).
        SourcePolicy(
            "cost-floor", "universe", Comparison(">", Col("cost"), Lit(50))
        ),
        # Needs the FD: the regions only constrain the *drug*.
        SourcePolicy(
            "hiv-rows-stay-home",
            "universe",
            Not(Comparison("=", Col("disease"), Lit("HIV"))),
        ),
    )
    return VerificationInput(
        catalog=cat,
        metareports=metareports,
        reports=reports,
        universe="universe",
        universe_columns=_COLS,
        source_policies=policies,
        fds=_solver_depth_fds() if with_fds else (),
    )


def run_proved_rate_bench() -> dict[str, Any]:
    """PROVED rate over the solver-depth corpus, vs the ablated baseline."""
    clear_proof_caches()
    report = DeploymentVerifier(build_solver_depth_input()).verify()
    counts = report.counts()
    total = len(report.results)
    rate = counts["proved"] / total if total else 0.0

    # Ablation baseline: the solver as it stood before linear arithmetic
    # and FD conditioning. Restores the toggle even on failure so a bench
    # crash cannot leak a degraded solver into the rest of the process.
    previous = set_arithmetic_enabled(False)
    try:
        clear_proof_caches()
        baseline = DeploymentVerifier(
            build_solver_depth_input(with_fds=False)
        ).verify()
    finally:
        set_arithmetic_enabled(previous)
    baseline_counts = baseline.counts()
    baseline_total = len(baseline.results)
    baseline_rate = (
        baseline_counts["proved"] / baseline_total if baseline_total else 0.0
    )
    return {
        "checks": total,
        "proved": counts["proved"],
        "refuted": counts["refuted"],
        "unknown": counts["unknown"],
        "proved_rate": rate,
        "baseline_checks": baseline_total,
        "baseline_proved": baseline_counts["proved"],
        "baseline_refuted": baseline_counts["refuted"],
        "baseline_unknown": baseline_counts["unknown"],
        "baseline_proved_rate": baseline_rate,
        "gain": rate - baseline_rate,
    }


def run_verify_bench(*, smoke: bool = False) -> dict[str, Any]:
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    solver = run_solver_bench(n_predicates=100 if smoke else 400)
    catalog = run_catalog_bench(sizes)
    incremental = run_incremental_bench(smoke=smoke)
    proved_rate = run_proved_rate_bench()
    seed_rate = min(
        (r["proved"] / r["checks"]) if r["checks"] else 0.0 for r in catalog
    )
    gates = [
        {
            "name": "incremental_warm_vs_cold",
            "value": incremental["speedup"],
            "threshold": incremental["gate"],
            "passed": incremental["speedup"] >= incremental["gate"],
        },
        {
            "name": "incremental_verdicts_identical",
            "value": 1.0 if incremental["verdicts_identical"] else 0.0,
            "threshold": 1.0,
            "passed": incremental["verdicts_identical"],
        },
        {
            "name": "verify_proved_rate",
            "value": proved_rate["proved_rate"],
            "threshold": PROVED_RATE_GATE,
            "passed": proved_rate["proved_rate"] >= PROVED_RATE_GATE,
        },
        {
            "name": "verify_proved_rate_gain",
            "value": proved_rate["gain"],
            "threshold": PROVED_RATE_GAIN_GATE,
            "passed": proved_rate["gain"] >= PROVED_RATE_GAIN_GATE,
        },
        {
            "name": "seed_proved_rate",
            "value": seed_rate,
            "threshold": SEED_PROVED_RATE_GATE,
            "passed": seed_rate >= SEED_PROVED_RATE_GATE,
        },
    ]
    return {
        "smoke": smoke,
        "solver": solver,
        "catalog": catalog,
        "incremental": incremental,
        "proved_rate": proved_rate,
        "gates": gates,
        "passed": (
            all(r["refuted"] == 0 and r["unknown"] == 0 for r in catalog)
            and all(g["passed"] for g in gates)
        ),
    }


def _print_report(results: dict[str, Any]) -> None:
    s = results["solver"]
    print("Solver throughput (SAT + implication over workload-shaped mix)")
    print(
        f"  {s['decisions']} decisions over {s['predicates']} predicate "
        f"pairs in {s['elapsed_s']:.3f}s = {s['decisions_per_s']:.0f}/s "
        f"({s['status_counts']})"
    )
    print("\nWhole-catalog verification (seed healthcare deployment)")
    print(f"{'reports':>8} {'checks':>7} {'verdicts':>22} {'wall s':>8} {'checks/s':>9}")
    for r in results["catalog"]:
        verdicts = (
            f"{r['proved']}P/{r['refuted']}R/{r['unknown']}U"
        )
        print(
            f"{r['n_reports']:>8} {r['checks']:>7} {verdicts:>22} "
            f"{r['elapsed_s']:>8.3f} {r['checks_per_s']:>9.1f}"
        )
    pr = results["proved_rate"]
    print("\nPROVED rate (solver-depth corpus vs ablated baseline)")
    print(
        f"  featured: {pr['proved']}/{pr['checks']} proved "
        f"({pr['proved_rate']:.0%}); baseline (no arithmetic, no FDs): "
        f"{pr['baseline_proved']}/{pr['baseline_checks']} proved "
        f"({pr['baseline_proved_rate']:.0%}); gain {pr['gain']:+.0%}"
    )
    inc = results["incremental"]
    print("\nIncremental re-verification (verification-bound fixture)")
    print(
        f"  {inc['n_reports']} reports, {inc['checks']} checks; one report "
        f"mutated: cold full {inc['cold_full_s']:.3f}s, warm incremental "
        f"{inc['warm_incremental_s']:.3f}s = {inc['speedup']:.1f}x "
        f"({inc['units_reused']} units reused, {inc['units_reproved']} "
        "re-proved, verdicts "
        + ("identical" if inc["verdicts_identical"] else "DIVERGED")
        + ")"
    )
    for g in results["gates"]:
        status = "PASS" if g["passed"] else "FAIL"
        print(
            f"  gate {g['name']}: {g['value']:.2f} "
            f"(>= {g['threshold']:.2f} required) {status}"
        )
    verdict = "PASS" if results["passed"] else "FAIL"
    print(f"\n{verdict}: clean verification at every size and all gates hold.")


def main(*, smoke: bool = False, json_path: str | None = None) -> int:
    results = run_verify_bench(smoke=smoke)
    _print_report(results)
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
        print(f"\nwrote {json_path}")
    return 0 if results["passed"] else 1


# ---------------------------------------------------------------------------
# pytest smoke: keep the harness itself from rotting.
# ---------------------------------------------------------------------------


def test_verify_bench_smoke():
    results = run_verify_bench(smoke=True)
    assert results["solver"]["decisions_per_s"] > 0
    assert results["catalog"], "no catalog sizes measured"
    assert results["incremental"]["verdicts_identical"]
    assert results["passed"], "seed deployment did not verify clean"


if __name__ == "__main__":
    raise SystemExit(main())
