"""Verifier benchmark: solver throughput, whole-catalog and incremental verify.

The cross-level verifier runs on every catalog mutation in CI, so its cost
must stay interactive. Three measurements:

* **solver throughput** — implication/satisfiability decisions per second
  over a generated mix of conjunctive range/equality/IN/NULL predicates
  shaped like the healthcare workload's filters;
* **whole-catalog verify** — wall time of a full :class:`DeploymentVerifier`
  pass (replay included) over scenarios with 10/100/1000 reports (smoke:
  5/20), the §5 scaling axis that dominates real deployments;
* **incremental re-verification** — after mutating one report in a
  verification-bound catalog (rich predicates, so solver work rather than
  keying cost dominates), a warm :class:`IncrementalVerifier` pass must
  produce verdicts identical to a cold full pass and beat it by the gated
  factor (full runs: ≥20×; smoke: ≥2×, the fixture is tiny).

``main`` (via ``python benchmarks/run_all.py verify`` or ``repro bench
verify``) prints the table and optionally writes ``BENCH_verify.json``,
including a ``gates`` list consumed by ``run_all.py``'s consolidated table.
"""

from __future__ import annotations

import json
import time
from typing import Any

from repro.core.containment import clear_proof_caches
from repro.core.metareport import MetaReport, MetaReportSet
from repro.core.pla import PLA, IntensionalCondition, PlaLevel, PlaStatus
from repro.relational import Catalog, Query, Table, make_schema
from repro.relational.expressions import (
    And,
    Col,
    Comparison,
    Expr,
    InList,
    IsNull,
    Lit,
    Not,
    Or,
)
from repro.relational.types import ColumnType
from repro.reports.definition import ReportDefinition
from repro.simulation import ScenarioConfig, build_scenario
from repro.verify import (
    DeploymentVerifier,
    IncrementalVerifier,
    Sat,
    SourcePolicy,
    VerificationInput,
    implication_counterexample,
    satisfiable,
)

JSON_PATH = "BENCH_verify.json"

FULL_SIZES = (10, 100, 1000)
SMOKE_SIZES = (5, 20)

#: Warm incremental re-verification vs a cold full pass, after one report
#: mutation. The smoke fixture is small enough that fixed costs cap the
#: ratio, so it only sanity-checks the machinery.
INCREMENTAL_GATE_FULL = 20.0
INCREMENTAL_GATE_SMOKE = 2.0


def _predicate_mix(n: int) -> list[tuple[Expr, Expr]]:
    """``n`` (premise, conclusion) pairs cycling through workload shapes."""
    diseases = ("asthma", "diabetes", "flu", "hypertension", "HIV")
    pairs: list[tuple[Expr, Expr]] = []
    for i in range(n):
        lo, hi = (i % 7) * 10, (i % 7) * 10 + 50 + (i % 3)
        premise: Expr = And(
            Comparison(">", Col("cost"), Lit(lo)),
            Comparison("<", Col("cost"), Lit(hi)),
        )
        if i % 2:
            premise = And(
                premise, InList(Col("disease"), diseases[: 2 + i % 3])
            )
        if i % 3 == 0:
            premise = And(premise, Not(IsNull(Col("drug"))))
        if i % 5 == 0:
            premise = Or(
                premise, Comparison("=", Col("disease"), Lit(diseases[i % 5]))
            )
        conclusion: Expr = Comparison(">", Col("cost"), Lit(lo - 10))
        if i % 4 == 0:
            conclusion = And(
                conclusion, Not(Comparison("=", Col("disease"), Lit("HIV")))
            )
        pairs.append((premise, conclusion))
    return pairs


def run_solver_bench(*, n_predicates: int = 400) -> dict[str, Any]:
    pairs = _predicate_mix(n_predicates)
    counts = {s.name: 0 for s in Sat}
    start = time.perf_counter()
    for premise, conclusion in pairs:
        counts[satisfiable(premise).status.name] += 1
        counts[implication_counterexample(premise, conclusion).status.name] += 1
    elapsed = time.perf_counter() - start
    decisions = 2 * len(pairs)
    return {
        "predicates": len(pairs),
        "decisions": decisions,
        "elapsed_s": elapsed,
        "decisions_per_s": decisions / elapsed if elapsed else 0.0,
        "status_counts": counts,
    }


def run_catalog_bench(sizes: tuple[int, ...]) -> list[dict[str, Any]]:
    rows: list[dict[str, Any]] = []
    for size in sizes:
        scenario = build_scenario(ScenarioConfig(n_reports=size))
        target = VerificationInput.from_scenario(scenario)
        start = time.perf_counter()
        report = DeploymentVerifier(target).verify()
        elapsed = time.perf_counter() - start
        counts = report.counts()
        rows.append(
            {
                "n_reports": size,
                "checks": len(report.results),
                "proved": counts["proved"],
                "refuted": counts["refuted"],
                "unknown": counts["unknown"],
                "elapsed_s": elapsed,
                "checks_per_s": len(report.results) / elapsed
                if elapsed
                else 0.0,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Incremental re-verification (verification-bound fixture)
# ---------------------------------------------------------------------------

_DISEASES = ("asthma", "diabetes", "flu", "hypertension", "HIV")
_COLS = ("patient", "drug", "disease", "doctor", "zip", "gender", "cost")


def _rich_predicate(i: int) -> Expr:
    """A solver-heavy predicate: range ∧ IN ∧ NOT NULL ∨ equality branches.

    The seed scenario's filters decide in ~20µs each, which makes keying
    cost — not proving cost — the bottleneck and says nothing about real
    deployments. These shapes cost ~0.2ms per solver decision, so the
    incremental speedup measures avoided *proof* work.
    """
    lo, hi = (i % 7) * 10, (i % 7) * 10 + 50 + (i % 3)
    p: Expr = And(
        Comparison(">", Col("cost"), Lit(lo)),
        Comparison("<", Col("cost"), Lit(hi)),
    )
    if i % 2:
        p = And(p, InList(Col("disease"), _DISEASES[: 2 + i % 3]))
    if i % 3 == 0:
        p = And(p, Not(IsNull(Col("drug"))))
    if i % 5 == 0:
        p = Or(p, Comparison("=", Col("disease"), Lit(_DISEASES[i % 5])))
    return p


def build_verification_bound_input(
    n_reports: int, *, n_metareports: int = 6
) -> VerificationInput:
    """A deployment whose verification cost is dominated by solver work."""
    cat = Catalog()
    schema = make_schema(
        *(
            (c, ColumnType.INT if c == "cost" else ColumnType.STRING, True)
            for c in _COLS
        )
    )
    cat.add_table(Table.from_rows("universe", schema, [], provider="warehouse"))
    metareports = MetaReportSet()
    for m in range(n_metareports):
        region = And(
            Comparison(">", Col("cost"), Lit(-10 * m - 10)),
            Not(Comparison("=", Col("disease"), Lit("HIV"))),
        )
        query = Query.from_("universe").filter(region).project(*_COLS)
        mr = MetaReport(f"mr_{m}", query)
        pla = PLA(
            f"pla_mr_{m}",
            "owner",
            PlaLevel.METAREPORT,
            f"mr_{m}",
            (
                IntensionalCondition(
                    "disease", _rich_predicate(m + 3), "suppress_row"
                ),
            ),
            status=PlaStatus.APPROVED,
        )
        mr.attach_pla(pla)
        metareports.add(mr)
    metareports.register_views(cat)
    reports = []
    for i in range(n_reports):
        query = (
            Query.from_(f"mr_{i % n_metareports}")
            .filter(_rich_predicate(i))
            .project("drug", "disease", "cost")
        )
        reports.append(
            ReportDefinition(
                f"r_{i}", f"R {i}", query, frozenset({"analyst"}), "care"
            )
        )
    policies = tuple(
        SourcePolicy(
            f"policy_{k}",
            "universe",
            Or(_rich_predicate(k + 11), IsNull(Col("cost"))),
        )
        for k in range(4)
    )
    return VerificationInput(
        catalog=cat,
        metareports=metareports,
        reports=tuple(reports),
        universe="universe",
        universe_columns=_COLS,
        source_policies=policies,
    )


def run_incremental_bench(*, smoke: bool = False) -> dict[str, Any]:
    """Mutate one report, then race warm incremental vs cold full verify."""
    n_reports = 20 if smoke else 200
    target = build_verification_bound_input(n_reports)

    # Populate the verdict cache (untimed), then mutate one report — the
    # warm pass must re-prove exactly that unit and reuse everything else.
    verifier = IncrementalVerifier(target)
    verifier.verify()
    mutated = target.reports[n_reports // 2]
    new_query = (
        Query.from_(mutated.query.source)
        .filter(_rich_predicate(n_reports + 1))
        .project("drug", "disease", "cost")
    )
    reports = tuple(
        r.with_query(new_query) if r is mutated else r for r in target.reports
    )
    target = VerificationInput(
        catalog=target.catalog,
        metareports=target.metareports,
        reports=reports,
        universe=target.universe,
        universe_columns=target.universe_columns,
        source_policies=target.source_policies,
    )
    cache = verifier.cache
    cache.hits = cache.misses = 0  # report the warm pass, not the populate
    verifier = IncrementalVerifier(target, cache=cache)

    # Warm incremental first: timing cold afterwards means the cold run
    # cannot donate proof-cache warmth to the measurement it is racing.
    start = time.perf_counter()
    warm_report = verifier.verify()
    warm_s = time.perf_counter() - start

    clear_proof_caches()  # cold = fresh process: no memoized proofs either
    start = time.perf_counter()
    full_report = DeploymentVerifier(target).verify()
    cold_s = time.perf_counter() - start

    identical = [
        (r.code, r.location, r.verdict) for r in warm_report.results
    ] == [(r.code, r.location, r.verdict) for r in full_report.results]
    speedup = cold_s / warm_s if warm_s else float("inf")
    gate = INCREMENTAL_GATE_SMOKE if smoke else INCREMENTAL_GATE_FULL
    return {
        "n_reports": n_reports,
        "checks": len(full_report.results),
        "cold_full_s": cold_s,
        "warm_incremental_s": warm_s,
        "speedup": speedup,
        "units_reused": verifier.cache.hits,
        "units_reproved": verifier.cache.misses,
        "verdicts_identical": identical,
        "gate": gate,
        "passed": identical and speedup >= gate,
    }


def run_verify_bench(*, smoke: bool = False) -> dict[str, Any]:
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    solver = run_solver_bench(n_predicates=100 if smoke else 400)
    catalog = run_catalog_bench(sizes)
    incremental = run_incremental_bench(smoke=smoke)
    gates = [
        {
            "name": "incremental_warm_vs_cold",
            "value": incremental["speedup"],
            "threshold": incremental["gate"],
            "passed": incremental["speedup"] >= incremental["gate"],
        },
        {
            "name": "incremental_verdicts_identical",
            "value": 1.0 if incremental["verdicts_identical"] else 0.0,
            "threshold": 1.0,
            "passed": incremental["verdicts_identical"],
        },
    ]
    return {
        "smoke": smoke,
        "solver": solver,
        "catalog": catalog,
        "incremental": incremental,
        "gates": gates,
        "passed": (
            all(r["refuted"] == 0 and r["unknown"] == 0 for r in catalog)
            and all(g["passed"] for g in gates)
        ),
    }


def _print_report(results: dict[str, Any]) -> None:
    s = results["solver"]
    print("Solver throughput (SAT + implication over workload-shaped mix)")
    print(
        f"  {s['decisions']} decisions over {s['predicates']} predicate "
        f"pairs in {s['elapsed_s']:.3f}s = {s['decisions_per_s']:.0f}/s "
        f"({s['status_counts']})"
    )
    print("\nWhole-catalog verification (seed healthcare deployment)")
    print(f"{'reports':>8} {'checks':>7} {'verdicts':>22} {'wall s':>8} {'checks/s':>9}")
    for r in results["catalog"]:
        verdicts = (
            f"{r['proved']}P/{r['refuted']}R/{r['unknown']}U"
        )
        print(
            f"{r['n_reports']:>8} {r['checks']:>7} {verdicts:>22} "
            f"{r['elapsed_s']:>8.3f} {r['checks_per_s']:>9.1f}"
        )
    inc = results["incremental"]
    print("\nIncremental re-verification (verification-bound fixture)")
    print(
        f"  {inc['n_reports']} reports, {inc['checks']} checks; one report "
        f"mutated: cold full {inc['cold_full_s']:.3f}s, warm incremental "
        f"{inc['warm_incremental_s']:.3f}s = {inc['speedup']:.1f}x "
        f"({inc['units_reused']} units reused, {inc['units_reproved']} "
        "re-proved, verdicts "
        + ("identical" if inc["verdicts_identical"] else "DIVERGED")
        + ")"
    )
    for g in results["gates"]:
        status = "PASS" if g["passed"] else "FAIL"
        print(
            f"  gate {g['name']}: {g['value']:.1f} "
            f"(>= {g['threshold']:.1f} required) {status}"
        )
    verdict = "PASS" if results["passed"] else "FAIL"
    print(f"\n{verdict}: clean verification at every size and all gates hold.")


def main(*, smoke: bool = False, json_path: str | None = None) -> int:
    results = run_verify_bench(smoke=smoke)
    _print_report(results)
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
        print(f"\nwrote {json_path}")
    return 0 if results["passed"] else 1


# ---------------------------------------------------------------------------
# pytest smoke: keep the harness itself from rotting.
# ---------------------------------------------------------------------------


def test_verify_bench_smoke():
    results = run_verify_bench(smoke=True)
    assert results["solver"]["decisions_per_s"] > 0
    assert results["catalog"], "no catalog sizes measured"
    assert results["incremental"]["verdicts_identical"]
    assert results["passed"], "seed deployment did not verify clean"


if __name__ == "__main__":
    raise SystemExit(main())
