"""Engine microbenchmarks: row reference vs object-columnar vs fused vector.

Two consumers:

* ``pytest benchmarks/bench_engine_scaling.py`` — pytest-benchmark timings
  for both engine modes plus the provenance-overhead sanity check;
* :func:`main` (via ``python benchmarks/run_all.py engine [--json]`` or
  ``repro bench``) — the scaling table: per query and size, wall time on
  all three execution tiers (row reference; object-columnar with the vector
  fast path disabled; fused vector kernels with bitset provenance),
  throughput, speedups, plan-cache warm-hit speedup, and the
  containment-proof cache cold/warm ratio. ``--json`` writes the same
  numbers to ``BENCH_engine.json`` for CI trending.

The three queries stand in for the paper's Fig 2–4 hot paths: source-level
filtering (Fig 2 → ``scan_filter``), the warehouse star join (Fig 3 →
``hash_join``), and report-level aggregation (Fig 4 → ``group_aggregate``).
The full run includes a 1M-row tier where the fused kernels must clear
≥10× over the row reference on every workload — the tentpole gate, emitted
in the ``gates`` list (and enforced by ``run_all.py``'s consolidated gate
table). Smoke runs keep the same gate names with sanity thresholds only.
"""

from __future__ import annotations

import gc
import json
import random
import time
from typing import Any, Callable

import pytest

from repro.core.containment import (
    check_derivability,
    clear_proof_caches,
    proof_cache_stats,
)
from repro.relational import (
    COLUMNAR,
    ROW,
    Catalog,
    ExecutionConfig,
    PlanCache,
    Query,
    Table,
    execute,
    make_schema,
    parse_query,
)
from repro.relational.types import ColumnType
from repro.relational.vector import set_vector_enabled

SIZES = [1_000, 10_000, 100_000, 1_000_000]
SMOKE_SIZES = [200, 2_000]

#: Sizes at and past this point get one timed repeat on the slow tiers
#: (row reference, object-columnar) — a single 1M-row row-engine join is
#: tens of seconds, and ``min`` over one sample is still the sample.
SINGLE_REPEAT_AT = 500_000

#: The tentpole gate: fused vector kernels vs the row reference at the
#: largest full-run size. Smoke runs only sanity-check the fast path is
#: not slower than the reference (tiny sizes are fixed-cost bound).
FUSED_GATE_FULL = 10.0
FUSED_GATE_SMOKE = 1.0

QUERIES: dict[str, str] = {
    "scan_filter": "SELECT category, value FROM t WHERE value > 500",
    "hash_join": "SELECT category, label FROM t JOIN d ON k = k",
    "group_aggregate": (
        "SELECT category, COUNT(*) AS n, SUM(value) AS total "
        "FROM t GROUP BY category"
    ),
}

UNCACHED_COLUMNAR = ExecutionConfig(mode="columnar", use_plan_cache=False)


def build_table(n_rows: int, *, seed: int = 7) -> Table:
    rng = random.Random(seed)
    schema = make_schema(
        ("k", ColumnType.INT),
        ("category", ColumnType.STRING),
        ("value", ColumnType.INT),
    )
    return Table.from_rows(
        "t",
        schema,
        [
            (
                rng.randint(0, n_rows // 10 or 1),
                rng.choice(("a", "b", "c", "d", "e")),
                rng.randint(0, 1000),
            )
            for _ in range(n_rows)
        ],
        provider="p",
    )


def build_catalog(n_rows: int) -> Catalog:
    cat = Catalog()
    cat.add_table(build_table(n_rows))
    dim_schema = make_schema(("k", ColumnType.INT), ("label", ColumnType.STRING))
    dim = Table.from_rows(
        "d",
        dim_schema,
        [(i, f"label{i}") for i in range(n_rows // 10 or 1)],
        provider="q",
    )
    cat.add_table(dim)
    return cat


# ---------------------------------------------------------------------------
# pytest-benchmark targets (both modes, so regressions on either path show)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module", params=[1_000, 10_000])
def sized_catalog(request):
    return request.param, build_catalog(request.param)


@pytest.fixture(scope="module", params=["row", "columnar"])
def engine_config(request):
    return {"row": ROW, "columnar": UNCACHED_COLUMNAR}[request.param]


def test_scan_filter(benchmark, sized_catalog, engine_config):
    n, cat = sized_catalog
    query = parse_query(QUERIES["scan_filter"])
    out = benchmark(execute, query, cat, config=engine_config)
    assert 0 < len(out) < n


def test_hash_join(benchmark, sized_catalog, engine_config):
    n, cat = sized_catalog
    query = parse_query(QUERIES["hash_join"])
    out = benchmark(execute, query, cat, config=engine_config)
    assert len(out) > 0


def test_group_aggregate(benchmark, sized_catalog, engine_config):
    n, cat = sized_catalog
    query = parse_query(QUERIES["group_aggregate"])
    out = benchmark(execute, query, cat, config=engine_config)
    assert len(out) == 5


def test_provenance_overhead_is_bounded():
    """Aggregate with lineage vs a plain dict computation: the engine pays
    for auditability, but within an order of magnitude."""
    table = build_table(10_000)
    cat = Catalog()
    cat.add_table(table)
    query = parse_query(
        "SELECT category, SUM(value) AS total FROM t GROUP BY category"
    )

    start = time.perf_counter()
    execute(query, cat, config=UNCACHED_COLUMNAR)
    engine_s = time.perf_counter() - start

    start = time.perf_counter()
    sums: dict[str, int] = {}
    cat_idx = table.schema.index_of("category")
    val_idx = table.schema.index_of("value")
    for row in table.rows:
        sums[row[cat_idx]] = sums.get(row[cat_idx], 0) + row[val_idx]
    plain_s = time.perf_counter() - start

    assert engine_s < plain_s * 500  # generous: provenance is not free
    assert engine_s < 1.0  # absolute sanity for the bench environment


# ---------------------------------------------------------------------------
# The scaling table (run_all / CLI entry point)
# ---------------------------------------------------------------------------


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    # Collect once, then time with GC off (as timeit does): the columnar
    # path allocates heavily, and generational collections that scan
    # whatever earlier benchmarks left alive would otherwise dominate.
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best
    finally:
        if was_enabled:
            gc.enable()


def _containment_workload(n_reports: int) -> tuple[Catalog, list[Query], Query]:
    """A metareport plus ``n_reports`` candidate report queries over it."""
    cat = Catalog()
    schema = make_schema(
        ("patient", ColumnType.STRING),
        ("region", ColumnType.STRING),
        ("disease", ColumnType.STRING),
        ("cost", ColumnType.INT),
    )
    cat.add_table(Table.from_rows("visits", schema, [], provider="hosp"))
    meta = Query.from_("visits").project("region", "disease", "cost")
    reports = []
    for i in range(n_reports):
        reports.append(
            parse_query(
                f"SELECT region, cost FROM visits WHERE cost > {i * 10}"
            )
        )
    return cat, reports, meta


def run_engine_bench(*, smoke: bool = False, repeats: int = 3) -> dict[str, Any]:
    """Measure all three tiers across sizes; returns the full results dict."""
    sizes = SMOKE_SIZES if smoke else SIZES
    rows: list[dict[str, Any]] = []
    for size in sizes:
        cat = build_catalog(size)
        slow_repeats = 1 if size >= SINGLE_REPEAT_AT else repeats
        for qname, sql in QUERIES.items():
            query = parse_query(sql)
            # Fused vector path first: it is the cheapest tier and its
            # output also supplies rows_out, so the slow tiers run exactly
            # once each at the 1M size (a 1M-row row-engine join is ~45s).
            fused_out = execute(query, cat, config=UNCACHED_COLUMNAR)
            n_out = len(fused_out)
            # The fused tier is cheap enough to sample generously, and at
            # large sizes allocator state swings individual runs by ±20% —
            # min-of-7 keeps the gated speedup from flickering on noise.
            fused_repeats = repeats if size < SINGLE_REPEAT_AT else max(repeats, 7)
            fused_s = _best_of(
                lambda: execute(query, cat, config=UNCACHED_COLUMNAR),
                fused_repeats,
            )
            # Object-columnar tier: same planner, vector fast path off.
            prev = set_vector_enabled(False)
            try:
                col_s = _best_of(
                    lambda: execute(query, cat, config=UNCACHED_COLUMNAR),
                    slow_repeats,
                )
            finally:
                set_vector_enabled(prev)
            row_s = _best_of(
                lambda: execute(query, cat, config=ROW), slow_repeats
            )
            # Warm plan-cache hits against a private cache.
            cache = PlanCache()
            cached_cfg = ExecutionConfig(mode="columnar", plan_cache=cache)
            execute(query, cat, config=cached_cfg)  # populate (1 miss)
            warm_s = _best_of(lambda: execute(query, cat, config=cached_cfg), repeats)
            rows.append(
                {
                    "query": qname,
                    "size": size,
                    "rows_out": n_out,
                    "row_s": row_s,
                    "columnar_s": col_s,
                    "fused_s": fused_s,
                    "speedup": row_s / col_s if col_s else float("inf"),
                    "fused_speedup": row_s / fused_s if fused_s else float("inf"),
                    "rows_per_s_row": size / row_s if row_s else float("inf"),
                    "rows_per_s_columnar": size / col_s if col_s else float("inf"),
                    "rows_per_s_fused": size / fused_s if fused_s else float("inf"),
                    "warm_s": warm_s,
                    "warm_speedup": col_s / warm_s if warm_s else float("inf"),
                    "plan_cache_hit_rate": cache.stats.hit_rate,
                }
            )

    largest = sizes[-1]
    at_largest = [r for r in rows if r["size"] == largest]
    summary = {
        "largest_size": largest,
        "min_speedup_at_largest": min(r["speedup"] for r in at_largest),
        "max_speedup_at_largest": max(r["speedup"] for r in at_largest),
        "min_fused_speedup_at_largest": min(
            r["fused_speedup"] for r in at_largest
        ),
        "max_fused_speedup_at_largest": max(
            r["fused_speedup"] for r in at_largest
        ),
    }

    fused_gate = FUSED_GATE_SMOKE if smoke else FUSED_GATE_FULL
    gates = [
        {
            "name": f"fused_vs_row_{r['query']}_{r['size']}",
            "value": r["fused_speedup"],
            "threshold": fused_gate,
            "passed": r["fused_speedup"] >= fused_gate,
        }
        for r in at_largest
    ]

    # Containment proofs: cold (empty cache) vs warm (memoized) re-checks.
    n_checks = 20 if smoke else 200
    ccat, reports, meta = _containment_workload(n_checks)

    def run_checks() -> None:
        for rq in reports:
            check_derivability(rq, "mr_visits", meta, ccat)

    clear_proof_caches()
    cold_s = _best_of(run_checks, 1)
    warm_proof_s = _best_of(run_checks, repeats)
    containment = {
        "checks": n_checks,
        "cold_s": cold_s,
        "warm_s": warm_proof_s,
        "speedup": cold_s / warm_proof_s if warm_proof_s else float("inf"),
        "stats": proof_cache_stats(),
    }
    return {
        "smoke": smoke,
        "sizes": sizes,
        "engine": rows,
        "summary": summary,
        "gates": gates,
        "passed": all(g["passed"] for g in gates),
        "containment": containment,
    }


def _print_report(results: dict[str, Any]) -> None:
    print("Row reference vs object-columnar vs fused vector kernels")
    print(
        f"{'query':<16} {'size':>8} {'out':>8} {'row s':>9} {'col s':>9} "
        f"{'fused s':>9} {'col x':>7} {'fused x':>8} {'warm x':>7}"
    )
    for r in results["engine"]:
        print(
            f"{r['query']:<16} {r['size']:>8} {r['rows_out']:>8} "
            f"{r['row_s']:>9.4f} {r['columnar_s']:>9.4f} {r['fused_s']:>9.4f} "
            f"{r['speedup']:>6.1f}x {r['fused_speedup']:>7.1f}x "
            f"{r['warm_speedup']:>6.1f}x"
        )
    s = results["summary"]
    print(
        f"\nAt n={s['largest_size']}: object-columnar "
        f"{s['min_speedup_at_largest']:.1f}x–{s['max_speedup_at_largest']:.1f}x, "
        f"fused {s['min_fused_speedup_at_largest']:.1f}x–"
        f"{s['max_fused_speedup_at_largest']:.1f}x over the row reference."
    )
    for g in results["gates"]:
        status = "PASS" if g["passed"] else "FAIL"
        print(
            f"  gate {g['name']}: {g['value']:.1f}x "
            f"(>= {g['threshold']:.1f}x required) {status}"
        )
    c = results["containment"]
    print(
        f"Containment proofs ({c['checks']} derivability checks): "
        f"cold {c['cold_s']:.4f}s, warm {c['warm_s']:.4f}s "
        f"({c['speedup']:.1f}x via proof memoization)."
    )


def main(*, smoke: bool = False, json_path: str | None = None) -> int:
    results = run_engine_bench(smoke=smoke)
    _print_report(results)
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
        print(f"\nwrote {json_path}")
    return 0 if results["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
