"""Engine microbenchmarks: the substrate's own cost profile.

Not a paper figure — infrastructure calibration for the other benches:
scan/filter/join/aggregate throughput (with full provenance propagation)
and the relative overhead of lineage bookkeeping versus a provenance-free
hand computation. Keeps regressions in the substrate from silently skewing
the figure-level measurements.
"""

from __future__ import annotations

import random

import pytest

from repro.relational import Catalog, Table, execute, make_schema, parse_query
from repro.relational.types import ColumnType


def build_table(n_rows: int, *, seed: int = 7) -> Table:
    rng = random.Random(seed)
    schema = make_schema(
        ("k", ColumnType.INT),
        ("category", ColumnType.STRING),
        ("value", ColumnType.INT),
    )
    return Table.from_rows(
        "t",
        schema,
        [
            (
                rng.randint(0, n_rows // 10 or 1),
                rng.choice(("a", "b", "c", "d", "e")),
                rng.randint(0, 1000),
            )
            for _ in range(n_rows)
        ],
        provider="p",
    )


def build_catalog(n_rows: int) -> Catalog:
    cat = Catalog()
    cat.add_table(build_table(n_rows))
    dim_schema = make_schema(("k", ColumnType.INT), ("label", ColumnType.STRING))
    dim = Table.from_rows(
        "d",
        dim_schema,
        [(i, f"label{i}") for i in range(n_rows // 10 or 1)],
        provider="q",
    )
    cat.add_table(dim)
    return cat


@pytest.fixture(scope="module", params=[1_000, 10_000])
def sized_catalog(request):
    return request.param, build_catalog(request.param)


def test_scan_filter(benchmark, sized_catalog):
    n, cat = sized_catalog
    query = parse_query("SELECT category, value FROM t WHERE value > 500")
    out = benchmark(execute, query, cat)
    assert 0 < len(out) < n


def test_hash_join(benchmark, sized_catalog):
    n, cat = sized_catalog
    query = parse_query("SELECT category, label FROM t JOIN d ON k = k")
    out = benchmark(execute, query, cat)
    assert len(out) > 0


def test_group_aggregate(benchmark, sized_catalog):
    n, cat = sized_catalog
    query = parse_query(
        "SELECT category, COUNT(*) AS n, SUM(value) AS total "
        "FROM t GROUP BY category"
    )
    out = benchmark(execute, query, cat)
    assert len(out) == 5


def test_provenance_overhead_is_bounded():
    """Aggregate with lineage vs a plain dict computation: the engine pays
    for auditability, but within an order of magnitude."""
    import time

    table = build_table(10_000)
    cat = Catalog()
    cat.add_table(table)
    query = parse_query(
        "SELECT category, SUM(value) AS total FROM t GROUP BY category"
    )

    start = time.perf_counter()
    execute(query, cat)
    engine_s = time.perf_counter() - start

    start = time.perf_counter()
    sums: dict[str, int] = {}
    cat_idx = table.schema.index_of("category")
    val_idx = table.schema.index_of("value")
    for row in table.rows:
        sums[row[cat_idx]] = sums.get(row[cat_idx], 0) + row[val_idx]
    plain_s = time.perf_counter() - start

    assert engine_s < plain_s * 500  # generous: provenance is not free
    assert engine_s < 1.0  # absolute sanity for the bench environment
