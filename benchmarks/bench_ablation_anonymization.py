"""ABL-ANON — anonymization trade-offs backing §3/§4 (Sweeney [12],
Machanavajjhala [9], Verykios [13]).

Three sweeps on healthcare microdata:

* k-anonymity (Mondrian): k vs information loss / discernibility — privacy
  up, utility down, monotonically;
* k vs aggregate error of a report computed from the anonymized release —
  the cost anonymization imposes on BI reports;
* perturbation: noise scale vs aggregate accuracy — the [13] claim that
  distribution-preserving noise keeps aggregate reports usable.

Run standalone:  python benchmarks/bench_ablation_anonymization.py
"""

from __future__ import annotations

from repro.anonymize import (
    QuasiIdentifier,
    aggregate_error,
    discernibility,
    generalization_loss,
    is_k_anonymous,
    mondrian_anonymize,
    perturb_numeric,
)
from repro.bench import print_table
from repro.workloads import HealthcareConfig, generate


def microdata(n: int = 2_000):
    """Prescriptions ⋈ residents ⋈ drugcost, de-qualified (the ETL way)."""
    from repro.etl import JoinOp
    from repro.relational import Catalog

    data = generate(
        HealthcareConfig(
            n_patients=400, n_prescriptions=n, n_exams=0, seed=31
        )
    )
    cat = Catalog()
    cat.add_table(data.prescriptions)
    cat.add_table(data.residents)
    cat.add_table(data.drugcost)
    step1 = JoinOp(
        "j1", "prescriptions", "residents", [("patient", "patient")], "step1"
    ).run(cat)
    cat.add_table(step1)
    return JoinOp("j2", "step1", "drugcost", [("drug", "drug")], "micro").run(cat)


QIS = [QuasiIdentifier("zip"), QuasiIdentifier("birth_year")]
QI_COLS = ["zip", "birth_year"]


def k_sweep(table, ks=(2, 5, 10, 25, 50)) -> list[dict]:
    rows = []
    for k in ks:
        result = mondrian_anonymize(table, QIS, k)
        assert is_k_anonymous(result.table, QI_COLS, k)
        rows.append(
            {
                "k": k,
                "classes": result.partitions,
                "info_loss": generalization_loss(table, result.table, QI_COLS),
                "discernibility": discernibility(result.table, QI_COLS),
                "agg_error(sum cost by disease)": aggregate_error(
                    table, result.table,
                    group_column="disease", value_column="cost",
                ),
            }
        )
    return rows


def noise_sweep(table, scales=(0.0, 0.05, 0.1, 0.25, 0.5, 1.0)) -> list[dict]:
    rows = []
    for scale in scales:
        perturbed, _ = perturb_numeric(
            table, ["cost"], noise_scale=scale, seed=17
        )
        rows.append(
            {
                "noise_scale": scale,
                "agg_error(sum cost by disease)": aggregate_error(
                    table, perturbed,
                    group_column="disease", value_column="cost",
                ),
                "agg_error(sum cost by drug)": aggregate_error(
                    table, perturbed,
                    group_column="drug", value_column="cost",
                ),
            }
        )
    return rows


def main() -> None:
    table = microdata()
    print_table(k_sweep(table), title="ABL-ANON: k-anonymity privacy/utility sweep")
    print_table(noise_sweep(table), title="ABL-ANON: perturbation noise vs aggregate error")


# -- pytest-benchmark targets -------------------------------------------------


def test_k_sweep_shapes(benchmark):
    table = microdata()
    rows = benchmark.pedantic(lambda: k_sweep(table), rounds=1, iterations=1)
    losses = [r["info_loss"] for r in rows]
    assert losses == sorted(losses)  # info loss monotone in k
    classes = [r["classes"] for r in rows]
    assert classes == sorted(classes, reverse=True)
    discern = [r["discernibility"] for r in rows]
    assert discern == sorted(discern)  # bigger classes = less discernible


def test_mondrian_k_never_exceeds_error_of_suppression(benchmark):
    """Mondrian keeps every row, so the aggregate error stays bounded:
    generalizing the QIs cannot change a SUM grouped by a non-QI column."""
    table = microdata(1_000)
    result = benchmark(mondrian_anonymize, table, QIS, 10)
    error = aggregate_error(
        table, result.table, group_column="disease", value_column="cost"
    )
    assert error == 0.0


def test_noise_sweep_shape(benchmark):
    table = microdata(1_000)
    rows = benchmark.pedantic(lambda: noise_sweep(table), rounds=1, iterations=1)
    assert rows[0]["agg_error(sum cost by disease)"] == 0.0
    # Errors grow with noise (weak monotonicity; noise is random).
    assert rows[-1]["agg_error(sum cost by drug)"] >= rows[1]["agg_error(sum cost by drug)"]
    # Even at full noise, mean-preservation keeps aggregates usable (<20%).
    assert rows[-1]["agg_error(sum cost by disease)"] < 0.2
    main()


if __name__ == "__main__":
    main()
