"""ABL-MR — meta-report granularity sweep (§5's open design challenge).

"The design challenge here is how many meta-reports to define and how close
they should be to the complexity of the data warehouse or the simplicity of
the reports." We sweep ``max_metareports`` from 1 (the whole warehouse as a
single universe) to per-report granularity and measure initial elicitation
effort, re-elicitation under an evolution stream, and the combined cost.

Expected shape: the combined cost is minimized at an intermediate
granularity — both extremes lose (the universe is costly to explain and
over-broad; per-report meta-reports churn like reports do).

Run standalone:  python benchmarks/bench_ablation_granularity.py
"""

from __future__ import annotations

from repro.bench import print_table
from repro.core import MetaReportLevel, generate_metareports
from repro.core.elicitation import ElicitationSession
from repro.simulation import OwnerAgent, ScenarioConfig, build_scenario
from repro.workloads import generate_evolution_stream


def sweep(scenario, granularities=(1, 2, 4, 8, 16, 30), n_events: int = 60):
    events = generate_evolution_stream(
        scenario.workload_spec(),
        scenario.workload,
        n_events=n_events,
        seed=19,
        new_feed_rate=0.1,
    )
    rows = []
    for g in granularities:
        metareports = generate_metareports(
            scenario.workload,
            scenario.universe_name,
            scenario.wide_columns,
            max_metareports=g,
            name_prefix=f"g{g}_mr",
        )
        # Approve each with a dummy PLA so covering checks run.
        from repro.core import PLA, AggregationThreshold, PlaLevel, PlaRegistry

        registry = PlaRegistry()
        for metareport in metareports:
            pla = PLA(
                f"pla_{metareport.name}", "hospital", PlaLevel.METAREPORT,
                metareport.name, (AggregationThreshold(5),),
            )
            registry.add(pla)
            metareport.attach_pla(registry.approve(pla.name))
        metareports.register_views(scenario.bi_catalog)

        level = MetaReportLevel(metareports, scenario.bi_catalog)
        level.register_workload(scenario.workload)
        owner = OwnerAgent("dpo", expertise=0.4, seed=7)
        initial = ElicitationSession(owner, level).run()
        reelicitations = 0
        reelicitation_cost = 0.0
        for event in events:
            if not level.covers_event(event):
                reelicitations += 1
                record = ElicitationSession(
                    owner, level, trigger=f"re:{event.describe()}"
                ).run(level.reelicitation_artifacts(event))
                reelicitation_cost += record.cost
            level.note_event(event)
        rows.append(
            {
                "max_metareports": g,
                "actual": len(metareports),
                "columns_total": metareports.total_columns(),
                "initial_effort": initial.cost,
                "reelicitations": reelicitations,
                "combined_cost": initial.cost + reelicitation_cost,
            }
        )
    return rows


def main(scenario=None) -> None:
    if scenario is None:
        scenario = build_scenario(ScenarioConfig())
    rows = sweep(scenario)
    print_table(rows, title="ABL-MR: meta-report granularity vs lifecycle cost")
    best = min(rows, key=lambda r: r["combined_cost"])
    print(f"\nbest granularity: max_metareports={best['max_metareports']}")


# -- pytest-benchmark targets -------------------------------------------------


def test_granularity_sweep(benchmark, scenario):
    rows = benchmark.pedantic(lambda: sweep(scenario), rounds=1, iterations=1)
    costs = {r["max_metareports"]: r["combined_cost"] for r in rows}
    granularities = sorted(costs)
    best = min(costs, key=costs.__getitem__)
    # The sweet spot is interior: both extremes lose to the best point.
    assert costs[best] < costs[granularities[0]] or best == granularities[0]
    assert costs[best] <= costs[granularities[-1]]
    # Per-report granularity must not beat every coarser configuration
    # (that would contradict the paper's stability argument).
    assert costs[granularities[-1]] >= costs[best]
    main(scenario)


if __name__ == "__main__":
    main()
