"""ABL-NEG — convergence of owner–provider negotiation (§6 future work).

"...defining methodologies for interacting with the source owners in order
to quickly converge to a set of PLAs." We simulate a propose/counter
protocol for aggregation thresholds against owners with private preferences
and artifact-dependent comprehension, across the four artifact kinds.

Expected shape: more abstract artifacts (source schemas) need more rounds
*and* produce more over-asked agreements (the §3 over-engineering
mechanism: a confused owner demands more protection than intended);
concrete artifacts (meta-reports, reports) converge fastest and most
precisely.

Run standalone:  python benchmarks/bench_ablation_negotiation.py
"""

from __future__ import annotations

import random

from repro.bench import print_table
from repro.simulation import (
    OwnerPreferences,
    convergence_experiment,
    negotiate_audience,
    negotiate_threshold,
)


def main() -> None:
    rows = convergence_experiment(trials=400)
    print_table(rows, title="ABL-NEG: negotiation convergence per artifact kind")
    print(
        "\nReading: abstract artifacts take more rounds and yield more "
        "over-asked (over-engineered) agreements."
    )


# -- pytest-benchmark targets -------------------------------------------------


def test_negotiation_convergence_shape(benchmark):
    rows = benchmark.pedantic(
        lambda: convergence_experiment(trials=400), rounds=1, iterations=1
    )
    by_kind = {r["artifact_kind"]: r for r in rows}
    # All negotiations eventually agree.
    assert all(r["agreement_rate"] == 1.0 for r in rows)
    # Rounds: source is the slowest, report/meta-report the fastest.
    assert by_kind["source_table"]["mean_rounds"] > by_kind["metareport"]["mean_rounds"]
    assert by_kind["source_table"]["mean_rounds"] > by_kind["report"]["mean_rounds"]
    # Over-asking (the over-engineering mechanism) strictly decreases with
    # artifact concreteness.
    over = [
        by_kind[k]["over_asked_fraction"]
        for k in ("source_table", "warehouse_table", "metareport", "report")
    ]
    assert over == sorted(over, reverse=True)
    main()


def test_audience_negotiation_respects_forbidden_roles():
    rng = random.Random(5)
    owner = OwnerPreferences(
        forbidden_roles=frozenset({"municipality_official"}), comprehension=1.0
    )
    outcome = negotiate_audience(
        owner,
        attribute="patient",
        opening_roles=frozenset({"analyst", "municipality_official"}),
        artifact_kind="report",
        rng=rng,
    )
    assert outcome.accepted
    assert "municipality_official" not in outcome.final.allowed_roles


def test_threshold_negotiation_never_settles_below_owner_minimum():
    rng = random.Random(9)
    for comprehension in (0.3, 0.7, 1.0):
        owner = OwnerPreferences(min_threshold=7, comprehension=comprehension)
        outcome = negotiate_threshold(
            owner, opening=2, artifact_kind="metareport", rng=rng
        )
        if outcome.accepted:
            assert outcome.final.min_group_size >= 7


if __name__ == "__main__":
    main()
