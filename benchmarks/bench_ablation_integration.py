"""ABL-INT — multi-owner PLA integration (§2's second challenge).

"PLA integration ... the integration of multiple privacy requirements from
different sources and checking for their compliance." We generate PLAs from
1–8 owners with independently drawn preferences over the same meta-report,
merge them with :func:`repro.core.integrate_plas`, and measure how
disagreement and protection grow with the number of contributing owners.

Expected shape: conflicts grow roughly linearly with owners; the merged
threshold is the max (so "protection inflation" over the average owner's
preference grows); audience intersections shrink monotonically; every
prohibition survives the merge.

Run standalone:  python benchmarks/bench_ablation_integration.py
"""

from __future__ import annotations

import random

from repro.bench import print_table
from repro.core import (
    PLA,
    AggregationThreshold,
    AnonymizationRequirement,
    AttributeAccess,
    JoinPermission,
    PlaLevel,
    integrate_plas,
)

ROLES = ("analyst", "auditor", "health_director", "municipality_official")


def random_pla(owner: str, rng: random.Random) -> PLA:
    annotations = [
        AggregationThreshold(rng.choice((2, 3, 5, 8, 10))),
        AttributeAccess(
            "patient",
            frozenset(rng.sample(ROLES, rng.randint(1, 3))),
        ),
        AnonymizationRequirement(
            "patient", rng.choice(("pseudonymize", "suppress", "generalize")),
            generalization_level=rng.randint(1, 3),
        ),
    ]
    if rng.random() < 0.5:
        annotations.append(
            JoinPermission(
                "municipality/residents", "laboratory/exams",
                allowed=rng.random() < 0.5,
            )
        )
    return PLA(
        name=f"pla_{owner}",
        owner=owner,
        level=PlaLevel.METAREPORT,
        target="mr",
        annotations=tuple(annotations),
    )


def sweep(owner_counts=(1, 2, 3, 4, 6, 8), trials: int = 60, seed: int = 41):
    rng = random.Random(seed)
    rows = []
    for n_owners in owner_counts:
        conflicts_total = 0
        inflation_total = 0.0
        audience_total = 0
        prohibitions_kept = True
        for _ in range(trials):
            plas = [random_pla(f"owner{i}", rng) for i in range(n_owners)]
            result = integrate_plas(plas)
            conflicts_total += len(result.conflicts)
            thresholds = [
                a.min_group_size
                for p in plas
                for a in p.annotations
                if isinstance(a, AggregationThreshold)
            ]
            merged_threshold = next(
                a.min_group_size
                for a in result.annotations
                if isinstance(a, AggregationThreshold)
            )
            inflation_total += merged_threshold - (sum(thresholds) / len(thresholds))
            audience_total += len(
                next(
                    a.allowed_roles
                    for a in result.annotations
                    if isinstance(a, AttributeAccess)
                )
            )
            any_prohibits = any(
                not a.allowed
                for p in plas
                for a in p.annotations
                if isinstance(a, JoinPermission)
            )
            merged_joins = [
                a for a in result.annotations if isinstance(a, JoinPermission)
            ]
            if any_prohibits and any(a.allowed for a in merged_joins):
                prohibitions_kept = False
        rows.append(
            {
                "owners": n_owners,
                "mean_conflicts": conflicts_total / trials,
                "threshold_inflation": inflation_total / trials,
                "mean_audience_size": audience_total / trials,
                "prohibitions_absolute": prohibitions_kept,
            }
        )
    return rows


def main() -> None:
    rows = sweep()
    print_table(rows, title="ABL-INT: multi-owner PLA integration")
    print(
        "\nReading: more owners → more disagreements to resolve; strictest-"
        "wins drives the merged threshold above the average owner's wish and "
        "shrinks audiences; prohibitions always survive."
    )


# -- pytest-benchmark targets -------------------------------------------------


def test_integration_sweep_shape(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    conflicts = [r["mean_conflicts"] for r in rows]
    assert conflicts[0] == 0.0  # a single owner cannot disagree with itself
    assert conflicts == sorted(conflicts)  # monotone in owner count
    audiences = [r["mean_audience_size"] for r in rows]
    assert all(a >= b for a, b in zip(audiences, audiences[1:]))
    inflation = [r["threshold_inflation"] for r in rows]
    assert inflation[-1] > inflation[0]
    assert all(r["prohibitions_absolute"] for r in rows)
    main()


if __name__ == "__main__":
    main()
