"""Ingestion benchmark: suite-size scaling of the SQL front-end.

``repro ingest`` is meant to run on every suite change in CI, over report
estates that grow without asking permission, so compile cost must scale
linearly in statement count. The benchmark generates synthetic suites of
N statements (view chains, aggregate reports, and UNION reports, cycling
through all three dialects file by file), ingests them against the
standard scenario catalog, and reports wall time plus statements/second.

A second tier ingests the shipped TPC-H-style corpus
(``examples/sql_suites/tpch`` — outer joins, CASE, scalar subqueries,
TOP-in-subquery across all three dialects) and gates its parse+compile
wall time, so a front-end regression on the realistic workload fails the
consolidated ``BENCH_ingest.json`` gate summary, not just a synthetic one.

``main`` (via ``python benchmarks/run_all.py ingest``) prints the tables
and optionally writes ``BENCH_ingest.json``.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.ingest import ingest_suite
from repro.simulation import build_scenario

JSON_PATH = "BENCH_ingest.json"

FULL_SIZES = (25, 100, 400)
SMOKE_SIZES = (10, 40)

TPCH_SUITE = (
    Path(__file__).resolve().parent.parent / "examples" / "sql_suites" / "tpch"
)
#: Parse+compile budget for the TPC-H corpus (best of N; ~35 ms locally,
#: the slack absorbs cold CI runners, not algorithmic regressions).
TPCH_GATE_S = 1.5

_DISEASES = ("asthma", "diabetes", "flu", "hypertension", "bronchitis")
_HEADERS = {"ansi": "", "postgres": "-- dialect: postgres\n", "tsql": "-- dialect: tsql\n"}


#: Restart the synthetic view chain every N views so generated suites stay
#: below the engines' 32-level view-nesting limit at any suite size.
_MAX_CHAIN = 25


def _statement(i: int, dialect: str) -> str:
    """One synthetic suite statement; every third defines a chained view."""
    disease = _DISEASES[i % len(_DISEASES)]
    kind = i % 3
    if kind == 0:
        chained = i >= 3 and (i // 3) % _MAX_CHAIN != 0
        source = f"bench_v{i - 3}" if chained else "wide_prescriptions"
        return (
            f"CREATE VIEW bench_v{i} AS "
            f"SELECT drug, disease, zip, cost FROM {source} "
            f"WHERE cost > {i % 7};"
        )
    source = f"bench_v{i - kind}" if i >= 3 else "wide_prescriptions"
    if kind == 1:
        top = "TOP 20 " if dialect == "tsql" else ""
        limit = "" if dialect == "tsql" else " LIMIT 20"
        return (
            f"-- report: bench_rpt_{i}\n"
            f"SELECT {top}drug, COUNT(*) AS n, SUM(cost) AS total "
            f"FROM {source} WHERE disease = '{disease}' "
            f"GROUP BY drug ORDER BY total DESC{limit};"
        )
    return (
        f"-- report: bench_rpt_{i}\n"
        f"SELECT zip, cost FROM {source} WHERE cost > {100 + i}\n"
        f"UNION ALL\n"
        f"SELECT zip, cost FROM wide_prescriptions WHERE disease = '{disease}';"
    )


def _write_suite(root: Path, n_statements: int, *, per_file: int = 10) -> Path:
    suite = root / f"suite_{n_statements}"
    suite.mkdir()
    dialects = ("ansi", "postgres", "tsql")
    for start in range(0, n_statements, per_file):
        index = start // per_file
        dialect = dialects[index % 3]
        body = "\n\n".join(
            _statement(i, dialect)
            for i in range(start, min(start + per_file, n_statements))
        )
        (suite / f"suite_{index:03d}.sql").write_text(_HEADERS[dialect] + body + "\n")
    return suite


def run_scaling_bench(*, sizes=FULL_SIZES) -> list[dict[str, Any]]:
    scenario = build_scenario()
    rows: list[dict[str, Any]] = []
    root = Path(tempfile.mkdtemp(prefix="bench_ingest_"))
    try:
        for size in sizes:
            suite = _write_suite(root, size)
            started = time.perf_counter()
            result = ingest_suite(suite, catalog=scenario.bi_catalog)
            elapsed = time.perf_counter() - started
            errors = len(
                [d for d in result.diagnostics.diagnostics if d.severity.name == "ERROR"]
            )
            rows.append(
                {
                    "statements": size,
                    "reports": len(result.reports),
                    "views": len(result.views),
                    "errors": errors,
                    "wall_s": round(elapsed, 4),
                    "stmts_per_s": round(size / elapsed, 1),
                }
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return rows


def run_tpch_bench(*, repeats: int = 3) -> dict[str, Any]:
    """Parse+compile wall time over the shipped TPC-H-style corpus."""
    scenario = build_scenario()
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = ingest_suite(TPCH_SUITE, catalog=scenario.bi_catalog)
        best = min(best, time.perf_counter() - started)
    assert result is not None
    errors = len(
        [d for d in result.diagnostics.diagnostics if d.severity.name == "ERROR"]
    )
    return {
        "suite": "examples/sql_suites/tpch",
        "statements": len(result.statements),
        "reports": len(result.reports),
        "views": len(result.views),
        "errors": errors,
        "wall_s": round(best, 4),
    }


def main(smoke: bool = False, json_path: str | None = None) -> int:
    rows = run_scaling_bench(sizes=SMOKE_SIZES if smoke else FULL_SIZES)
    header = f"{'stmts':>6} {'reports':>8} {'views':>6} {'wall_s':>8} {'stmts/s':>9}"
    print("ingest suite-size scaling (three dialects, fail-closed resolution)")
    print(header)
    print("-" * len(header))
    failed = False
    for row in rows:
        print(
            f"{row['statements']:>6} {row['reports']:>8} {row['views']:>6} "
            f"{row['wall_s']:>8.3f} {row['stmts_per_s']:>9.1f}"
        )
        if row["errors"]:
            failed = True
            print(f"       ^ {row['errors']} unexpected error diagnostic(s)")

    tpch = run_tpch_bench()
    gates = [
        {
            "name": "tpch_parse_compile_wall_s",
            "value": tpch["wall_s"],
            "threshold": TPCH_GATE_S,
            "passed": tpch["wall_s"] <= TPCH_GATE_S,
        },
        {
            "name": "tpch_zero_error_diagnostics",
            "value": float(tpch["errors"]),
            "threshold": 0.0,
            "passed": tpch["errors"] == 0,
        },
    ]
    print(
        f"\ntpch corpus tier: {tpch['statements']} statements "
        f"({tpch['reports']} reports, {tpch['views']} views) in "
        f"{tpch['wall_s']:.3f}s (gate {TPCH_GATE_S:.1f}s), "
        f"{tpch['errors']} error(s)"
    )
    if not all(gate["passed"] for gate in gates):
        failed = True
        print("       ^ tpch gate FAILED")

    if json_path:
        payload = {
            "bench": "ingest",
            "smoke": smoke,
            "scaling": rows,
            "tpch": tpch,
            "gates": gates,
        }
        Path(json_path).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {json_path}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
