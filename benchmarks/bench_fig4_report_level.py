"""FIG4 — PLAs at the report level (paper Fig 4).

Regenerates the drug-consumption report under the full annotation
vocabulary: the aggregation-threshold sweep shows exactly which groups
survive as k grows (suppression verified against lineage ground truth), and
a verdict matrix shows each of the five annotation kinds + the intensional
condition producing the hand-derivable outcome.

Expected shape: suppressed groups are monotone non-decreasing in k, each
suppressed group has contributor count < k (never ≥ k), and every
annotation kind is statically testable — the paper's core claim for
report-level engineering.

Run standalone:  python benchmarks/bench_fig4_report_level.py
"""

from __future__ import annotations

from repro.anonymize import Pseudonymizer
from repro.bench import print_table
from repro.core import (
    PLA,
    AggregationThreshold,
    AnonymizationRequirement,
    AttributeAccess,
    ComplianceChecker,
    IntegrationPermission,
    IntensionalCondition,
    JoinPermission,
    MetaReport,
    MetaReportSet,
    PlaLevel,
    PlaRegistry,
    ReportLevelEnforcer,
)
from repro.policy import SubjectRegistry
from repro.relational import Catalog, Query, View, parse_expression, parse_query
from repro.reports import ReportDefinition
from repro.workloads import HealthcareConfig, generate

COLUMNS = ("patient", "doctor", "drug", "disease", "date")


def build_world(threshold: int):
    data = generate(HealthcareConfig(n_patients=150, n_prescriptions=1_500, n_exams=0))
    catalog = Catalog()
    catalog.add_table(data.prescriptions)
    catalog.add_view(
        View("wide", Query.from_("prescriptions").project(*COLUMNS))
    )
    metareports = MetaReportSet()
    metareport = MetaReport("mr", Query.from_("wide").project(*COLUMNS))
    registry = PlaRegistry()
    pla = PLA(
        "pla_mr", "hospital", PlaLevel.METAREPORT, "mr",
        (
            AttributeAccess("patient", frozenset({"health_director", "analyst"})),
            AggregationThreshold(threshold, scope="patient"),
            AnonymizationRequirement("patient", "pseudonymize"),
            JoinPermission("municipality/residents", "laboratory/exams", False),
            IntegrationPermission("municipality", True),
            IntensionalCondition(
                "disease", parse_expression("disease != 'HIV'"), "suppress_row"
            ),
        ),
    )
    registry.add(pla)
    metareport.attach_pla(registry.approve("pla_mr"))
    metareports.add(metareport)
    metareports.register_views(catalog)
    checker = ComplianceChecker(catalog=catalog, metareports=metareports)
    enforcer = ReportLevelEnforcer(
        catalog=catalog, pseudonymizer=Pseudonymizer(salt="fig4")
    )
    subjects = SubjectRegistry()
    subjects.purposes.declare("care/quality")
    for role in ("analyst", "municipality_official"):
        subjects.add_role(role)
    subjects.add_user("ann", "analyst")
    return catalog, checker, enforcer, subjects


def drug_consumption() -> ReportDefinition:
    return ReportDefinition(
        name="drug_consumption",
        title="Drug consumption (Fig 4)",
        query=parse_query(
            "SELECT drug, COUNT(*) AS consumption FROM wide GROUP BY drug ORDER BY drug"
        ),
        audience=frozenset({"analyst"}),
        purpose="care/quality",
    )


def threshold_sweep(ks=(1, 2, 5, 10, 25)) -> list[dict]:
    rows = []
    for k in ks:
        catalog, checker, enforcer, subjects = build_world(k)
        report = drug_consumption()
        verdict = checker.check_report(report)
        instance = enforcer.generate(
            report, subjects.context("ann", "care/quality"), verdict
        )
        min_contributors = (
            min(len(instance.table.lineage_of(i)) for i in range(len(instance.table)))
            if len(instance.table)
            else 0
        )
        rows.append(
            {
                "k": k,
                "groups_published": len(instance.table),
                "groups_suppressed": instance.suppressed_rows,
                "min_contributors_published": min_contributors,
            }
        )
    return rows


def verdict_matrix() -> list[dict]:
    """Each annotation kind exercised by a report designed to trip it."""
    catalog, checker, enforcer, subjects = build_world(5)
    cases = [
        (
            "attribute_access",
            ReportDefinition(
                "muni_patients", "t",
                parse_query("SELECT patient, COUNT(*) AS n FROM wide GROUP BY patient"),
                frozenset({"municipality_official"}), "care/quality",
            ),
            False,
        ),
        (
            "aggregation_threshold",
            ReportDefinition(
                "raw_detail", "t",
                parse_query("SELECT drug, doctor FROM wide"),
                frozenset({"analyst"}), "care/quality",
            ),
            False,
        ),
        (
            "anonymization(obligation)",
            ReportDefinition(
                "per_patient", "t",
                parse_query("SELECT patient, COUNT(*) AS n FROM wide GROUP BY patient"),
                frozenset({"analyst"}), "care/quality",
            ),
            True,
        ),
        (
            "intensional_condition(obligation)",
            drug_consumption(),
            True,
        ),
    ]
    rows = []
    for kind, report, expected in cases:
        verdict = checker.check_report(report)
        rows.append(
            {
                "annotation_kind": kind,
                "report": report.name,
                "expected": "compliant" if expected else "blocked",
                "verdict": "compliant" if verdict.compliant else "blocked",
                "matches": verdict.compliant == expected,
            }
        )
    return rows


def main() -> None:
    print_table(
        threshold_sweep(), title="FIG4: aggregation-threshold sweep (drug consumption)"
    )
    print_table(verdict_matrix(), title="FIG4: annotation verdict matrix")


# -- pytest-benchmark targets -------------------------------------------------


def test_fig4_threshold_sweep_shape(benchmark):
    rows = benchmark.pedantic(threshold_sweep, rounds=1, iterations=1)
    suppressed = [r["groups_suppressed"] for r in rows]
    assert suppressed == sorted(suppressed)  # monotone in k
    for r in rows:
        if r["groups_published"]:
            assert r["min_contributors_published"] >= r["k"]
    main()


def test_fig4_all_annotation_kinds_testable():
    rows = verdict_matrix()
    assert all(r["matches"] for r in rows)


def test_fig4_pla_pre_operation_tests(benchmark):
    """§5: meta-reports double as test cases — the harness must pass on
    a correctly implemented pipeline."""
    from repro.core import PlaTestHarness

    catalog, checker, enforcer, subjects = build_world(5)
    metareport = checker.metareports.get("mr")
    harness = PlaTestHarness(
        roles=("analyst", "municipality_official", "health_director")
    )
    results = benchmark.pedantic(
        lambda: harness.run(metareport), rounds=1, iterations=1
    )
    assert results and all(r.passed for r in results), [str(r) for r in results]


def test_fig4_compliance_check_throughput(benchmark):
    catalog, checker, enforcer, subjects = build_world(5)
    report = drug_consumption()
    verdict = benchmark(checker.check_report, report)
    assert verdict.compliant


def test_fig4_enforced_generation_throughput(benchmark):
    catalog, checker, enforcer, subjects = build_world(5)
    report = drug_consumption()
    verdict = checker.check_report(report)
    context = subjects.context("ann", "care/quality")
    instance = benchmark(enforcer.generate, report, context, verdict)
    assert "HIV" not in str(instance.table.rows)


if __name__ == "__main__":
    main()
