"""Observability overhead benchmark: the disabled path must be free.

The repro.obs design promise is that instrumentation is near-free when off
(call sites guard on ``TRACER.active()`` and allocate nothing) and cheap
when on (<5% on realistic query workloads). This benchmark holds that line:

* **disabled** — run the workload with observability off, before and after
  the enabled leg (the off1/on/off2 interleave separates real overhead from
  machine drift; the two off legs bound the noise floor);
* **enabled** — same workload with tracing + metrics fully on.

``main`` (via ``python benchmarks/run_all.py obs`` or ``repro bench obs``)
prints the table, optionally writes ``BENCH_obs.json``, and returns a
non-zero exit code when the enabled overhead exceeds the gate — so CI fails
loudly instead of letting instrumentation costs creep in.
"""

from __future__ import annotations

import gc
import json
import time
from typing import Any, Callable

from repro import obs
from repro.relational import ExecutionConfig, PlanCache, execute, parse_query

from benchmarks.bench_engine_scaling import QUERIES, build_catalog

#: Enabled-path overhead gates, percent. The smoke rows are tiny (fixed
#: per-query costs dominate), so the smoke gate is looser than the full one.
FULL_GATE_PCT = 5.0
SMOKE_GATE_PCT = 20.0

FULL_SIZE = 20_000
SMOKE_SIZE = 2_000

JSON_PATH = "BENCH_obs.json"


def _workloads(size: int) -> tuple[dict[str, Callable[[], Any]], set[str]]:
    """Named closures over one catalog, plus the subset the gate applies to.

    The gated set is the ``bench_engine_scaling`` query workloads — real
    query executions, where the ISSUE's <5% bound must hold. The
    ``warm_plan_cache_mix`` row is informational: three warm-cached queries
    complete in tens of microseconds, so the per-span fixed cost (a few µs)
    is a large *fraction* while being the same small *absolute* cost — it
    is reported as ``span_cost_us`` rather than gated as a percentage.
    """
    cat = build_catalog(size)
    uncached = ExecutionConfig(mode="columnar", use_plan_cache=False)
    parsed = {name: parse_query(sql) for name, sql in QUERIES.items()}

    workloads: dict[str, Callable[[], Any]] = {}
    for name, query in parsed.items():
        workloads[name] = (
            lambda q=query: execute(q, cat, config=uncached)
        )
    gated = set(workloads)

    cache = PlanCache()
    cached = ExecutionConfig(mode="columnar", plan_cache=cache)
    for query in parsed.values():
        execute(query, cat, config=cached)  # populate

    def warm_mix() -> None:
        for query in parsed.values():
            execute(query, cat, config=cached)

    workloads["warm_plan_cache_mix"] = warm_mix
    return workloads, gated


def _measure_interleaved(
    fn: Callable[[], Any], *, repeats: int, inner: int
) -> tuple[float, float, float]:
    """Best-of off/on/off batch times, interleaved within each repeat.

    Alternating disabled→enabled→disabled inside every repeat (rather than
    three long legs) cancels the slow machine drift — frequency scaling,
    cache state — that otherwise dwarfs the few-µs instrumentation cost
    being measured. Returns ``(off1, on, off2)`` best batch times.
    """

    def batch() -> float:
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        return time.perf_counter() - start

    best = [float("inf")] * 3
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            obs.disable()
            best[0] = min(best[0], batch())
            obs.enable()
            best[1] = min(best[1], batch())
            obs.disable()
            best[2] = min(best[2], batch())
    finally:
        if was_enabled:
            gc.enable()
    return best[0], best[1], best[2]


def run_obs_overhead_bench(
    *, smoke: bool = False, repeats: int = 5, inner: int = 3
) -> dict[str, Any]:
    size = SMOKE_SIZE if smoke else FULL_SIZE
    gate_pct = SMOKE_GATE_PCT if smoke else FULL_GATE_PCT
    workloads, gated = _workloads(size)

    previous = obs.enabled()
    obs.disable()
    obs.reset()
    timings: dict[str, tuple[float, float, float]] = {}
    try:
        for name, fn in workloads.items():
            timings[name] = _measure_interleaved(fn, repeats=repeats, inner=inner)
    finally:
        obs.TRACER.enabled = previous
        obs.reset()

    rows: list[dict[str, Any]] = []
    for name in workloads:
        t_off1, t_on, t_off2 = timings[name]
        t_off = min(t_off1, t_off2)
        enabled_pct = (t_on / t_off - 1.0) * 100.0 if t_off else 0.0
        noise_pct = abs(t_off1 - t_off2) / t_off * 100.0 if t_off else 0.0
        rows.append(
            {
                "workload": name,
                "gated": name in gated,
                "off1_s": t_off1,
                "on_s": t_on,
                "off2_s": t_off2,
                "enabled_pct": enabled_pct,
                "noise_pct": noise_pct,
            }
        )

    gated_rows = [r for r in rows if r["gated"]]
    worst = max(gated_rows, key=lambda r: r["enabled_pct"])
    # A gated workload passes if its overhead is inside the gate, or
    # statistically indistinguishable from the machine's own drift between
    # the two off legs (tiny absolute times make percentages unstable).
    failed = [
        r["workload"]
        for r in gated_rows
        if r["enabled_pct"] > gate_pct and r["enabled_pct"] > 2.0 * r["noise_pct"]
    ]
    # Per-traced-query fixed cost, from the warm-cache mix (len(QUERIES)
    # spans per run): the absolute price of one span + its metric updates.
    mix = next(r for r in rows if r["workload"] == "warm_plan_cache_mix")
    t_off_mix = min(mix["off1_s"], mix["off2_s"])
    span_cost_us = max(0.0, (mix["on_s"] - t_off_mix) / len(QUERIES) * 1e6)
    return {
        "smoke": smoke,
        "size": size,
        "repeats": repeats,
        "inner": inner,
        "gate_pct": gate_pct,
        "rows": rows,
        "span_cost_us": span_cost_us,
        "worst": {"workload": worst["workload"], "enabled_pct": worst["enabled_pct"]},
        "failed": failed,
        "passed": not failed,
    }


def _print_report(results: dict[str, Any]) -> None:
    print(
        f"Observability overhead (n={results['size']}, "
        f"best of {results['repeats']}x{results['inner']} runs)"
    )
    print(
        f"{'workload':<22} {'off s':>9} {'on s':>9} {'overhead':>9} {'noise':>8}"
    )
    for r in results["rows"]:
        t_off = min(r["off1_s"], r["off2_s"])
        marker = "" if r["gated"] else "  (info)"
        print(
            f"{r['workload']:<22} {t_off:>9.4f} {r['on_s']:>9.4f} "
            f"{r['enabled_pct']:>8.1f}% {r['noise_pct']:>7.1f}%{marker}"
        )
    w = results["worst"]
    verdict = "PASS" if results["passed"] else "FAIL"
    print(
        f"\n{verdict}: worst gated overhead {w['enabled_pct']:.1f}% "
        f"({w['workload']}), gate {results['gate_pct']:.0f}%."
    )
    if results["failed"]:
        print("over gate: " + ", ".join(results["failed"]))
    print(
        f"Fixed cost per traced query: {results['span_cost_us']:.1f}us "
        "(span + counters, from the warm-cache mix)."
    )
    print(
        "Disabled-path cost is the off1/off2 spread above — instrumentation "
        "off is indistinguishable from never-instrumented."
    )


def main(*, smoke: bool = False, json_path: str | None = None) -> int:
    results = run_obs_overhead_bench(smoke=smoke)
    _print_report(results)
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
        print(f"\nwrote {json_path}")
    return 0 if results["passed"] else 1


# ---------------------------------------------------------------------------
# pytest smoke: keep the harness itself from rotting. Loose gate — CI noise
# on shared runners must not fail the tier-1 suite; the calibrated run via
# run_all.py applies the real one.
# ---------------------------------------------------------------------------


def test_obs_overhead_smoke():
    results = run_obs_overhead_bench(smoke=True, repeats=3, inner=2)
    assert results["rows"], "no workloads measured"
    assert all(r["on_s"] > 0 for r in results["rows"])
    worst = results["worst"]["enabled_pct"]
    assert worst < 25.0, f"enabled observability overhead {worst:.1f}% >= 25%"


if __name__ == "__main__":
    raise SystemExit(main())
