"""Shared concurrency primitives for the serving layer.

The delivery daemon (:mod:`repro.service`) runs many reader threads —
deliveries — against one shared deployment while occasional writers mutate
it (row inserts, PLA revisions, report redefinitions). The coordination
contract is a classic readers–writer lock:

* any number of deliveries may proceed concurrently under the **read**
  lock — they only consult catalog state;
* a mutation takes the **write** lock, which excludes every reader, bumps
  the state tokens the plan/containment/verdict caches key on, and then
  lets the next wave of readers in.

:class:`RWLock` is *write-preferring*: once a writer is waiting, new
readers queue behind it, so a steady stream of deliveries cannot starve
catalog mutations indefinitely. Both sides are reentrant-free by design
(no lock upgrades/downgrades); keep critical sections small and never
acquire the same lock twice on one thread.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["RWLock"]


class RWLock:
    """A write-preferring readers–writer lock.

    Implemented with one mutex plus two condition queues; the bookkeeping
    (`_active_readers`, `_writer_active`, `_writers_waiting`) is only ever
    touched under the mutex, so the fast paths stay a couple of bytecode
    ops inside one lock acquisition.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._readers_ok = threading.Condition(self._mutex)
        self._writers_ok = threading.Condition(self._mutex)
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- read side -----------------------------------------------------------

    def acquire_read(self, timeout: float | None = None) -> bool:
        """Enter the shared section; False on timeout."""
        with self._mutex:
            deadline = None if timeout is None else _deadline(timeout)
            while self._writer_active or self._writers_waiting:
                if not _wait(self._readers_ok, deadline):
                    return False
            self._active_readers += 1
            return True

    def release_read(self) -> None:
        with self._mutex:
            if self._active_readers <= 0:
                raise RuntimeError("release_read without a matching acquire_read")
            self._active_readers -= 1
            if self._active_readers == 0 and self._writers_waiting:
                self._writers_ok.notify()

    # -- write side ----------------------------------------------------------

    def acquire_write(self, timeout: float | None = None) -> bool:
        """Enter the exclusive section; False on timeout."""
        with self._mutex:
            deadline = None if timeout is None else _deadline(timeout)
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    if not _wait(self._writers_ok, deadline):
                        return False
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
            return True

    def release_write(self) -> None:
        with self._mutex:
            if not self._writer_active:
                raise RuntimeError("release_write without a matching acquire_write")
            self._writer_active = False
            if self._writers_waiting:
                self._writers_ok.notify()
            else:
                self._readers_ok.notify_all()

    # -- context managers ------------------------------------------------------

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with lock.read_locked(): ...`` — shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with lock.write_locked(): ...`` — exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (tests / stats; racy by nature, read-only) -------------

    def snapshot(self) -> dict[str, int | bool]:
        with self._mutex:
            return {
                "active_readers": self._active_readers,
                "writer_active": self._writer_active,
                "writers_waiting": self._writers_waiting,
            }


def _deadline(timeout: float) -> float:
    import time

    return time.monotonic() + timeout


def _wait(cond: threading.Condition, deadline: float | None) -> bool:
    if deadline is None:
        cond.wait()
        return True
    import time

    remaining = deadline - time.monotonic()
    if remaining <= 0:
        return False
    return cond.wait(remaining)
