"""Typed verification verdicts and the whole-deployment verification report.

Each cross-level check produces a :class:`CheckResult` — a *claim* (the Fig
5 ordering statement being proved), a :class:`Verdict`, a
:class:`ProofTrace` recording how the solver decided it, and, for refuted
claims, the synthesized witness row plus its runtime replay outcome.
:class:`VerificationReport` aggregates them and projects down to the
analyzer's :class:`~repro.analysis.diagnostics.DiagnosticReport` vocabulary
(codes ``VER001``–``VER006``), so CI gates on verification findings the
same way it gates on lint findings.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity

if TYPE_CHECKING:  # pragma: no cover
    from repro.verify.counterexample import Counterexample

__all__ = [
    "Verdict",
    "ProofTrace",
    "CheckResult",
    "VerificationReport",
    "CODE_SEVERITY",
]


class Verdict(enum.Enum):
    """Outcome of one statically decided claim."""

    PROVED = "proved"
    REFUTED = "refuted"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value


#: Severity a REFUTED verdict of each code maps to.
CODE_SEVERITY: dict[str, Severity] = {
    "VER001": Severity.ERROR,
    "VER002": Severity.ERROR,
    "VER003": Severity.ERROR,
    "VER004": Severity.WARNING,
    "VER005": Severity.ERROR,
    "VER006": Severity.ERROR,
}


@dataclass(frozen=True)
class ProofTrace:
    """How the solver reached a verdict: steps, cost, and model size."""

    steps: tuple[str, ...] = ()
    evaluations: int = 0
    domain_size: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "steps": list(self.steps),
            "evaluations": self.evaluations,
            "domain_size": self.domain_size,
        }


@dataclass(frozen=True)
class CheckResult:
    """One cross-level claim and its verdict."""

    code: str
    location: str
    claim: str
    verdict: Verdict
    message: str = ""
    trace: ProofTrace | None = None
    counterexample: "Counterexample | None" = None
    fix_hint: str = ""

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "code": self.code,
            "location": self.location,
            "claim": self.claim,
            "verdict": str(self.verdict),
        }
        if self.message:
            out["message"] = self.message
        if self.trace is not None:
            out["trace"] = self.trace.to_dict()
        if self.counterexample is not None:
            out["counterexample"] = self.counterexample.to_dict()
        if self.fix_hint:
            out["fix_hint"] = self.fix_hint
        return out

    def __str__(self) -> str:
        return (
            f"{self.verdict}: {self.code} at {self.location}: {self.claim}"
            + (f" — {self.message}" if self.message else "")
        )


@dataclass
class VerificationReport:
    """All verdicts of one whole-deployment verification run."""

    results: list[CheckResult] = field(default_factory=list)
    #: Artifact counts the run covered, e.g. {"metareports": 4, "reports": 30}.
    coverage: dict[str, int] = field(default_factory=dict)

    def add(self, result: CheckResult) -> CheckResult:
        self.results.append(result)
        return result

    def by_verdict(self, verdict: Verdict) -> tuple[CheckResult, ...]:
        return tuple(r for r in self.results if r.verdict is verdict)

    @property
    def proved(self) -> tuple[CheckResult, ...]:
        return self.by_verdict(Verdict.PROVED)

    @property
    def refuted(self) -> tuple[CheckResult, ...]:
        return self.by_verdict(Verdict.REFUTED)

    @property
    def unknown(self) -> tuple[CheckResult, ...]:
        return self.by_verdict(Verdict.UNKNOWN)

    @property
    def all_proved(self) -> bool:
        return all(r.verdict is Verdict.PROVED for r in self.results)

    def by_code(self, code: str) -> tuple[CheckResult, ...]:
        return tuple(r for r in self.results if r.code == code)

    def counts(self) -> dict[str, int]:
        out = {str(v): 0 for v in Verdict}
        for result in self.results:
            out[str(result.verdict)] += 1
        return out

    def to_diagnostics(self) -> DiagnosticReport:
        """Project verdicts to lint-style diagnostics (CI gate vocabulary).

        ``PROVED`` claims emit nothing; ``REFUTED`` emits at the code's
        registered severity; ``UNKNOWN`` emits a warning so an undecidable
        deployment cannot silently pass a strict gate.
        """
        report = DiagnosticReport(coverage=dict(self.coverage))
        for result in self.results:
            if result.verdict is Verdict.PROVED:
                continue
            if result.verdict is Verdict.REFUTED:
                severity = CODE_SEVERITY.get(result.code, Severity.ERROR)
                message = f"refuted: {result.claim}"
                if result.message:
                    message += f" — {result.message}"
            else:
                severity = Severity.WARNING
                message = f"undecided: {result.claim}"
                if result.message:
                    message += f" — {result.message}"
            report.add(
                Diagnostic(
                    code=result.code,
                    severity=severity,
                    location=result.location,
                    message=message,
                    fix_hint=result.fix_hint,
                )
            )
        return report

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        return self.to_diagnostics().exit_code(fail_on)

    def summary(self) -> str:
        counts = self.counts()
        scanned = ", ".join(f"{n} {k}" for k, n in sorted(self.coverage.items()))
        body = ", ".join(f"{n} {name}" for name, n in counts.items())
        prefix = f"verify[{scanned}]: " if scanned else "verify: "
        return prefix + body

    def to_dict(self) -> dict[str, Any]:
        return {
            "summary": self.summary(),
            "coverage": dict(sorted(self.coverage.items())),
            "counts": self.counts(),
            "results": [r.to_dict() for r in self.results],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def render_text(self) -> str:
        lines = [self.summary()]
        order = {Verdict.REFUTED: 0, Verdict.UNKNOWN: 1, Verdict.PROVED: 2}
        for result in sorted(
            self.results, key=lambda r: (order[r.verdict], r.code, r.location)
        ):
            lines.append(f"  {result}")
            ce = result.counterexample
            if ce is not None:
                lines.append(f"    counterexample row: {ce.row}")
                lines.append(f"    replay: {ce.replay.describe()}")
        return "\n".join(lines)
