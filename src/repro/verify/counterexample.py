"""Counterexample synthesis and runtime replay: self-validating refutations.

A ``REFUTED`` verdict from the cross-level pass ships a concrete minimal
database instance — one universe row synthesized from the solver's witness
— and the outcome of *replaying* that instance through the real runtime
engine: the report query is executed and enforced by the same
:class:`~repro.core.translation.ReportLevelEnforcer` production deliveries
go through, with the covering PLA's row-suppression obligations attached.
The violation counts as confirmed only when the runtime actually releases
the row **and** the row falls outside the region the refuted claim says it
must stay in. A refutation the runtime does not reproduce is itself a
finding (``VER006``: the static layer and the engine have drifted), so the
verifier can never silently disagree with enforcement.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.core.annotations import IntensionalCondition
from repro.core.compliance import ComplianceVerdict, RuntimeObligation
from repro.core.translation import ReportLevelEnforcer
from repro.errors import ReproError
from repro.policy.subjects import SubjectRegistry
from repro.relational.catalog import Catalog, View
from repro.relational.expressions import Expr
from repro.relational.query import Query
from repro.relational.table import Table, make_schema
from repro.relational.types import ColumnType
from repro.reports.definition import ReportDefinition
from repro.verify.fd import FunctionalDependency, violated_fd
from repro.verify.solver import truth

__all__ = [
    "ReplayOutcome",
    "Counterexample",
    "build_replay_catalog",
    "replay_escape",
]

_REPLAY_ROLE = "verifier"
_REPLAY_PURPOSE = "verify"


@dataclass(frozen=True)
class ReplayOutcome:
    """What happened when a witness row was run through the real engine."""

    confirmed: bool
    delivered_rows: int = 0
    detail: str = ""

    def describe(self) -> str:
        status = "confirmed" if self.confirmed else "NOT confirmed"
        return f"{status} ({self.delivered_rows} row(s) delivered; {self.detail})"

    def to_dict(self) -> dict[str, Any]:
        return {
            "confirmed": self.confirmed,
            "delivered_rows": self.delivered_rows,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class Counterexample:
    """A minimal concrete instance refuting one cross-level claim."""

    relation: str  # the universe relation the row instantiates
    row: Mapping[str, Any]  # full universe row (witness + NULL padding)
    replay: ReplayOutcome

    def to_dict(self) -> dict[str, Any]:
        return {
            "relation": self.relation,
            "row": {k: _json_value(v) for k, v in self.row.items()},
            "replay": self.replay.to_dict(),
        }


def _json_value(value: Any) -> Any:
    if isinstance(value, (datetime.date, datetime.datetime)):
        return value.isoformat()
    return value


def _column_type(value: Any) -> ColumnType:
    if type(value) is bool:
        return ColumnType.BOOL
    if isinstance(value, int):
        return ColumnType.INT
    if isinstance(value, float):
        return ColumnType.FLOAT
    # datetime before date: datetime subclasses date, and a DATE column
    # would truncate the time component the refutation may hinge on.
    if isinstance(value, datetime.datetime):
        return ColumnType.DATETIME
    if isinstance(value, datetime.date):
        return ColumnType.DATE
    return ColumnType.STRING


def build_replay_catalog(
    catalog: Catalog, universe: str, row: Mapping[str, Any]
) -> Catalog:
    """A one-row catalog: the witness as the universe, original views kept.

    The universe relation is replaced by a base table holding exactly the
    witness row (schema inferred from the values, everything nullable);
    every *other* view of the deployment catalog is carried over unchanged,
    so report queries resolve through the very same view chain the runtime
    uses. Views are lazy, so views over unrelated relations cost nothing.
    """
    replay = Catalog()
    schema = make_schema(
        *((name, _column_type(value), True) for name, value in row.items())
    )
    replay.add_table(
        Table.from_rows(universe, schema, [dict(row)], provider="warehouse")
    )
    for name in catalog.view_names():
        if name == universe:
            continue
        original = catalog.view(name)
        replay.add_view(
            View(name, original.query, description=original.description)
        )
    return replay


def _replay_subjects() -> SubjectRegistry:
    subjects = SubjectRegistry()
    subjects.add_role(_REPLAY_ROLE)
    subjects.add_user(_REPLAY_ROLE, _REPLAY_ROLE)
    subjects.purposes.declare(_REPLAY_PURPOSE)
    return subjects


def replay_escape(
    catalog: Catalog,
    universe: str,
    row: Mapping[str, Any],
    query: Query,
    conditions: Iterable[IntensionalCondition],
    target_predicate: Expr,
    *,
    name: str = "counterexample",
    fds: Iterable[FunctionalDependency] = (),
) -> ReplayOutcome:
    """Run ``query`` over the one-row witness instance, fully enforced.

    ``conditions`` are the row-suppression obligations the covering PLA
    imposes (the same obligations a production delivery would discharge);
    ``target_predicate`` is the region the refuted claim says every
    delivered row must satisfy. The replay confirms the refutation iff the
    engine releases at least one row while the witness falls outside that
    region (its evaluation is not definitely ``True``).

    ``fds`` are the declared functional dependencies over the universe: a
    witness violating one describes a row the warehouse cannot contain, so
    it is rejected (``confirmed=False``) without touching the engine.
    """
    violated = violated_fd(row, fds)
    if violated is not None:
        return ReplayOutcome(
            confirmed=False,
            detail=(
                "witness violates declared functional dependency "
                f"{violated.describe_short()}; no warehouse instance "
                "contains this row"
            ),
        )
    replay_catalog = build_replay_catalog(catalog, universe, row)
    definition = ReportDefinition(
        name=name,
        title="counterexample replay",
        query=query,
        audience=frozenset({_REPLAY_ROLE}),
        purpose=_REPLAY_PURPOSE,
    )
    verdict = ComplianceVerdict(
        report=name,
        version=1,
        compliant=True,
        covering_metareport=None,
        obligations=tuple(
            RuntimeObligation("intensional", c) for c in conditions
        ),
    )
    subjects = _replay_subjects()
    enforcer = ReportLevelEnforcer(replay_catalog)
    try:
        instance = enforcer.generate(
            definition, subjects.context(_REPLAY_ROLE, _REPLAY_PURPOSE), verdict
        )
    except ReproError as exc:
        return ReplayOutcome(
            confirmed=False, detail=f"replay raised {type(exc).__name__}: {exc}"
        )
    delivered = len(instance.table)
    outside = truth(target_predicate.evaluate(dict(row))) is not True
    confirmed = delivered > 0 and outside
    if not outside:
        detail = "witness row satisfies the target region after all"
    elif delivered == 0:
        detail = "engine suppressed the witness row"
    else:
        detail = (
            "engine released output fed by a row outside the approved region"
        )
    return ReplayOutcome(
        confirmed=confirmed, delivered_rows=delivered, detail=detail
    )
