"""Predicate solver under SQL three-valued logic.

Decides satisfiability, falsifiability, implication, and overlap of
:class:`~repro.relational.expressions.Expr` predicates *exactly* over the
supported fragment, in two layers:

1. an abstract fast path — negation-normal form, distribution to DNF, and
   per-branch pruning via the interval/finite-equality domain of
   :func:`repro.core.containment.conjunction_inconsistent`;
2. exact fallback — bounded enumeration of the finite candidate domains of
   :mod:`repro.verify.domain`, evaluating each candidate row with the
   runtime's own ``Expr.evaluate``. Exactness is by construction: the
   solver and the enforcement engine share one evaluator, so a ``SAT``
   witness here is a row the engine itself accepts.

Three-valued subtleties this encodes:

* a filter keeps a row only when the predicate is definitely ``True``, so
  "counterexample to ``p ⇒ q``" means a row where ``p`` is ``True`` and
  ``q`` is *not* ``True`` (``False`` or ``UNKNOWN``) — not a row where
  ``¬q`` is ``True``;
* NNF rewrites are truth-preserving in Kleene logic (De Morgan holds;
  ``NOT (a < b)`` is exactly ``a >= b`` because both are ``UNKNOWN`` on
  NULLs; ``IS NULL`` negation is exact because it never returns UNKNOWN);
* ``NOT (x IN ...)`` stays an opaque negative atom — the enumeration
  handles it, no rewrite needed.

Verdicts are :data:`Sat.UNKNOWN` only when the predicate leaves the
fragment or the evaluation budget runs out — never silently wrong.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.core.containment import conjunction_inconsistent
from repro.errors import QueryError
from repro.relational.expressions import (
    NEGATED_OP,
    And,
    Comparison,
    Expr,
    IsNull,
    Lit,
    Not,
    Or,
)
from repro.verify.domain import UnsupportedPredicate, build_domains, domain_size

__all__ = [
    "Sat",
    "SolverResult",
    "DEFAULT_BUDGET",
    "satisfiable",
    "falsifiable",
    "implication_counterexample",
    "overlap",
    "truth",
]

#: Default cap on candidate-row evaluations per query to the solver.
DEFAULT_BUDGET = 200_000

#: DNF branch cap; past it the solver enumerates the predicate whole.
_MAX_DNF_BRANCHES = 64


class Sat(enum.Enum):
    """Solver verdict for an existential query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SolverResult:
    """Outcome of one solver query, with its cost and (for SAT) a witness."""

    status: Sat
    witness: dict[str, Any] | None = None
    evaluations: int = 0
    domain_size: int = 0
    reason: str = ""

    def is_sat(self) -> bool:
        return self.status is Sat.SAT

    def is_unsat(self) -> bool:
        return self.status is Sat.UNSAT


def truth(value: Any) -> bool | None:
    """Normalize an evaluated predicate value to Kleene True/False/UNKNOWN."""
    if value is None:
        return None
    return bool(value)


# -- negation normal form (truth-preserving under Kleene logic) --------------


def _nnf(expr: Expr, negate: bool) -> Expr:
    if isinstance(expr, Not):
        return _nnf(expr.inner, not negate)
    if isinstance(expr, And):
        left = _nnf(expr.left, negate)
        right = _nnf(expr.right, negate)
        return Or(left, right) if negate else And(left, right)
    if isinstance(expr, Or):
        left = _nnf(expr.left, negate)
        right = _nnf(expr.right, negate)
        return And(left, right) if negate else Or(left, right)
    if not negate:
        return expr
    if isinstance(expr, Comparison):
        return Comparison(NEGATED_OP[expr.op], expr.left, expr.right)
    if isinstance(expr, IsNull):
        return IsNull(expr.target, not expr.negated)
    if isinstance(expr, Lit):
        if expr.value is None:
            return expr
        return Lit(not bool(expr.value))
    return Not(expr)  # opaque negative atom (e.g. NOT IN)


def _dnf(expr: Expr) -> list[list[Expr]] | None:
    """Disjunctive normal form as branch lists; ``None`` on blowup."""
    if isinstance(expr, Or):
        left = _dnf(expr.left)
        right = _dnf(expr.right)
        if left is None or right is None:
            return None
        branches = left + right
        return branches if len(branches) <= _MAX_DNF_BRANCHES else None
    if isinstance(expr, And):
        left = _dnf(expr.left)
        right = _dnf(expr.right)
        if left is None or right is None:
            return None
        branches = [a + b for a in left for b in right]
        return branches if len(branches) <= _MAX_DNF_BRANCHES else None
    return [[expr]]


def _conjoin(atoms: Sequence[Expr]) -> Expr | None:
    expr: Expr | None = None
    for atom in atoms:
        expr = atom if expr is None else And(expr, atom)
    return expr


# -- the existential core ----------------------------------------------------


@dataclass
class _Budget:
    remaining: int
    spent: int = 0
    exhausted: bool = False

    def tick(self) -> bool:
        if self.remaining <= 0:
            self.exhausted = True
            return False
        self.remaining -= 1
        self.spent += 1
        return True


@dataclass
class _Search:
    """One bounded-enumeration search for a row."""

    positives: list[Expr]
    negatives: list[Expr]
    budget: _Budget
    domains: dict[str, tuple[Any, ...]] = field(default_factory=dict)
    had_error: bool = False

    def run(self) -> SolverResult:
        try:
            self.domains = build_domains(self.positives + self.negatives)
        except UnsupportedPredicate as exc:
            return SolverResult(Sat.UNKNOWN, reason=str(exc))
        except Exception as exc:  # fail closed: never crash, never lie
            return SolverResult(
                Sat.UNKNOWN,
                reason=(
                    "domain construction failed: "
                    f"{type(exc).__name__}: {exc}"
                ),
            )
        size = domain_size(self.domains)
        conj = _conjoin(self.positives)
        if conj is None:
            branches: list[list[Expr]] = [[]]
        else:
            dnf = _dnf(_nnf(conj, False))
            branches = dnf if dnf is not None else [[conj]]
        negative_cols: set[str] = set()
        for expr in self.negatives:
            negative_cols |= expr.columns()
        for atoms in branches:
            branch = _conjoin(atoms)
            if branch is not None and self._provably_empty(branch):
                continue
            columns = set(negative_cols)
            if branch is not None:
                columns |= branch.columns()
            witness = self._enumerate(branch, sorted(columns))
            if witness is not None:
                return SolverResult(
                    Sat.SAT,
                    witness=witness,
                    evaluations=self.budget.spent,
                    domain_size=size,
                )
            if self.budget.exhausted:
                return SolverResult(
                    Sat.UNKNOWN,
                    evaluations=self.budget.spent,
                    domain_size=size,
                    reason=f"evaluation budget exhausted over {size} candidates",
                )
        # UNSAT requires a *complete* search: every branch fully enumerated
        # (or soundly pruned), no evaluation error anywhere in this search.
        # had_error must dominate even when later branches were pruned — a
        # pruned branch proves nothing about the branch whose evaluation
        # raised.
        if self.had_error or self.budget.exhausted:
            return SolverResult(
                Sat.UNKNOWN,
                evaluations=self.budget.spent,
                domain_size=size,
                reason=(
                    "candidate evaluation raised (incomparable types?)"
                    if self.had_error
                    else f"evaluation budget exhausted over {size} candidates"
                ),
            )
        return SolverResult(
            Sat.UNSAT, evaluations=self.budget.spent, domain_size=size
        )

    def _provably_empty(self, branch: Expr) -> bool:
        """Sound pruning only: an *error* in the pruner must not prune.

        ``conjunction_inconsistent`` is a fast emptiness proof; if it
        raises on a shape it cannot decompose, the branch is enumerated
        instead — pruning may only ever remove branches proved empty.
        """
        try:
            return conjunction_inconsistent(branch)
        except Exception:
            return False

    def _enumerate(
        self, branch: Expr | None, columns: list[str]
    ) -> dict[str, Any] | None:
        pools = [self.domains.get(c, (None,)) for c in columns]
        for values in itertools.product(*pools):
            if not self.budget.tick():
                return None
            row = dict(zip(columns, values))
            try:
                if branch is not None and truth(branch.evaluate(row)) is not True:
                    continue
                # Guard against any normal-form slip: the witness must make
                # the *original* positives true, per the runtime evaluator.
                if any(truth(p.evaluate(row)) is not True for p in self.positives):
                    continue
                if any(truth(n.evaluate(row)) is True for n in self.negatives):
                    continue
            except (QueryError, TypeError, ValueError, ArithmeticError):
                # QueryError is the engine's typed failure; raw TypeError/
                # OverflowError can escape arithmetic over exotic operand
                # mixes. Either way the candidate is inconclusive, and the
                # search as a whole can no longer claim UNSAT.
                self.had_error = True
                continue
            return row
        return None


def _exists(
    positives: Iterable[Expr],
    negatives: Iterable[Expr],
    budget: int,
) -> SolverResult:
    """Find a row making every positive ``True`` and no negative ``True``."""
    return _Search(
        positives=list(positives),
        negatives=list(negatives),
        budget=_Budget(remaining=budget),
    ).run()


# -- public API --------------------------------------------------------------


def satisfiable(
    predicate: Expr | None, *, budget: int = DEFAULT_BUDGET
) -> SolverResult:
    """Is there a row on which ``predicate`` evaluates to ``True``?

    ``None`` (no restriction) is trivially satisfiable by the empty row.
    """
    if predicate is None:
        return SolverResult(Sat.SAT, witness={})
    return _exists([predicate], [], budget)


def falsifiable(
    predicate: Expr | None, *, budget: int = DEFAULT_BUDGET
) -> SolverResult:
    """Is there a row on which ``predicate`` is *not* ``True``?

    ``UNSAT`` certifies a tautology (the predicate filters nothing under
    the engine's keep-only-True semantics). ``None`` is never falsifiable.
    """
    if predicate is None:
        return SolverResult(Sat.UNSAT)
    return _exists([], [predicate], budget)


def implication_counterexample(
    premise: Expr | None,
    conclusion: Expr | None,
    *,
    budget: int = DEFAULT_BUDGET,
) -> SolverResult:
    """Search for a row where ``premise`` holds but ``conclusion`` does not.

    ``UNSAT`` proves the filter-semantics implication: every row the
    premise keeps, the conclusion keeps too. ``SAT`` refutes it and the
    witness is the concrete escaping row. ``None`` premises mean "no
    restriction" (all rows), ``None`` conclusions are implied by anything.
    """
    if conclusion is None:
        return SolverResult(Sat.UNSAT)
    if premise is None:
        return _exists([], [conclusion], budget)
    return _exists([premise], [conclusion], budget)


def overlap(
    p: Expr | None, q: Expr | None, *, budget: int = DEFAULT_BUDGET
) -> SolverResult:
    """Is there a row both predicates keep? ``UNSAT`` proves disjointness."""
    positives = [e for e in (p, q) if e is not None]
    if not positives:
        return SolverResult(Sat.SAT, witness={})
    return _exists(positives, [], budget)
