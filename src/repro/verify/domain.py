"""Finite candidate domains: the small-model argument behind the solver.

The solver (:mod:`repro.verify.solver`) decides satisfiability by
evaluating candidate rows with the runtime's own ``Expr.evaluate`` — so its
verdicts can never drift from engine semantics. What makes the enumeration
*exact* rather than a sampling heuristic is the construction here: for the
supported predicate fragment (column-vs-literal comparisons, column-vs-
column comparisons, IN lists, IS [NOT] NULL, and any AND/OR/NOT nesting of
those) an atom's truth value depends only on how a column's value compares
to the finitely many literal constants in the predicate and to the other
columns it is compared against. A candidate set containing

* every constant mentioned for the column (or its comparison group),
* values just below/above each constant (and between adjacent constants),
* enough extra distinct values to realize every ordering of the columns in
  one comparison group (group size, capped at :data:`MAX_GROUP_OFFSET`),
* and ``NULL``

therefore realizes every reachable atom-valuation — if any row satisfies
the predicate, some candidate row does too. Columns compared to each other
are merged into one *group* (union-find) sharing a candidate pool, since
their relative order matters.

Typing assumption: a column whose constants are all ``int`` ranges over
integers (the warehouse stores typed columns), so ``x > 5 AND x < 6`` is
reported unsatisfiable. Float constants switch the column to a dense
domain, adding midpoints between adjacent constants.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import AnalysisError
from repro.relational.expressions import (
    And,
    Col,
    Comparison,
    Expr,
    InList,
    IsNull,
    Lit,
    Not,
    Or,
)

__all__ = [
    "UnsupportedPredicate",
    "MAX_GROUP_OFFSET",
    "PredicateShape",
    "scan_shape",
    "build_domains",
    "domain_size",
]

#: Extra distinct values generated around each constant, bounded so huge
#: column-comparison groups cannot explode the candidate pool.
MAX_GROUP_OFFSET = 4


class UnsupportedPredicate(AnalysisError):
    """The predicate contains a shape the solver cannot model exactly."""


@dataclass
class PredicateShape:
    """Columns, literal constant pools, and column-column comparison edges."""

    constants: dict[str, set[Any]] = field(default_factory=dict)
    edges: list[tuple[str, str]] = field(default_factory=list)

    def columns(self) -> frozenset[str]:
        return frozenset(self.constants)

    def pool(self, column: str) -> set[Any]:
        return self.constants.setdefault(column, set())


def scan_shape(exprs: Iterable[Expr | None]) -> PredicateShape:
    """Collect the shape of a set of predicates (conjoined or separate).

    Raises :class:`UnsupportedPredicate` on atoms outside the fragment
    (arithmetic, literal-free comparisons over computed values, unknown
    node types).
    """
    shape = PredicateShape()
    for expr in exprs:
        if expr is not None:
            _scan(expr, shape)
    return shape


def _scan(expr: Expr, shape: PredicateShape) -> None:
    if isinstance(expr, (And, Or)):
        _scan(expr.left, shape)
        _scan(expr.right, shape)
    elif isinstance(expr, Not):
        _scan(expr.inner, shape)
    elif isinstance(expr, Comparison):
        left, right = expr.left, expr.right
        if isinstance(left, Col) and isinstance(right, Lit):
            if right.value is not None:
                shape.pool(left.name).add(right.value)
            else:
                shape.pool(left.name)
        elif isinstance(left, Lit) and isinstance(right, Col):
            if left.value is not None:
                shape.pool(right.name).add(left.value)
            else:
                shape.pool(right.name)
        elif isinstance(left, Col) and isinstance(right, Col):
            shape.pool(left.name)
            shape.pool(right.name)
            shape.edges.append((left.name, right.name))
        elif isinstance(left, Lit) and isinstance(right, Lit):
            pass  # constant atom; no column involved
        else:
            raise UnsupportedPredicate(
                f"comparison outside the solver fragment: {expr}"
            )
    elif isinstance(expr, InList):
        if not isinstance(expr.target, Col):
            raise UnsupportedPredicate(f"IN over non-column: {expr}")
        shape.pool(expr.target.name).update(
            v for v in expr.values if v is not None
        )
    elif isinstance(expr, IsNull):
        if not isinstance(expr.target, Col):
            raise UnsupportedPredicate(f"IS NULL over non-column: {expr}")
        shape.pool(expr.target.name)
    elif isinstance(expr, Lit):
        pass
    else:
        raise UnsupportedPredicate(
            f"node outside the solver fragment: {type(expr).__name__}: {expr}"
        )


class _Groups:
    """Union-find over column names (columns compared to each other)."""

    def __init__(self) -> None:
        self.parent: dict[str, str] = {}

    def add(self, name: str) -> None:
        self.parent.setdefault(name, name)

    def find(self, name: str) -> str:
        while self.parent[name] != name:
            self.parent[name] = self.parent[self.parent[name]]
            name = self.parent[name]
        return name

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _candidates(pool: set[Any], group_size: int) -> list[Any]:
    """Non-NULL candidate values realizing every atom valuation.

    ``group_size`` is how many columns share this pool; offsets up to that
    size (capped) guarantee enough distinct values for every ordering.
    """
    offsets = range(1, min(max(group_size, 1), MAX_GROUP_OFFSET) + 1)
    if not pool:
        # No constants: only relative order among group members matters.
        return list(range(max(group_size, 1) + 1))
    kinds = {_kind(v) for v in pool}
    if len(kinds) > 1:
        raise UnsupportedPredicate(
            f"mixed-type constant pool {sorted(map(repr, pool))}; cannot "
            "order candidates"
        )
    kind = kinds.pop()
    if kind == "bool":
        return [False, True]
    if kind == "number":
        out = set(pool)
        for value in pool:
            for j in offsets:
                out.add(value + j)
                out.add(value - j)
        if any(isinstance(v, float) for v in pool):
            ordered = sorted(pool)
            for a, b in zip(ordered, ordered[1:]):
                out.add((a + b) / 2)
        return sorted(out)
    if kind == "str":
        out = set(pool)
        out.add("")
        for value in pool:
            for j in offsets:
                out.add(value + "\x00" * j)
        return sorted(out)
    if kind == "date":
        out = set(pool)
        for value in pool:
            for j in offsets:
                out.add(value + datetime.timedelta(days=j))
                out.add(value - datetime.timedelta(days=j))
        return sorted(out)
    raise UnsupportedPredicate(
        f"constants of unsupported type in pool: {sorted(map(repr, pool))}"
    )


def _kind(value: Any) -> str:
    if type(value) is bool:
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "str"
    if isinstance(value, (datetime.date, datetime.datetime)):
        return "date"
    return type(value).__name__


def build_domains(exprs: Iterable[Expr | None]) -> dict[str, tuple[Any, ...]]:
    """Per-column candidate domains (``NULL`` last) for a predicate set.

    Columns compared to each other share one merged candidate pool so their
    relative orderings are all reachable.
    """
    shape = scan_shape(exprs)
    groups = _Groups()
    for column in shape.constants:
        groups.add(column)
    for a, b in shape.edges:
        groups.union(a, b)
    members: dict[str, list[str]] = {}
    for column in shape.constants:
        members.setdefault(groups.find(column), []).append(column)
    domains: dict[str, tuple[Any, ...]] = {}
    for root, columns in members.items():
        pool: set[Any] = set()
        for column in columns:
            pool |= shape.constants[column]
        values = _candidates(pool, len(columns))
        domain = tuple(values) + (None,)
        for column in columns:
            domains[column] = domain
    return domains


def domain_size(domains: dict[str, Sequence[Any]]) -> int:
    """Number of candidate rows the full cross product contains."""
    size = 1
    for values in domains.values():
        size *= len(values)
    return size
