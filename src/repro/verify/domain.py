"""Finite candidate domains: the small-model argument behind the solver.

The solver (:mod:`repro.verify.solver`) decides satisfiability by
evaluating candidate rows with the runtime's own ``Expr.evaluate`` — so its
verdicts can never drift from engine semantics. What makes the enumeration
*exact* rather than a sampling heuristic is the construction here: for the
supported predicate fragment (column-vs-literal comparisons, column-vs-
column comparisons, linear single-column arithmetic ``a*x + b ⋈ c``,
affine column-column comparisons ``x ⋈ a*y + b``, IN lists, IS [NOT]
NULL, and any AND/OR/NOT nesting of those) an atom's truth value depends
only on how a column's value compares to finitely many *thresholds*: the
literal constants, the solved boundaries of its linear atoms, and — for
columns compared to each other — the (affine images of the) other
column's candidates. A candidate set containing

* every constant mentioned for the column (or its comparison group),
* the solved boundary of every linear atom over it (``a*x + b ⋈ c``
  contributes ``(c - b) / a``; fractional boundaries are sampled at the
  rounded float plus both ULP neighbours so the true boundary is
  straddled),
* values just below/above each threshold (and between adjacent ones),
* enough extra distinct values to realize every ordering of the columns in
  one comparison group (group size, capped at :data:`MAX_GROUP_OFFSET`),
* for affine pairs, the *crossing points* where two thresholds meet
  (``a1*y + b1 = a2*y + b2``) and the images ``a*v + b`` of every source
  candidate ``v``,
* and ``NULL``

therefore realizes every reachable atom-valuation — if any row satisfies
the predicate, some candidate row does too. Columns compared to each other
are merged into one *group* (union-find) sharing a candidate pool, since
their relative order matters. Groups linked by a *non-identity* affine
edge are restricted to exactly one (target, source) column pair — chains
of affine comparisons leave the fragment and yield UNKNOWN.

Typing assumption: a column whose constants are all ``int`` ranges over
integers (the warehouse stores typed columns), so ``x > 5 AND x < 6`` is
reported unsatisfiable. Float constants — including fractional solved
boundaries such as ``100 / 1.2`` — switch the column to a dense domain,
adding midpoints between adjacent constants.
"""

from __future__ import annotations

import datetime
import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Iterable, Sequence

from repro.errors import AnalysisError
from repro.relational.expressions import (
    And,
    Arith,
    Col,
    Comparison,
    Expr,
    InList,
    IsNull,
    Lit,
    Not,
    Or,
)

__all__ = [
    "UnsupportedPredicate",
    "MAX_GROUP_OFFSET",
    "AffineEdge",
    "PredicateShape",
    "scan_shape",
    "build_domains",
    "domain_size",
    "set_arithmetic_enabled",
]

#: Extra distinct values generated around each constant, bounded so huge
#: column-comparison groups cannot explode the candidate pool.
MAX_GROUP_OFFSET = 4

#: Feature toggle for the linear-arithmetic fragment. Exists so ablations
#: (``benchmarks/bench_verify.py``) can measure the PROVED-rate gain of
#: arithmetic support against the pre-arithmetic solver; production code
#: never turns it off.
_ARITHMETIC_ENABLED = True


def set_arithmetic_enabled(enabled: bool) -> bool:
    """Toggle linear-arithmetic atom support; returns the previous setting.

    With arithmetic disabled every ``Arith``-bearing atom raises
    :class:`UnsupportedPredicate` (the pre-extension behaviour), so solver
    verdicts degrade to UNKNOWN instead of becoming wrong.
    """
    global _ARITHMETIC_ENABLED
    previous = _ARITHMETIC_ENABLED
    _ARITHMETIC_ENABLED = enabled
    return previous


class UnsupportedPredicate(AnalysisError):
    """The predicate contains a shape the solver cannot model exactly."""


@dataclass(frozen=True)
class AffineEdge:
    """A comparison linking two distinct columns: ``target ⋈ a*source + b``.

    Normalized so the target column appears with coefficient 1; the
    comparison operator itself is irrelevant to domain construction (only
    the threshold line ``x = a*y + b`` matters) and stays in the predicate
    for the evaluator.
    """

    target: str
    source: str
    a: Fraction
    b: Fraction


@dataclass
class PredicateShape:
    """Columns, constant pools, and column-column comparison edges.

    ``edges`` are plain ``x ⋈ y`` comparisons (identity affine edges);
    ``affine`` carries the non-identity ``x ⋈ a*y + b`` ones.
    """

    constants: dict[str, set[Any]] = field(default_factory=dict)
    edges: list[tuple[str, str]] = field(default_factory=list)
    affine: list[AffineEdge] = field(default_factory=list)

    def columns(self) -> frozenset[str]:
        return frozenset(self.constants)

    def pool(self, column: str) -> set[Any]:
        return self.constants.setdefault(column, set())

    def add_boundary(self, column: str, boundary: Fraction) -> None:
        """Record a solved linear-atom boundary as pool constants."""
        self.pool(column).update(_boundary_values(boundary))


def _boundary_values(boundary: Fraction) -> tuple[int | float, ...]:
    """Pool constants representing one exact rational threshold.

    Integral boundaries stay ``int`` (preserving the int-typing rule);
    fractional ones become the rounded ``float`` plus both ULP neighbours,
    so candidates straddle the true boundary even when it is not exactly
    representable.
    """
    if boundary.denominator == 1:
        return (int(boundary),)
    approx = float(boundary)
    return (
        approx,
        math.nextafter(approx, math.inf),
        math.nextafter(approx, -math.inf),
    )


# -- linear terms -------------------------------------------------------------


@dataclass(frozen=True)
class _Linear:
    """One side of an atom as ``coeff * col + const`` over non-NULL rows.

    ``cols`` lists *every* referenced column (a NULL in any of them makes
    the whole expression NULL, which matters even when the column's
    coefficient cancelled to zero). ``col`` is ``None`` iff ``coeff`` is
    zero (a degenerate constant term).
    """

    cols: frozenset[str]
    coeff: Fraction
    col: str | None
    const: Fraction


def _as_fraction(value: Any, context: Expr) -> Fraction:
    if type(value) is bool or not isinstance(value, (int, float)):
        raise UnsupportedPredicate(
            f"non-numeric operand in arithmetic: {context}"
        )
    try:
        return Fraction(value)
    except (ValueError, OverflowError) as exc:  # NaN / infinity literals
        raise UnsupportedPredicate(
            f"non-finite numeric literal in arithmetic: {context}"
        ) from exc


def _linearize(expr: Expr, context: Expr) -> _Linear:
    """Rewrite one comparison side as a linear single-column term.

    Raises :class:`UnsupportedPredicate` on anything outside the linear
    fragment: multi-column terms, column*column products, division by a
    column or by literal zero, non-numeric or NULL operands.
    """
    if isinstance(expr, Lit):
        if expr.value is None:
            raise UnsupportedPredicate(
                f"NULL literal inside arithmetic: {context}"
            )
        return _Linear(frozenset(), Fraction(0), None, _as_fraction(expr.value, context))
    if isinstance(expr, Col):
        return _Linear(frozenset({expr.name}), Fraction(1), expr.name, Fraction(0))
    if isinstance(expr, Arith):
        lhs = _linearize(expr.left, context)
        rhs = _linearize(expr.right, context)
        cols = lhs.cols | rhs.cols
        if expr.op in ("+", "-"):
            if lhs.col is not None and rhs.col is not None and lhs.col != rhs.col:
                raise UnsupportedPredicate(
                    f"multi-column arithmetic term: {context}"
                )
            sign = 1 if expr.op == "+" else -1
            coeff = lhs.coeff + sign * rhs.coeff
            col = lhs.col if lhs.col is not None else rhs.col
            return _Linear(
                cols, coeff, col if coeff else None, lhs.const + sign * rhs.const
            )
        if expr.op == "*":
            if lhs.col is not None and rhs.col is not None:
                raise UnsupportedPredicate(
                    f"nonlinear column*column term: {context}"
                )
            scale, term = (lhs.const, rhs) if lhs.col is None else (rhs.const, lhs)
            coeff = term.coeff * scale
            return _Linear(
                cols, coeff, term.col if coeff else None, term.const * scale
            )
        if expr.op == "/":
            if rhs.col is not None or rhs.cols:
                raise UnsupportedPredicate(f"division by a column: {context}")
            if rhs.const == 0:
                raise UnsupportedPredicate(
                    f"division by literal zero: {context}"
                )
            coeff = lhs.coeff / rhs.const
            return _Linear(
                cols, coeff, lhs.col if coeff else None, lhs.const / rhs.const
            )
        raise UnsupportedPredicate(
            f"arithmetic operator {expr.op!r} outside the solver fragment: {context}"
        )
    raise UnsupportedPredicate(
        f"operand outside the solver fragment: {type(expr).__name__}: {context}"
    )


def scan_shape(exprs: Iterable[Expr | None]) -> PredicateShape:
    """Collect the shape of a set of predicates (conjoined or separate).

    Raises :class:`UnsupportedPredicate` on atoms outside the fragment
    (nonlinear arithmetic, multi-column terms, unknown node types).
    """
    shape = PredicateShape()
    for expr in exprs:
        if expr is not None:
            _scan(expr, shape)
    return shape


def _scan(expr: Expr, shape: PredicateShape) -> None:
    if isinstance(expr, (And, Or)):
        _scan(expr.left, shape)
        _scan(expr.right, shape)
    elif isinstance(expr, Not):
        _scan(expr.inner, shape)
    elif isinstance(expr, Comparison):
        left, right = expr.left, expr.right
        if isinstance(left, Col) and isinstance(right, Lit):
            if right.value is not None:
                shape.pool(left.name).add(right.value)
            else:
                shape.pool(left.name)
        elif isinstance(left, Lit) and isinstance(right, Col):
            if left.value is not None:
                shape.pool(right.name).add(left.value)
            else:
                shape.pool(right.name)
        elif isinstance(left, Col) and isinstance(right, Col):
            shape.pool(left.name)
            shape.pool(right.name)
            shape.edges.append((left.name, right.name))
        elif isinstance(left, Lit) and isinstance(right, Lit):
            pass  # constant atom; no column involved
        elif isinstance(left, Arith) or isinstance(right, Arith):
            _scan_arith_comparison(expr, shape)
        else:
            raise UnsupportedPredicate(
                f"comparison outside the solver fragment: {expr}"
            )
    elif isinstance(expr, InList):
        target = expr.target
        if isinstance(target, Col):
            shape.pool(target.name).update(
                v for v in expr.values if v is not None
            )
        elif isinstance(target, Arith):
            _require_arithmetic(expr)
            lin = _linearize(target, expr)
            for name in lin.cols:
                shape.pool(name)
            if lin.col is not None:
                for v in expr.values:
                    if v is None or not isinstance(v, (int, float)):
                        continue  # a number can only equal a numeric member
                    shape.add_boundary(
                        lin.col, (_as_fraction(v, expr) - lin.const) / lin.coeff
                    )
        else:
            raise UnsupportedPredicate(f"IN over non-column: {expr}")
    elif isinstance(expr, IsNull):
        target = expr.target
        if isinstance(target, Col):
            shape.pool(target.name)
        elif isinstance(target, Arith):
            # NULL-ness of a linear term is NULL-ness of any referenced
            # column (literal coefficients are never NULL; /0 is excluded
            # by _linearize), so registering the pools suffices.
            _require_arithmetic(expr)
            lin = _linearize(target, expr)
            for name in lin.cols:
                shape.pool(name)
        else:
            raise UnsupportedPredicate(f"IS NULL over non-column: {expr}")
    elif isinstance(expr, Lit):
        pass
    else:
        raise UnsupportedPredicate(
            f"node outside the solver fragment: {type(expr).__name__}: {expr}"
        )


def _require_arithmetic(expr: Expr) -> None:
    if not _ARITHMETIC_ENABLED:
        raise UnsupportedPredicate(
            f"arithmetic support disabled (ablation mode): {expr}"
        )


def _scan_arith_comparison(expr: Comparison, shape: PredicateShape) -> None:
    """Fold one ``Arith``-bearing comparison into the shape.

    Each side is linearized to ``a*col + b``; the atom is then either a
    solvable single-column boundary, an affine edge between two columns,
    or a constant (whose referenced columns still need NULL bookkeeping).
    """
    _require_arithmetic(expr)
    lhs = _linearize(expr.left, expr)
    rhs = _linearize(expr.right, expr)
    for name in lhs.cols | rhs.cols:
        shape.pool(name)
    if lhs.col is not None and rhs.col is not None:
        if lhs.col == rhs.col:
            # a1*x + b1 ⋈ a2*x + b2  →  (a1-a2)*x ⋈ b2-b1
            a = lhs.coeff - rhs.coeff
            if a != 0:
                shape.add_boundary(lhs.col, (rhs.const - lhs.const) / a)
            return
        # a1*x + b1 ⋈ a2*y + b2  →  x ⋈ (a2/a1)*y + (b2-b1)/a1; the
        # threshold line is what matters, so dividing by a negative a1
        # (which flips the comparison) is immaterial here.
        shape.affine.append(
            AffineEdge(
                target=lhs.col,
                source=rhs.col,
                a=rhs.coeff / lhs.coeff,
                b=(rhs.const - lhs.const) / lhs.coeff,
            )
        )
        return
    if lhs.col is not None:
        shape.add_boundary(lhs.col, (rhs.const - lhs.const) / lhs.coeff)
        return
    if rhs.col is not None:
        shape.add_boundary(rhs.col, (lhs.const - rhs.const) / rhs.coeff)
        return
    # Both sides degenerate: a constant atom (UNKNOWN when a referenced
    # column is NULL — the pools registered above cover that case).


class _Groups:
    """Union-find over column names (columns compared to each other)."""

    def __init__(self) -> None:
        self.parent: dict[str, str] = {}

    def add(self, name: str) -> None:
        self.parent.setdefault(name, name)

    def find(self, name: str) -> str:
        while self.parent[name] != name:
            self.parent[name] = self.parent[self.parent[name]]
            name = self.parent[name]
        return name

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _candidates(pool: set[Any], group_size: int) -> list[Any]:
    """Non-NULL candidate values realizing every atom valuation.

    ``group_size`` is how many columns share this pool; offsets up to that
    size (capped) guarantee enough distinct values for every ordering.
    """
    offsets = range(1, min(max(group_size, 1), MAX_GROUP_OFFSET) + 1)
    if not pool:
        # No constants: only relative order among group members matters.
        return list(range(max(group_size, 1) + 1))
    kinds = {_kind(v) for v in pool}
    if len(kinds) > 1:
        raise UnsupportedPredicate(
            f"mixed-type constant pool ({', '.join(sorted(kinds))}): "
            f"{sorted(map(repr, pool))}; cannot order candidates"
        )
    kind = kinds.pop()
    if kind == "bool":
        return [False, True]
    if kind == "number":
        out = set(pool)
        for value in pool:
            for j in offsets:
                out.add(value + j)
                out.add(value - j)
        if any(isinstance(v, float) for v in pool):
            ordered = sorted(pool)
            for a, b in zip(ordered, ordered[1:]):
                out.add((a + b) / 2)
        return sorted(out)
    if kind == "str":
        out = set(pool)
        out.add("")
        for value in pool:
            for j in offsets:
                out.add(value + "\x00" * j)
        return sorted(out)
    if kind == "date":
        out = set(pool)
        for value in pool:
            for j in offsets:
                out.add(value + datetime.timedelta(days=j))
                out.add(value - datetime.timedelta(days=j))
        return sorted(out)
    if kind == "datetime":
        # Datetimes are dense (sub-day granularity): day offsets around
        # each constant plus midpoints between adjacent constants.
        out = set(pool)
        for value in pool:
            for j in offsets:
                out.add(value + datetime.timedelta(days=j))
                out.add(value - datetime.timedelta(days=j))
        ordered = sorted(pool)
        for a, b in zip(ordered, ordered[1:]):
            out.add(a + (b - a) / 2)
        return sorted(out)
    raise UnsupportedPredicate(
        f"constants of unsupported type in pool: {sorted(map(repr, pool))}"
    )


def _kind(value: Any) -> str:
    if type(value) is bool:
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "str"
    # datetime.datetime subclasses datetime.date but the two do not
    # order against each other — they must land in distinct kinds so a
    # mixed pool is rejected (UNKNOWN) instead of crashing sorted().
    if isinstance(value, datetime.datetime):
        return "datetime"
    if isinstance(value, datetime.date):
        return "date"
    return type(value).__name__


def build_domains(exprs: Iterable[Expr | None]) -> dict[str, tuple[Any, ...]]:
    """Per-column candidate domains (``NULL`` last) for a predicate set.

    Columns compared to each other share one merged candidate pool so their
    relative orderings are all reachable. A group linked by non-identity
    affine edges must be exactly one (target, source) pair; the target's
    pool is closed under the affine images of the source's candidates and
    under every threshold crossing point.
    """
    shape = scan_shape(exprs)
    groups = _Groups()
    for column in shape.constants:
        groups.add(column)
    for a, b in shape.edges:
        groups.union(a, b)
    for edge in shape.affine:
        groups.union(edge.target, edge.source)
    members: dict[str, list[str]] = {}
    for column in shape.constants:
        members.setdefault(groups.find(column), []).append(column)
    domains: dict[str, tuple[Any, ...]] = {}
    for root, columns in members.items():
        pool: set[Any] = set()
        for column in columns:
            pool |= shape.constants[column]
        affine = [e for e in shape.affine if groups.find(e.target) == root]
        if affine:
            source_values, target_values, pair = _affine_group_candidates(
                columns, pool, affine, shape.edges
            )
            domains[pair[1]] = tuple(source_values) + (None,)
            domains[pair[0]] = tuple(target_values) + (None,)
            continue
        values = _candidates(pool, len(columns))
        domain = tuple(values) + (None,)
        for column in columns:
            domains[column] = domain
    return domains


def _affine_group_candidates(
    columns: list[str],
    pool: set[Any],
    affine: list[AffineEdge],
    plain_edges: list[tuple[str, str]],
) -> tuple[list[Any], list[Any], tuple[str, str]]:
    """Candidates for a two-column group linked by affine edges.

    Exactness argument (the 2D small-model): the atoms partition the
    (target, source) plane into cells bounded by the lines ``y = const``,
    ``x = const`` and ``x = a*y + b``. The source candidates realize a
    point inside every y-interval delimited by the *critical* y-values —
    the y constants, the crossings of two affine thresholds, and the
    crossings of an affine threshold with an x constant — within which the
    ordering of all x-thresholds is fixed. For each such source candidate
    the target pool then contains every threshold image (and neighbours /
    midpoints via :func:`_candidates`), realizing every x-side ordering.
    """
    pairs = {(e.target, e.source) for e in affine}
    if len(pairs) > 1 or len(columns) != 2:
        raise UnsupportedPredicate(
            "affine column-column comparisons support exactly one column "
            f"pair per comparison group; got columns {sorted(columns)} with "
            f"edges {sorted(f'{t}~{s}' for t, s in pairs)}"
        )
    (pair,) = pairs
    target, source = pair
    bad = sorted(
        repr(v)
        for v in pool
        if type(v) is bool or not isinstance(v, (int, float))
    )
    if bad:
        raise UnsupportedPredicate(
            f"non-numeric constants {bad} in an arithmetic comparison group"
        )
    edges = list(affine)
    if any({a, b} == {target, source} for a, b in plain_edges):
        # A plain x ⋈ y comparison in the same group is the identity
        # affine edge; it must join the crossing/image computation.
        edges.append(AffineEdge(target, source, Fraction(1), Fraction(0)))
    source_pool = set(pool)
    for i, e1 in enumerate(edges):
        for e2 in edges[i + 1 :]:
            if e1.a != e2.a:  # non-parallel thresholds cross once
                source_pool.update(
                    _boundary_values((e2.b - e1.b) / (e1.a - e2.a))
                )
        for c in pool:
            source_pool.update(
                _boundary_values((Fraction(c) - e1.b) / e1.a)
            )
    source_values = _candidates(source_pool, 2)
    image_pool = set(pool) | set(source_values)
    for e in edges:
        for v in source_values:
            image_pool.update(_boundary_values(e.a * Fraction(v) + e.b))
    target_values = _candidates(image_pool, 2)
    return source_values, target_values, pair


def domain_size(domains: dict[str, Sequence[Any]]) -> int:
    """Number of candidate rows the full cross product contains."""
    size = 1
    for values in domains.values():
        size *= len(values)
    return size
