"""repro.verify — symbolic cross-level PLA verification (execution-free).

The verifier closes the loop the paper's §5 compliance mechanism leaves
open: :mod:`repro.core.containment` decides *derivability* when a report is
registered, but nothing proved that the deployed artifacts — source
policies, warehouse authorizations, approved meta-report definitions, and
the catalog views actually executed — still agree with each other. This
package proves (or refutes, with a replayable counterexample) the Fig 5
ordering across all four levels without executing a single report:

* :mod:`repro.verify.domain` — finite abstract domains over predicate
  constants (the small-model argument that makes enumeration exact),
* :mod:`repro.verify.solver` — satisfiability / implication / disjointness
  under SQL three-valued logic,
* :mod:`repro.verify.verdicts` — typed ``PROVED``/``REFUTED``/``UNKNOWN``
  results with proof traces, rendered as VER001–VER006 diagnostics,
* :mod:`repro.verify.fd` — functional dependencies derived from the star
  dimensions, conjoined into implication premises with provenance,
* :mod:`repro.verify.counterexample` — witness-row synthesis and replay
  through the production enforcement engine,
* :mod:`repro.verify.crosslevel` — the deployment-wide consistency pass,
* :mod:`repro.verify.incremental` — value-keyed verdict caching so
  re-verification after a mutation re-proves only the units it touched.
"""

from repro.verify.counterexample import (
    Counterexample,
    ReplayOutcome,
    build_replay_catalog,
    replay_escape,
)
from repro.verify.crosslevel import (
    DeploymentVerifier,
    SourcePolicy,
    VerificationInput,
    verify_scenario,
)
from repro.verify.fd import (
    FunctionalDependency,
    fds_from_star,
    violated_fd,
)
from repro.verify.incremental import (
    IncrementalVerifier,
    VerdictCache,
    result_from_dict,
    result_to_dict,
)
from repro.verify.domain import (
    PredicateShape,
    UnsupportedPredicate,
    build_domains,
    domain_size,
    scan_shape,
)
from repro.verify.solver import (
    DEFAULT_BUDGET,
    Sat,
    SolverResult,
    falsifiable,
    implication_counterexample,
    overlap,
    satisfiable,
    truth,
)
from repro.verify.verdicts import (
    CheckResult,
    ProofTrace,
    Verdict,
    VerificationReport,
)

__all__ = [
    "Sat",
    "SolverResult",
    "DEFAULT_BUDGET",
    "satisfiable",
    "falsifiable",
    "implication_counterexample",
    "overlap",
    "truth",
    "UnsupportedPredicate",
    "PredicateShape",
    "scan_shape",
    "build_domains",
    "domain_size",
    "Verdict",
    "ProofTrace",
    "CheckResult",
    "VerificationReport",
    "Counterexample",
    "ReplayOutcome",
    "build_replay_catalog",
    "replay_escape",
    "SourcePolicy",
    "VerificationInput",
    "DeploymentVerifier",
    "FunctionalDependency",
    "fds_from_star",
    "violated_fd",
    "IncrementalVerifier",
    "VerdictCache",
    "result_to_dict",
    "result_from_dict",
    "verify_scenario",
]
