"""Incremental re-verification: re-prove only what a mutation touched.

``DeploymentVerifier.verify()`` is a pure function of its inputs, and those
inputs decompose cleanly per *unit* — one approved meta-report, or one
report. A unit's verdicts depend only on:

* the **environment**: source policies, the universe relation and its
  column vocabulary, the solver budget, and whether replay is enabled;
* the unit's own **definition chain**: its query fingerprint, the
  fingerprints of every catalog view it (transitively) reads, and the
  schemas of the base tables underneath;
* for meta-reports, the attached **PLA** (name, version, status, and the
  exact annotation set); for reports, the identity token of the covering
  meta-report — including *its* PLA and chain — as resolved right now.

Crucially, the verdicts do **not** depend on table *data*: counterexample
replay synthesizes its own one-row universe
(:func:`repro.verify.counterexample.build_replay_catalog` copies only view
definitions), so data-only inserts can never change a verdict. That makes
"insert a million facts, re-verify" a pure cache hit.

:class:`IncrementalVerifier` walks the catalog in exactly the order of a
full run, keys each unit on a digest of the value-based token above, and
re-proves only units whose token changed. Everything else is replayed from
:class:`VerdictCache` — which serializes to JSON, so ``repro verify
--incremental`` stays warm *across processes*. The composed
:class:`~repro.verify.verdicts.VerificationReport` is identical to a full
run's (the randomized mutation-sequence property in
``tests/test_verify_incremental.py`` enforces it); cache bookkeeping lives
on the cache object, never in the report.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any

from repro.core.metareport import MetaReport
from repro.core.pla import PLA
from repro.relational.catalog import Catalog
from repro.relational.query import Query
from repro.reports.definition import ReportDefinition
from repro.verify.counterexample import Counterexample, ReplayOutcome
from repro.verify.crosslevel import DeploymentVerifier, VerificationInput
from repro.verify.solver import DEFAULT_BUDGET
from repro.verify.verdicts import (
    CheckResult,
    ProofTrace,
    Verdict,
    VerificationReport,
)

__all__ = [
    "VerdictCache",
    "IncrementalVerifier",
    "result_to_dict",
    "result_from_dict",
]

#: Bump when unit-key composition or the payload schema changes; a cache
#: written by an older layout is discarded wholesale instead of misread.
#: 2: functional dependencies joined the environment token.
CACHE_FORMAT = 2


# ---------------------------------------------------------------------------
# CheckResult <-> JSON (full-fidelity round trip for the disk cache)
# ---------------------------------------------------------------------------


def result_to_dict(result: CheckResult) -> dict[str, Any]:
    """Serialize one :class:`CheckResult` for the verdict cache.

    Unlike ``CheckResult.to_dict()`` (a rendering projection), this is a
    round-trip encoding: :func:`result_from_dict` rebuilds an equal object.
    Date values inside counterexample rows normalize to ISO strings — the
    one lossy corner, and it only affects the witness row's display form.
    """
    out: dict[str, Any] = {
        "code": result.code,
        "location": result.location,
        "claim": result.claim,
        "verdict": result.verdict.value,
        "message": result.message,
        "fix_hint": result.fix_hint,
    }
    if result.trace is not None:
        out["trace"] = result.trace.to_dict()
    if result.counterexample is not None:
        out["counterexample"] = result.counterexample.to_dict()
    return out


def result_from_dict(data: dict[str, Any]) -> CheckResult:
    """Rebuild a :class:`CheckResult` written by :func:`result_to_dict`."""
    trace = None
    if "trace" in data:
        t = data["trace"]
        trace = ProofTrace(
            steps=tuple(t["steps"]),
            evaluations=t["evaluations"],
            domain_size=t["domain_size"],
        )
    counterexample = None
    if "counterexample" in data:
        c = data["counterexample"]
        counterexample = Counterexample(
            relation=c["relation"],
            row=dict(c["row"]),
            replay=ReplayOutcome(
                confirmed=c["replay"]["confirmed"],
                delivered_rows=c["replay"]["delivered_rows"],
                detail=c["replay"]["detail"],
            ),
        )
    return CheckResult(
        code=data["code"],
        location=data["location"],
        claim=data["claim"],
        verdict=Verdict(data["verdict"]),
        message=data.get("message", ""),
        trace=trace,
        counterexample=counterexample,
        fix_hint=data.get("fix_hint", ""),
    )


# ---------------------------------------------------------------------------
# The verdict cache
# ---------------------------------------------------------------------------


@dataclass
class _Unit:
    """One cached unit: its results plus the report-coverage increment."""

    results: tuple[CheckResult, ...]
    covered: int = 0


class VerdictCache:
    """Digest-keyed store of per-unit verification results.

    Keys are SHA-256 digests of the full value-based unit token, so *any*
    relevant input change produces a different key — stale entries are
    simply never looked up again (and age out of the JSON file only via
    :meth:`save`'s rewrite; the file holds at most the units of the runs
    that wrote it plus what they reused).
    """

    def __init__(self) -> None:
        self._entries: dict[str, _Unit] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> _Unit | None:
        unit = self._entries.get(key)
        if unit is None:
            self.misses += 1
        else:
            self.hits += 1
        return unit

    def put(self, key: str, unit: _Unit) -> None:
        self._entries[key] = unit

    def stats(self) -> str:
        total = self.hits + self.misses
        return (
            f"verdict cache: {self.hits}/{total} units reused, "
            f"{self.misses} re-proved, {len(self._entries)} stored"
        )

    # -- persistence --------------------------------------------------------

    def to_json(self) -> str:
        entries = {
            key: {
                "covered": unit.covered,
                "results": [result_to_dict(r) for r in unit.results],
            }
            for key, unit in self._entries.items()
        }
        return json.dumps(
            {"format": CACHE_FORMAT, "entries": entries}, default=str
        )

    @classmethod
    def from_json(cls, text: str) -> "VerdictCache":
        cache = cls()
        data = json.loads(text)
        if data.get("format") != CACHE_FORMAT:
            return cache  # unknown layout: start cold rather than misread
        for key, entry in data["entries"].items():
            cache._entries[key] = _Unit(
                results=tuple(
                    result_from_dict(r) for r in entry["results"]
                ),
                covered=entry["covered"],
            )
        return cache

    @classmethod
    def load(cls, path: str) -> "VerdictCache":
        """Load from ``path``; a missing or corrupt file starts cold."""
        if not os.path.exists(path):
            return cls()
        try:
            with open(path, encoding="utf-8") as fh:
                return cls.from_json(fh.read())
        except (OSError, ValueError, KeyError, TypeError):
            return cls()

    def save(self, path: str) -> None:
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
        os.replace(tmp, path)


# ---------------------------------------------------------------------------
# Unit tokens
# ---------------------------------------------------------------------------


def _pla_token(pla: PLA) -> tuple:
    return (
        pla.name,
        pla.version,
        pla.status.value,
        pla.target,
        tuple(a.describe() for a in pla.annotations),
    )


def _chain_token(catalog: Catalog, query: Query) -> tuple:
    """Fingerprints of every relation the query transitively reads.

    Views contribute their normalized query fingerprint (a view
    redefinition anywhere in the chain changes the token); base tables
    contribute only their schema — row data is irrelevant because replay
    synthesizes its own instance.
    """
    seen: dict[str, tuple] = {}
    stack = list(query.referenced_relations())
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        if catalog.is_view(name):
            view_query = catalog.view(name).query
            seen[name] = ("view", view_query.fingerprint())
            stack.extend(view_query.referenced_relations())
        elif catalog.is_table(name):
            seen[name] = ("table", tuple(catalog.table(name).schema.names))
        else:
            seen[name] = ("missing",)
    return tuple(sorted(seen.items()))


def _digest(token: Any) -> str:
    payload = json.dumps(token, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# The incremental verifier
# ---------------------------------------------------------------------------


@dataclass
class IncrementalVerifier:
    """Cross-level verification that re-proves only changed units.

    Produces a :class:`VerificationReport` identical to
    ``DeploymentVerifier(target, budget=..., replay=...).verify()`` — same
    results in the same order, same coverage — while fetching unchanged
    units from ``cache``. Pass a cache loaded via :meth:`VerdictCache.load`
    to stay warm across processes.
    """

    target: VerificationInput
    budget: int = DEFAULT_BUDGET
    replay: bool = True
    cache: VerdictCache = field(default_factory=VerdictCache)

    def verify(self) -> VerificationReport:
        inner = DeploymentVerifier(
            self.target, budget=self.budget, replay=self.replay
        )
        report = VerificationReport()
        # Meta-report tokens repeat across every report they cover; memoize
        # per run (identity-keyed: definitions are not mutated mid-run).
        self._mr_memo: dict[int, tuple] = {}
        env = self._env_token()
        n_metareports = 0
        for metareport in self.target.metareports:
            if not metareport.approved:
                continue
            n_metareports += 1
            key = _digest(
                ("metareport-unit", env, self._metareport_token(metareport))
            )
            unit = self.cache.get(key)
            if unit is None:
                unit = _Unit(tuple(inner.metareport_results(metareport)))
                self.cache.put(key, unit)
            for result in unit.results:
                report.add(result)
        n_reports = 0
        for definition in self.target.reports:
            key = _digest(
                ("report-unit", env, self._report_token(definition))
            )
            unit = self.cache.get(key)
            if unit is None:
                results, covered = inner.report_results(definition)
                unit = _Unit(tuple(results), covered)
                self.cache.put(key, unit)
            n_reports += unit.covered
            for result in unit.results:
                report.add(result)
        report.coverage = {
            "metareports": n_metareports,
            "reports": n_reports,
            "source_policies": len(self.target.source_policies),
        }
        return report

    # -- token composition ---------------------------------------------------

    def _env_token(self) -> tuple:
        return (
            tuple(
                (p.name, p.relation, str(p.predicate))
                for p in self.target.source_policies
            ),
            # FD mappings condition VER002 proofs and replay, so they are
            # environment: a changed dimension (new/renamed pairs) must
            # re-prove everything, exactly like a changed source policy.
            tuple(fd.describe() for fd in self.target.fds),
            self.target.universe,
            self.target.universe_columns,
            self.budget,
            self.replay,
        )

    def _metareport_token(self, metareport: MetaReport) -> tuple:
        """Everything a meta-report unit's verdicts are a function of."""
        memo = getattr(self, "_mr_memo", None)
        if memo is not None:
            cached = memo.get(id(metareport))
            if cached is not None:
                return cached
        token = self._metareport_token_uncached(metareport)
        if memo is not None:
            memo[id(metareport)] = token
        return token

    def _metareport_token_uncached(self, metareport: MetaReport) -> tuple:
        catalog = self.target.catalog
        if catalog.is_view(metareport.name):
            runtime_query = catalog.view(metareport.name).query
            runtime_fp = runtime_query.fingerprint()
        else:
            runtime_query = metareport.query
            runtime_fp = None
        assert metareport.pla is not None  # units are approved by contract
        return (
            metareport.name,
            metareport.query.fingerprint(),
            runtime_fp,
            _chain_token(catalog, runtime_query),
            _pla_token(metareport.pla),
        )

    def _report_token(self, definition: ReportDefinition) -> tuple:
        """Report verdicts also pivot on which meta-report covers them *now*.

        ``find_covering`` re-resolves every run (containment proofs are
        memoized elsewhere, so this stays cheap); a PLA revision or
        meta-report redefinition flows into this token through the covering
        meta-report's own token.
        """
        covering, _attempts = self.target.metareports.find_covering(
            definition, self.target.catalog
        )
        return (
            definition.name,
            definition.version,
            definition.query.fingerprint(),
            _chain_token(self.target.catalog, definition.query),
            None if covering is None else self._metareport_token(covering),
        )
