"""The Fig 5 cross-level consistency pass: prove the PLA continuum ordering.

The paper's four-level continuum (source → warehouse → meta-report →
report) is only a guarantee if the levels actually agree. This pass proves,
statically, per deployment:

* **VER001** — every catalog report draws rows only from the region its
  covering meta-report's *approved* definition admits. The premise is the
  report's *runtime* region (the catalog view chain actually executed,
  conjoined with the covering PLA's row restrictions), so silent drift
  between the registered view and the approved artifact is exactly what
  gets caught.
* **VER002** — every meta-report's runtime region is consistent with the
  source/warehouse policies below it (VPD-style row predicates, consent
  deny rules): no row a source excludes can surface through the view.
* **VER003/VER004** — every PLA visibility condition is satisfiable (it
  does not suppress everything) and falsifiable (it is not a tautology
  that suppresses nothing).
* **VER005** — every meta-report's runtime region is nonempty; an empty
  region makes all compliance over it vacuous.

Refuted escape claims (VER001/VER002) ship a synthesized one-row database
instance replayed through the production enforcement path
(:mod:`repro.verify.counterexample`); a replay that fails to reproduce the
violation raises **VER006** (static/runtime drift) instead of being
silently trusted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.core.annotations import IntensionalCondition
from repro.core.containment import NotConjunctive
from repro.core.metareport import MetaReport, MetaReportSet, effective_region
from repro.core.pla import PLA, PlaLevel, PlaRegistry
from repro.relational.catalog import Catalog
from repro.relational.expressions import And, Expr, Not
from repro.relational.query import Query
from repro.reports.definition import ReportDefinition
from repro.verify.counterexample import Counterexample, replay_escape
from repro.verify.fd import (
    FunctionalDependency,
    complete_row,
    fds_from_star,
    violated_fd,
)
from repro.verify.solver import (
    DEFAULT_BUDGET,
    Sat,
    SolverResult,
    falsifiable,
    implication_counterexample,
    satisfiable,
)
from repro.verify.verdicts import (
    CheckResult,
    ProofTrace,
    Verdict,
    VerificationReport,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.persistence.store import Deployment
    from repro.simulation.scenario import Scenario

__all__ = [
    "SourcePolicy",
    "VerificationInput",
    "DeploymentVerifier",
    "verify_scenario",
]


@dataclass(frozen=True)
class SourcePolicy:
    """A row-level policy imposed below the meta-report level.

    ``predicate`` describes the rows the owner allows to flow upward
    (VPD predicate / consent filter polarity: keep where true).
    """

    name: str
    relation: str
    predicate: Expr

    def describe(self) -> str:
        return f"{self.name} on {self.relation}: keep where {self.predicate}"


@dataclass
class VerificationInput:
    """Everything one cross-level verification run reasons over."""

    catalog: Catalog
    metareports: MetaReportSet
    reports: Sequence[ReportDefinition]
    universe: str
    universe_columns: tuple[str, ...]
    plas: PlaRegistry | None = None
    source_policies: tuple[SourcePolicy, ...] = ()
    #: Declared functional dependencies over the universe's columns
    #: (usually derived from the warehouse star dimensions). Conjoined
    #: into VER002 premises when needed; replay rejects witnesses that
    #: violate them. Part of the incremental environment state token.
    fds: tuple[FunctionalDependency, ...] = ()

    @classmethod
    def from_scenario(cls, scenario: "Scenario") -> "VerificationInput":
        """Verification input for a built Fig 1 scenario.

        Source policies are projected from approved source/warehouse-level
        PLAs *and* from provider-side intensional deny-row associations
        (the Fig 2 consent machinery), so source enforcement configured at
        the provider shows up in the cross-level proof.
        """
        policies = list(
            _policies_from_registry(scenario.pla_registry)
        )
        for provider_name in sorted(scenario.providers):
            provider = scenario.providers[provider_name]
            for assoc in provider.metadata.associations:
                if assoc.metadata.get("deny_row"):
                    policies.append(
                        SourcePolicy(
                            name=assoc.name,
                            relation=assoc.table,
                            predicate=Not(assoc.condition),
                        )
                    )
        return cls(
            catalog=scenario.bi_catalog,
            metareports=scenario.metareports,
            reports=tuple(scenario.report_catalog.all_current()),
            universe=scenario.universe_name,
            universe_columns=tuple(scenario.wide_columns),
            plas=scenario.pla_registry,
            source_policies=tuple(policies),
            fds=fds_from_star(scenario.star),
        )

    @classmethod
    def from_deployment(cls, deployment: "Deployment") -> "VerificationInput":
        """Verification input for a deployment loaded from disk."""
        metareports = list(deployment.metareports)
        if not metareports:
            raise NotConjunctive("deployment has no meta-reports to verify")
        universe = metareports[0].query.source
        return cls(
            catalog=deployment.catalog,
            metareports=deployment.metareports,
            reports=tuple(deployment.reports.all_current()),
            universe=universe,
            universe_columns=_columns_of(deployment.catalog, universe),
            plas=deployment.plas,
            source_policies=tuple(_policies_from_registry(deployment.plas)),
        )


def _policies_from_registry(registry: PlaRegistry) -> Iterator[SourcePolicy]:
    for level in (PlaLevel.SOURCE, PlaLevel.WAREHOUSE):
        for pla in registry.approved_at_level(level):
            restriction = pla.row_restriction()
            if restriction is not None:
                yield SourcePolicy(
                    name=pla.name, relation=pla.target, predicate=restriction
                )


def _policy_applies(policy: SourcePolicy, bases: frozenset[str]) -> bool:
    """Does a source policy's relation feed any of these base tables?

    Matches the exact base name, a warehouse staging alias (``dwh_<name>``),
    a star-schema fact alias (``fact_<name>``), or a provider-qualified
    identity (``.../<name>``) — the naming conventions a source table can
    surface under along the Fig 1 flow.
    """
    for base in bases:
        if base == policy.relation:
            return True
        if base in (f"dwh_{policy.relation}", f"fact_{policy.relation}"):
            return True
        if base.endswith(f"/{policy.relation}"):
            return True
    return False


def _columns_of(catalog: Catalog, relation: str) -> tuple[str, ...]:
    if catalog.is_table(relation):
        return tuple(catalog.table(relation).schema.names)
    query = catalog.view(relation).query
    names = query.output_names()
    if names is not None:
        return names
    out: list[str] = []
    for referenced in query.referenced_relations():
        out.extend(_columns_of(catalog, referenced))
    return tuple(out)


def _trace(result: SolverResult, *steps: str) -> ProofTrace:
    return ProofTrace(
        steps=tuple(steps) + ((result.reason,) if result.reason else ()),
        evaluations=result.evaluations,
        domain_size=result.domain_size,
    )


@dataclass
class DeploymentVerifier:
    """Runs the full cross-level pass over one deployment's state."""

    target: VerificationInput
    budget: int = DEFAULT_BUDGET
    replay: bool = True
    _report: VerificationReport = field(default_factory=VerificationReport)

    def verify(self) -> VerificationReport:
        self._report = VerificationReport()
        n_metareports = 0
        for metareport in self.target.metareports:
            if not metareport.approved:
                continue
            n_metareports += 1
            self._verify_metareport(metareport)
        n_reports = 0
        for definition in self.target.reports:
            n_reports += self._verify_report(definition)
        self._report.coverage = {
            "metareports": n_metareports,
            "reports": n_reports,
            "source_policies": len(self.target.source_policies),
        }
        return self._report

    # -- unit entry points (incremental re-verification) ---------------------

    def metareport_results(self, metareport: MetaReport) -> list[CheckResult]:
        """All check results of one approved meta-report, in emission order.

        The unit boundary :mod:`repro.verify.incremental` caches on: the
        results depend only on this meta-report's definition/view chain, its
        PLA, and the verifier environment (source policies, universe,
        budget, replay) — never on which other units ran.
        """
        saved = self._report
        self._report = VerificationReport()
        try:
            self._verify_metareport(metareport)
            return list(self._report.results)
        finally:
            self._report = saved

    def report_results(
        self, definition: ReportDefinition
    ) -> tuple[list[CheckResult], int]:
        """Check results of one report plus its covering count (0 or 1)."""
        saved = self._report
        self._report = VerificationReport()
        try:
            covered = self._verify_report(definition)
            return list(self._report.results), covered
        finally:
            self._report = saved

    # -- meta-report level ---------------------------------------------------

    def _verify_metareport(self, metareport: MetaReport) -> None:
        location = f"metareport:{metareport.name}"
        pla = metareport.pla
        assert pla is not None  # guarded by .approved
        self._check_conditions(pla, location)
        region, region_error = self._runtime_region(metareport)
        if region_error is not None:
            self._report.add(
                CheckResult(
                    code="VER005",
                    location=location,
                    claim=f"meta-report {metareport.name!r} region is decidable",
                    verdict=Verdict.UNKNOWN,
                    message=region_error,
                )
            )
            return
        self._check_nonempty(metareport, region, location)
        self._check_source_policies(metareport, region, location)

    def _runtime_region(
        self, metareport: MetaReport
    ) -> tuple[Expr | None, str | None]:
        """Runtime region of a meta-report: catalog view chain ∧ PLA rows."""
        if self.target.catalog.is_view(metareport.name):
            query = self.target.catalog.view(metareport.name).query
        else:
            query = metareport.query
        try:
            region = effective_region(
                query, self.target.catalog, universe=self.target.universe
            )
        except NotConjunctive as exc:
            return None, str(exc)
        assert metareport.pla is not None
        restriction = metareport.pla.row_restriction()
        if restriction is not None:
            region = restriction if region is None else And(region, restriction)
        return region, None

    def _check_conditions(self, pla: PLA, location: str) -> None:
        for annotation in pla.annotations:
            if not isinstance(annotation, IntensionalCondition):
                continue
            sat = satisfiable(annotation.condition, budget=self.budget)
            self._report.add(
                CheckResult(
                    code="VER003",
                    location=location,
                    claim=(
                        f"visibility condition on {annotation.attribute!r} "
                        f"({annotation.condition}) admits at least one row"
                    ),
                    verdict=_verdict_from(sat, refute_on=Sat.UNSAT),
                    message=(
                        "the condition is provably unsatisfiable; it "
                        "suppresses every row"
                        if sat.status is Sat.UNSAT
                        else ""
                    ),
                    trace=_trace(sat, f"SAT({annotation.condition})"),
                    fix_hint=(
                        "restate the condition; as written the rule blanks "
                        "the whole view"
                        if sat.status is Sat.UNSAT
                        else ""
                    ),
                )
            )
            fals = falsifiable(annotation.condition, budget=self.budget)
            self._report.add(
                CheckResult(
                    code="VER004",
                    location=location,
                    claim=(
                        f"visibility condition on {annotation.attribute!r} "
                        f"({annotation.condition}) can actually suppress a row"
                    ),
                    verdict=_verdict_from(fals, refute_on=Sat.UNSAT),
                    message=(
                        "the condition is provably a tautology; it never "
                        "suppresses anything"
                        if fals.status is Sat.UNSAT
                        else ""
                    ),
                    trace=_trace(fals, f"FALSIFIABLE({annotation.condition})"),
                    fix_hint=(
                        "state the actual restriction, or drop the rule"
                        if fals.status is Sat.UNSAT
                        else ""
                    ),
                )
            )

    def _check_nonempty(
        self, metareport: MetaReport, region: Expr | None, location: str
    ) -> None:
        sat = satisfiable(region, budget=self.budget)
        self._report.add(
            CheckResult(
                code="VER005",
                location=location,
                claim=(
                    f"meta-report {metareport.name!r} runtime region admits "
                    "at least one row"
                ),
                verdict=_verdict_from(sat, refute_on=Sat.UNSAT),
                message=(
                    "the region (view filters ∧ PLA row restrictions) is "
                    "provably empty; every report over it is vacuous"
                    if sat.status is Sat.UNSAT
                    else ""
                ),
                trace=_trace(sat, f"SAT({region})"),
            )
        )

    def _check_source_policies(
        self, metareport: MetaReport, region: Expr | None, location: str
    ) -> None:
        bases = self._bases_of(metareport)
        applicable = [
            p
            for p in self.target.source_policies
            if _policy_applies(p, bases)
        ]
        universe_cols = set(self.target.universe_columns)
        for policy in applicable:
            claim = (
                f"meta-report {metareport.name!r} region implies source "
                f"policy {policy.name!r} ({policy.predicate})"
            )
            if not set(policy.predicate.columns()) <= universe_cols:
                self._report.add(
                    CheckResult(
                        code="VER002",
                        location=location,
                        claim=claim,
                        verdict=Verdict.UNKNOWN,
                        message=(
                            "policy predicate uses columns outside the "
                            "warehouse universe vocabulary"
                        ),
                    )
                )
                continue
            result = implication_counterexample(
                region, policy.predicate, budget=self.budget
            )
            fds = self._applicable_fds(region, policy.predicate)
            fd_steps: tuple[str, ...] = ()
            if fds and self._needs_fds(result, fds):
                # Undecided, or refuted only by a row the warehouse cannot
                # contain: re-prove under the declared dependencies. A
                # plain proof/consistent refutation never takes this path,
                # so FD-free verdicts are byte-identical to before.
                premise = region
                for fd in fds:
                    premise = (
                        fd.predicate()
                        if premise is None
                        else And(premise, fd.predicate())
                    )
                fd_steps = tuple(
                    f"ASSUME({fd.describe_short()}) [{fd.source or 'declared'}]"
                    for fd in fds
                )
                result = implication_counterexample(
                    premise, policy.predicate, budget=self.budget
                )
            check = CheckResult(
                code="VER002",
                location=location,
                claim=claim,
                verdict=_verdict_from(result, refute_on=Sat.SAT),
                message=(
                    f"row {result.witness} flows through the meta-report but "
                    f"violates {policy.name!r}"
                    if result.status is Sat.SAT
                    else ""
                ),
                trace=_trace(
                    result,
                    *fd_steps,
                    f"IMPLIES({region} ⇒ {policy.predicate})",
                ),
                counterexample=self._synthesize(
                    metareport, result, policy.predicate, fds=fds
                ),
                fix_hint=(
                    "narrow the meta-report view (or its PLA) to the source "
                    "policy's region"
                    if result.status is Sat.SAT
                    else ""
                ),
            )
            self._report.add(check)
            self._check_replay_drift(check, location)
        if not applicable:
            self._report.add(
                CheckResult(
                    code="VER002",
                    location=location,
                    claim=(
                        f"meta-report {metareport.name!r} region is "
                        "consistent with all applicable source policies "
                        "(0 applicable)"
                    ),
                    verdict=Verdict.PROVED,
                )
            )

    def _applicable_fds(
        self, region: Expr | None, conclusion: Expr
    ) -> tuple[FunctionalDependency, ...]:
        """Declared FDs that can bear on one implication claim.

        An FD applies when both its columns belong to the universe
        vocabulary and at least one of them is mentioned by the claim —
        anything else could only inflate the solver's domains.
        """
        universe_cols = set(self.target.universe_columns)
        claim_cols = set(conclusion.columns())
        if region is not None:
            claim_cols |= set(region.columns())
        return tuple(
            fd
            for fd in self.target.fds
            if set(fd.columns()) <= universe_cols
            and set(fd.columns()) & claim_cols
        )

    @staticmethod
    def _needs_fds(
        result: SolverResult, fds: Sequence[FunctionalDependency]
    ) -> bool:
        """Should the implication be re-proved under the declared FDs?

        Yes when the FD-free pass was undecided, or when its refuting
        witness violates a declared dependency (the "counterexample" is a
        row no real warehouse instance contains). A clean proof or an
        FD-respecting refutation stands as-is — conjoining FDs could only
        re-derive it at higher cost.
        """
        if result.status is Sat.UNKNOWN:
            return True
        return (
            result.status is Sat.SAT
            and result.witness is not None
            and violated_fd(result.witness, fds) is not None
        )

    def _bases_of(self, metareport: MetaReport) -> frozenset[str]:
        catalog = self.target.catalog
        if metareport.name in catalog:
            return catalog.base_relations(metareport.name)
        return catalog.base_relations_of_query(metareport.query)

    # -- report level --------------------------------------------------------

    def _verify_report(self, definition: ReportDefinition) -> int:
        """VER001 for one report; returns 1 when a covering proof was run."""
        covering, _attempts = self.target.metareports.find_covering(
            definition, self.target.catalog
        )
        if covering is None:
            return 0  # RPT001 (lint) owns the no-covering case
        location = f"report:{definition.name}"
        assert covering.pla is not None
        claim = (
            f"report {definition.name!r} stays inside the approved region "
            f"of meta-report {covering.name!r}"
        )
        try:
            premise = effective_region(
                definition.query, self.target.catalog, universe=self.target.universe
            )
            conclusion = effective_region(
                covering.query, self.target.catalog, universe=self.target.universe
            )
        except NotConjunctive as exc:
            self._report.add(
                CheckResult(
                    code="VER001",
                    location=location,
                    claim=claim,
                    verdict=Verdict.UNKNOWN,
                    message=str(exc),
                )
            )
            return 1
        restriction = covering.pla.row_restriction()
        if restriction is not None:
            premise = (
                restriction if premise is None else And(premise, restriction)
            )
        result = implication_counterexample(
            premise, conclusion, budget=self.budget
        )
        counterexample = None
        if result.status is Sat.SAT and conclusion is not None:
            counterexample = self._synthesize_for_query(
                definition.query, covering, result, conclusion
            )
        check = CheckResult(
            code="VER001",
            location=location,
            claim=claim,
            verdict=_verdict_from(result, refute_on=Sat.SAT),
            message=(
                f"row {result.witness} is deliverable by the report but lies "
                f"outside the approved region ({conclusion})"
                if result.status is Sat.SAT
                else ""
            ),
            trace=_trace(result, f"IMPLIES({premise} ⇒ {conclusion})"),
            counterexample=counterexample,
            fix_hint=(
                "re-register the meta-report view from its approved "
                "definition, or re-elicit the PLA for the wider region"
                if result.status is Sat.SAT
                else ""
            ),
        )
        self._report.add(check)
        self._check_replay_drift(check, location)
        return 1

    # -- counterexample plumbing --------------------------------------------

    def _full_row(self, witness: dict[str, Any]) -> dict[str, Any]:
        row: dict[str, Any] = {
            name: None for name in self.target.universe_columns
        }
        row.update(
            {k: v for k, v in witness.items() if k in row or not row}
        )
        return row

    def _synthesize(
        self,
        metareport: MetaReport,
        result: SolverResult,
        target_predicate: Expr,
        fds: tuple[FunctionalDependency, ...] = (),
    ) -> Counterexample | None:
        if result.status is not Sat.SAT or result.witness is None:
            return None
        query = (
            self.target.catalog.view(metareport.name).query
            if self.target.catalog.is_view(metareport.name)
            else metareport.query
        )
        return self._synthesize_for_query(
            query, metareport, result, target_predicate, fds=fds
        )

    def _synthesize_for_query(
        self,
        query: Query,
        covering: MetaReport,
        result: SolverResult,
        target_predicate: Expr,
        fds: tuple[FunctionalDependency, ...] = (),
    ) -> Counterexample | None:
        if result.status is not Sat.SAT or result.witness is None:
            return None
        row = self._full_row(result.witness)
        if fds:
            # NULL-padding a column the witness never mentioned must not
            # fabricate an FD-violating pair; complete it from the mapping
            # its bound partner selects.
            row = complete_row(row, result.witness, fds)
        assert covering.pla is not None
        conditions = [
            a
            for a in covering.pla.annotations
            if isinstance(a, IntensionalCondition) and a.action == "suppress_row"
        ]
        if self.replay:
            outcome = replay_escape(
                self.target.catalog,
                self.target.universe,
                row,
                query,
                conditions,
                target_predicate,
                fds=fds,
            )
        else:
            from repro.verify.counterexample import ReplayOutcome

            outcome = ReplayOutcome(confirmed=False, detail="replay disabled")
        return Counterexample(
            relation=self.target.universe, row=row, replay=outcome
        )

    def _check_replay_drift(self, check: CheckResult, location: str) -> None:
        """A refutation the runtime does not reproduce is its own finding."""
        if not self.replay or check.verdict is not Verdict.REFUTED:
            return
        ce = check.counterexample
        if ce is not None and not ce.replay.confirmed:
            self._report.add(
                CheckResult(
                    code="VER006",
                    location=location,
                    claim=(
                        f"runtime replay reproduces the {check.code} "
                        "refutation"
                    ),
                    verdict=Verdict.REFUTED,
                    message=(
                        "the synthesized counterexample did not reproduce "
                        f"at runtime: {ce.replay.detail}; the static layer "
                        "and the engine disagree"
                    ),
                    fix_hint=(
                        "inspect the enforcement path for semantics the "
                        "verifier does not model"
                    ),
                )
            )


def _verdict_from(result: SolverResult, *, refute_on: Sat) -> Verdict:
    if result.status is Sat.UNKNOWN:
        return Verdict.UNKNOWN
    return Verdict.REFUTED if result.status is refute_on else Verdict.PROVED


def verify_scenario(scenario: "Scenario", **kwargs: Any) -> VerificationReport:
    """One-call cross-level verification of a built scenario."""
    return DeploymentVerifier(
        VerificationInput.from_scenario(scenario), **kwargs
    ).verify()
