"""Functional dependencies between wide-view attributes, for the verifier.

A star dimension stores one row per distinct attribute combination, and
every wide-view row draws its dimension attributes from exactly one such
row. Two consequences the solver can exploit when proving a Fig 5
implication (VER002):

* attribute values are confined to the combinations the dimension
  actually holds (a finite domain), and
* when one level determines another in the dimension data — ``drug →
  disease``, ``patient → zip`` — every real warehouse row respects that
  mapping, so an implication that fails only on mapping-violating rows
  still holds for every row the deployment can deliver.

:class:`FunctionalDependency` captures one such determinant → dependent
mapping as an explicit finite pair set, and :func:`fds_from_star` derives
them from a warehouse star (fine → coarse level pairs whose data is
actually functional). The verifier conjoins applicable FDs into the
premise of an implication and records their provenance in the proof
trace.

**Soundness contract.** An FD-conditioned verdict is relative to the
declared mappings: it certifies the implication *for every row that
respects the FDs*, which is every row the current dimension content can
produce. The mappings therefore enter the incremental verifier's
environment state token (changing a dimension re-proves everything), and
counterexample replay rejects any witness violating a declared FD — such
a witness describes a row the warehouse cannot contain, so it refutes
nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.relational.expressions import And, Col, Comparison, Expr, IsNull, Lit, Or
from repro.warehouse.star import StarSchema

__all__ = [
    "FunctionalDependency",
    "fds_from_star",
    "violated_fd",
]

#: Default cap on mapping pairs per derived FD; past it the dependency is
#: dropped rather than encoded (a huge Or-of-And would blow the solver's
#: DNF/enumeration budgets for no proof value).
MAX_FD_PAIRS = 32


@dataclass(frozen=True)
class FunctionalDependency:
    """``determinant → dependent`` with its explicit finite pair set.

    ``mapping`` holds every (determinant value, dependent value) pair the
    dependency admits; ``None`` entries model NULL attribute values. The
    pair set doubles as a finite-domain constraint on the determinant.
    """

    name: str
    determinant: str
    dependent: str
    mapping: tuple[tuple[Any, Any], ...]
    source: str = ""

    def __post_init__(self) -> None:
        if not self.mapping:
            raise ValueError(f"FD {self.name!r} has an empty mapping")

    def columns(self) -> frozenset[str]:
        return frozenset({self.determinant, self.dependent})

    def predicate(self) -> Expr:
        """The FD as an exact 3VL predicate over its two columns.

        One disjunct per admitted pair; NULL pair members become
        ``IS NULL`` atoms so the encoding is definite (never UNKNOWN) on
        exactly the rows the mapping admits.
        """
        expr: Expr | None = None
        for det_value, dep_value in self.mapping:
            branch: Expr = And(
                _match(self.determinant, det_value),
                _match(self.dependent, dep_value),
            )
            expr = branch if expr is None else Or(expr, branch)
        assert expr is not None  # __post_init__ rejects empty mappings
        return expr

    def holds(self, row: Mapping[str, Any]) -> bool:
        """Can a (possibly partial) witness row respect this dependency?

        A column missing from the row is existentially quantified: the
        row holds iff *some* admitted pair extends it. With both columns
        bound this is exact pair membership; with one bound it checks the
        value occurs in the mapping at all (an unmapped value describes a
        row the dimension cannot produce).
        """
        det_bound = self.determinant in row
        dep_bound = self.dependent in row
        if not det_bound and not dep_bound:
            return True
        if det_bound and dep_bound:
            pair = (row[self.determinant], row[self.dependent])
            return any(pair == admitted for admitted in self.mapping)
        if det_bound:
            value = row[self.determinant]
            return any(det == value for det, _ in self.mapping)
        value = row[self.dependent]
        return any(dep == value for _, dep in self.mapping)

    def describe(self) -> str:
        """Stable value-identity string (state tokens, provenance)."""
        pairs = ", ".join(
            f"{det!r}->{dep!r}" for det, dep in self.mapping
        )
        return (
            f"fd {self.name}: {self.determinant} -> {self.dependent} "
            f"[{pairs}] ({self.source or 'declared'})"
        )

    def describe_short(self) -> str:
        return (
            f"{self.name}: {self.determinant} -> {self.dependent} "
            f"({len(self.mapping)} pairs)"
        )


def _match(column: str, value: Any) -> Expr:
    if value is None:
        return IsNull(Col(column))
    return Comparison("=", Col(column), Lit(value))


def violated_fd(
    row: Mapping[str, Any], fds: Iterable[FunctionalDependency]
) -> FunctionalDependency | None:
    """First declared FD the row violates, or ``None``."""
    for fd in fds:
        if not fd.holds(row):
            return fd
    return None


def complete_row(
    row: dict[str, Any],
    bound: Mapping[str, Any],
    fds: Iterable[FunctionalDependency],
) -> dict[str, Any]:
    """Fill FD columns a partial witness left open with admitted values.

    ``row`` is the NULL-padded full universe row, ``bound`` the columns
    the solver actually pinned. A column the witness never mentioned is a
    *don't-care*, but leaving it NULL could fabricate a pair no dimension
    row admits — so each open FD column is completed from the mapping
    entry its bound partner selects (in either direction), iterating so
    chained dependencies propagate. Columns with no admitted extension
    are left untouched; :func:`violated_fd` then reports them honestly.
    """
    fd_list = tuple(fds)
    out = dict(row)
    pinned = set(bound)
    for _ in range(max(1, len(fd_list))):
        progressed = False
        for fd in fd_list:
            det_bound = fd.determinant in pinned
            dep_bound = fd.dependent in pinned
            if det_bound and not dep_bound:
                value = out.get(fd.determinant)
                for det, dep in fd.mapping:
                    if det == value:
                        out[fd.dependent] = dep
                        pinned.add(fd.dependent)
                        progressed = True
                        break
            elif dep_bound and not det_bound:
                value = out.get(fd.dependent)
                for det, dep in fd.mapping:
                    if dep == value:
                        out[fd.determinant] = det
                        pinned.add(fd.determinant)
                        progressed = True
                        break
        if not progressed:
            break
    return out


def fds_from_star(
    star: StarSchema, *, max_pairs: int = MAX_FD_PAIRS
) -> tuple[FunctionalDependency, ...]:
    """Derive fine → coarse functional dependencies from a star's dimensions.

    For every dimension and every level pair (finer, coarser) whose data
    is actually functional — no determinant value maps to two dependent
    values — emit an FD carrying the observed pair set. Pairs are ordered
    deterministically so the FD's ``describe()`` (and hence the
    incremental state token) is stable across runs. Dependencies with
    more than ``max_pairs`` pairs are skipped: they would bloat the
    solver's domains without making new implications provable in budget.
    """
    out: list[FunctionalDependency] = []
    for dim in star.dimensions:
        levels = tuple(dim.levels)
        if len(levels) < 2:
            continue
        rows = list(dim.table.iter_dicts())
        for i, det in enumerate(levels):
            for dep in levels[i + 1 :]:
                mapping: dict[Any, Any] = {}
                functional = True
                for row in rows:
                    det_value, dep_value = row.get(det), row.get(dep)
                    if det_value in mapping:
                        if mapping[det_value] != dep_value:
                            functional = False
                            break
                    else:
                        mapping[det_value] = dep_value
                if not functional or not mapping or len(mapping) > max_pairs:
                    continue
                pairs = tuple(
                    sorted(mapping.items(), key=lambda kv: repr(kv[0]))
                )
                out.append(
                    FunctionalDependency(
                        name=f"{dim.table.name}.{det}->{dep}",
                        determinant=det,
                        dependent=dep,
                        mapping=pairs,
                        source=f"dimension {dim.name}",
                    )
                )
    return tuple(out)
