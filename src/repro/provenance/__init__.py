"""Provenance: why-lineage, where-provenance, and dataset-level DAGs."""

from repro.provenance.graph import DatasetNode, ProvenanceGraph, TransformNode
from repro.provenance.masks import (
    LeafContribution,
    MaskProvenance,
    mask_from_selector,
    pack_rows,
    unpack_rows,
)
from repro.provenance.lineage import (
    LineageTrace,
    base_footprint,
    rows_influenced_by,
    trace_row,
)
from repro.provenance.where import (
    CellOrigin,
    CellProvenance,
    classify_cell,
    where_of_cell,
)

__all__ = [
    "CellOrigin",
    "CellProvenance",
    "DatasetNode",
    "LeafContribution",
    "LineageTrace",
    "MaskProvenance",
    "ProvenanceGraph",
    "TransformNode",
    "mask_from_selector",
    "pack_rows",
    "unpack_rows",
    "base_footprint",
    "classify_cell",
    "rows_influenced_by",
    "trace_row",
    "where_of_cell",
]
