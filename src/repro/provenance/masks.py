"""Bitset provenance masks: compact lineage/where encoding for vector kernels.

The row and columnar engines carry one :class:`RowProvenance` object per
output row — a dict of frozensets of :class:`CellRef`. That is exact but
expensive: the object graph dominates both the memory and the wall time of
large scans. The vector fast path (:mod:`repro.relational.vector`) instead
records, per output row and per *leaf* base table, only **which leaf rows
contributed**, in one of two encodings:

* an **index vector** (``array('q')``) when at most one leaf row contributes
  per output row (scan/filter/project, hash joins) — ordinal ``-1`` means
  "no contribution";
* a **bitset mask** (a Python ``int``; bit *i* set ⇔ leaf row *i*
  contributed) when a whole set of rows collapses into one output row
  (GROUP BY / aggregation).

Because every engine-produced output column is copied (or computed) from
statically known leaf columns, the per-cell where-provenance of an output
row is fully determined by ``(contributing leaf rows, column origins)``:

    where[alias] = ⋃ {leaf.provenance[i].where_of(src)
                      | (leaf, src) ∈ origins(alias), i ∈ contributing(leaf)}

:class:`MaskProvenance` is the decode boundary: a lazy, immutable
``Sequence[RowProvenance]`` that reconstructs the exact object provenance on
access. ``Table``/``PlanCache`` recognize it via the ``lazy_provenance``
marker and never force a full decode on the hot path, so benchmarks measure
query execution, not provenance materialization. The differential suite
compares decoded provenance value-for-value against the row engine.
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence
from typing import Any, Iterable, Iterator

from repro.relational.table import RowProvenance

__all__ = [
    "pack_rows",
    "unpack_rows",
    "mask_from_selector",
    "LeafContribution",
    "MaskProvenance",
]

_EMPTY_REFS: frozenset = frozenset()
_union = frozenset().union

# byte value -> bit offsets set within that byte (little-endian bit order).
_BYTE_BITS: tuple[tuple[int, ...], ...] = tuple(
    tuple(b for b in range(8) if v >> b & 1) for v in range(256)
)

# selector byte (0/1) -> ASCII '0'/'1', for the int(s, 2) packing trick.
_SEL_TO_ASCII = bytes(
    (ord("1") if v == 1 else ord("0")) for v in range(256)
)


def pack_rows(ordinals: Iterable[int]) -> int:
    """Pack a set of row ordinals into a bitset mask (bit ``i`` ⇔ row ``i``)."""
    mask = 0
    for i in ordinals:
        mask |= 1 << i
    return mask


def unpack_rows(mask: int) -> list[int]:
    """Unpack a bitset mask back into its sorted row ordinals.

    Scans the mask bytewise (a 1M-row mask is a 125 KB int) instead of
    shifting the whole integer per set bit, so decoding stays linear.
    """
    if mask == 0:
        return []
    out: list[int] = []
    data = mask.to_bytes((mask.bit_length() + 7) // 8, "little")
    extend = out.extend
    for byte_i, value in enumerate(data):
        if value:
            base = byte_i << 3
            extend(base + b for b in _BYTE_BITS[value])
    return out


def mask_from_selector(selector: bytes) -> int:
    """Bitset mask from a 0/1 selector byte string (``selector[i]`` ⇔ row i).

    Uses C-level ``translate`` + binary ``int(..., 2)`` (power-of-two bases
    are exempt from the int/str conversion limit), so packing a million-row
    selector costs milliseconds rather than a Python-level loop.
    """
    if not selector:
        return 0
    return int(selector.translate(_SEL_TO_ASCII)[::-1], 2)


class LeafContribution:
    """Which rows of one leaf base table contribute to each output row.

    ``kind`` is ``"identity"`` (output row ``i`` ⇐ leaf row ``i``), ``"idx"``
    (``data[i]`` is the single contributing ordinal, ``-1`` for none) or
    ``"mask"`` (``data[i]`` is a bitset of contributing ordinals).
    """

    __slots__ = ("kind", "data")

    def __init__(self, kind: str, data: Any = None) -> None:
        if kind not in ("identity", "idx", "mask"):  # pragma: no cover
            raise ValueError(f"unknown contribution kind {kind!r}")
        self.kind = kind
        self.data = data

    @classmethod
    def identity(cls) -> "LeafContribution":
        return cls("identity")

    @classmethod
    def from_indices(cls, indices: "array") -> "LeafContribution":
        return cls("idx", indices)

    @classmethod
    def from_masks(cls, masks: list[int]) -> "LeafContribution":
        return cls("mask", masks)

    def ordinals(self, i: int) -> list[int]:
        """Contributing leaf ordinals of output row ``i``."""
        if self.kind == "identity":
            return [i]
        if self.kind == "idx":
            o = self.data[i]
            return [o] if o >= 0 else []
        return unpack_rows(self.data[i])

    def gathered(self, indices: Sequence[int]) -> "LeafContribution":
        """This contribution re-indexed by an output-row gather."""
        if self.kind == "identity":
            return LeafContribution("idx", array("q", indices))
        if self.kind == "idx":
            data = self.data
            return LeafContribution("idx", array("q", [data[i] for i in indices]))
        data = self.data
        return LeafContribution("mask", [data[i] for i in indices])


class MaskProvenance(Sequence):
    """Lazy per-row provenance decoded from per-leaf contribution masks.

    Immutable and shareable: operators and caches may alias it freely.
    Decoding row ``i`` reproduces the exact :class:`RowProvenance` the
    reference engine would have built (same lineage frozenset, same where
    dict with the same key set).
    """

    #: Marker consumed by ``Table.derived`` / ``PlanCache.commit`` so lazy
    #: sequences are stored as-is instead of being materialized.
    lazy_provenance = True

    __slots__ = ("n", "leaves", "contribs", "origins")

    def __init__(
        self,
        n: int,
        leaves: tuple[Sequence[RowProvenance], ...],
        contribs: tuple[LeafContribution, ...],
        origins: tuple[tuple[str, tuple[tuple[int, str], ...]], ...],
    ) -> None:
        if len(leaves) != len(contribs):  # pragma: no cover - internal
            raise ValueError("one contribution per leaf required")
        self.n = n
        self.leaves = leaves
        self.contribs = contribs
        #: per output alias: ((leaf_index, source_column), ...)
        self.origins = origins

    # -- decoding -----------------------------------------------------------

    def _decode(self, i: int) -> RowProvenance:
        leaves = self.leaves
        per_leaf: list[list[RowProvenance]] = []
        lineage_parts: list[frozenset] = []
        for leaf, contrib in zip(leaves, self.contribs):
            provs = [leaf[o] for o in contrib.ordinals(i)]
            per_leaf.append(provs)
            lineage_parts.extend(p.lineage for p in provs)
        lineage = _union(*lineage_parts) if lineage_parts else _EMPTY_REFS
        where: dict[str, frozenset] = {}
        for alias, pairs in self.origins:
            refs: list[frozenset] = []
            for leaf_i, src in pairs:
                refs.extend(p.where_of(src) for p in per_leaf[leaf_i])
            where[alias] = _union(*refs) if refs else _EMPTY_REFS
        return RowProvenance.make(lineage, where)

    # -- Sequence protocol ----------------------------------------------------

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, i):  # type: ignore[override]
        if isinstance(i, slice):
            return [self._decode(j) for j in range(*i.indices(self.n))]
        if i < 0:
            i += self.n
        if not 0 <= i < self.n:
            raise IndexError("provenance index out of range")
        return self._decode(i)

    def __iter__(self) -> Iterator[RowProvenance]:
        return (self._decode(i) for i in range(self.n))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Sequence):
            return len(other) == self.n and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("MaskProvenance is not hashable")

    def materialize(self) -> list[RowProvenance]:
        """Decode every row (the object-provenance boundary for consumers)."""
        return [self._decode(i) for i in range(self.n)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ",".join(c.kind for c in self.contribs)
        return f"MaskProvenance({self.n} rows, {len(self.leaves)} leaves [{kinds}])"
