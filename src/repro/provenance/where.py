"""Where-provenance queries (Buneman/Tan style, annotation-propagated).

Where-provenance answers, for a single *cell* of a derived table, which base
cells its value was **copied** from. Values produced by computation
(aggregates, arithmetic) are not copies; for those the engine records the
set of base cells they *derive from* instead, and :func:`classify_cell`
distinguishes the two cases.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ProvenanceError
from repro.relational.table import CellRef, Table

__all__ = ["CellOrigin", "CellProvenance", "where_of_cell", "classify_cell"]


class CellOrigin(enum.Enum):
    """How a derived cell relates to base data."""

    COPIED = "copied"  # value copied verbatim from exactly one base cell
    MERGED = "merged"  # copied from several base cells (dedup/union)
    DERIVED = "derived"  # computed from base cells (aggregate, arithmetic)
    OPAQUE = "opaque"  # no recorded base cells (constants, synthetics)


@dataclass(frozen=True)
class CellProvenance:
    """Provenance of one derived cell."""

    column: str
    row_index: int
    origin: CellOrigin
    sources: tuple[CellRef, ...]

    def describe(self) -> str:
        if self.origin is CellOrigin.OPAQUE:
            return f"{self.column}[{self.row_index}]: no base origin"
        refs = ", ".join(str(ref) for ref in self.sources)
        return f"{self.column}[{self.row_index}] {self.origin.value} from {refs}"


def where_of_cell(table: Table, row_index: int, column: str) -> frozenset[CellRef]:
    """Base cells recorded for cell ``(row_index, column)`` of ``table``."""
    if not 0 <= row_index < len(table.rows):
        raise ProvenanceError(
            f"row index {row_index} out of range for table with {len(table.rows)} rows"
        )
    table.schema.column(column)  # raises SchemaError on unknown column
    return table.provenance[row_index].where_of(column)


def classify_cell(table: Table, row_index: int, column: str) -> CellProvenance:
    """Classify one cell's relation to its base cells.

    A cell is COPIED/MERGED only if its current value *equals* the recorded
    source reference count pattern: one source ref → copied, several →
    merged. If the engine recorded source cells but the value was produced
    by an expression or aggregate (project/aggregate mark these the same
    way), callers that need exactness should treat MERGED/DERIVED alike;
    the classification here is based on ref cardinality and column identity.
    """
    refs = sorted(where_of_cell(table, row_index, column))
    if not refs:
        return CellProvenance(column, row_index, CellOrigin.OPAQUE, ())
    same_column = all(ref.column == column.split(".")[-1] or ref.column == column for ref in refs)
    if len(refs) == 1 and same_column:
        origin = CellOrigin.COPIED
    elif same_column:
        origin = CellOrigin.MERGED
    else:
        origin = CellOrigin.DERIVED
    return CellProvenance(column, row_index, origin, tuple(refs))
