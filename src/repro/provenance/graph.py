"""Dataset-level provenance graphs for the elicitation tool model.

Section 5 of the paper envisions an elicitation GUI "which enables the BI
provider to explain the provenance of each data element and the
transformations/integrations it goes through". This module records that
dataset/transformation DAG as ETL flows and report generation run, and can
render per-element provenance explanations for a source owner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import ProvenanceError

__all__ = ["ProvenanceGraph", "DatasetNode", "TransformNode"]


@dataclass(frozen=True)
class DatasetNode:
    """A dataset (source table, staging table, warehouse table, report)."""

    name: str
    kind: str  # "source" | "staging" | "warehouse" | "metareport" | "report"
    owner: str = ""

    def label(self) -> str:
        suffix = f" [{self.owner}]" if self.owner else ""
        return f"{self.kind}:{self.name}{suffix}"


@dataclass(frozen=True)
class TransformNode:
    """A transformation step (ETL operator, report query)."""

    name: str
    operation: str  # e.g. "clean", "entity_resolution", "join", "aggregate"
    detail: str = ""

    def label(self) -> str:
        return f"{self.operation}:{self.name}"


@dataclass
class ProvenanceGraph:
    """A bipartite DAG of datasets and the transformations between them."""

    graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    def add_dataset(self, node: DatasetNode) -> DatasetNode:
        self.graph.add_node(node, node_type="dataset")
        return node

    def add_transform(
        self,
        transform: TransformNode,
        inputs: list[DatasetNode],
        output: DatasetNode,
    ) -> TransformNode:
        """Record that ``transform`` consumed ``inputs`` and produced ``output``."""
        if not inputs:
            raise ProvenanceError("a transformation must have at least one input")
        self.graph.add_node(transform, node_type="transform")
        self.graph.add_node(output, node_type="dataset")
        for dataset in inputs:
            self.graph.add_node(dataset, node_type="dataset")
            self.graph.add_edge(dataset, transform)
        self.graph.add_edge(transform, output)
        if not nx.is_directed_acyclic_graph(self.graph):
            self.graph.remove_node(transform)
            raise ProvenanceError(
                f"adding transform {transform.name!r} would create a cycle"
            )
        return transform

    def dataset(self, name: str) -> DatasetNode:
        """Find a dataset node by name."""
        for node in self.graph.nodes:
            if isinstance(node, DatasetNode) and node.name == name:
                return node
        raise ProvenanceError(f"no dataset named {name!r} in provenance graph")

    def upstream_datasets(self, name: str) -> tuple[DatasetNode, ...]:
        """All datasets the named dataset (transitively) derives from."""
        target = self.dataset(name)
        ancestors = nx.ancestors(self.graph, target)
        return tuple(
            sorted(
                (n for n in ancestors if isinstance(n, DatasetNode)),
                key=lambda n: (n.kind, n.name),
            )
        )

    def downstream_datasets(self, name: str) -> tuple[DatasetNode, ...]:
        """All datasets (transitively) derived from the named dataset."""
        source = self.dataset(name)
        descendants = nx.descendants(self.graph, source)
        return tuple(
            sorted(
                (n for n in descendants if isinstance(n, DatasetNode)),
                key=lambda n: (n.kind, n.name),
            )
        )

    def transformations_between(self, source: str, target: str) -> tuple[TransformNode, ...]:
        """Transformations on some path from ``source`` to ``target``."""
        src = self.dataset(source)
        dst = self.dataset(target)
        transforms: list[TransformNode] = []
        seen: set[TransformNode] = set()
        for path in nx.all_simple_paths(self.graph, src, dst):
            for node in path:
                if isinstance(node, TransformNode) and node not in seen:
                    seen.add(node)
                    transforms.append(node)
        return tuple(transforms)

    def explain(self, report: str) -> str:
        """Owner-facing explanation of where a report's data comes from.

        This is the textual stand-in for the paper's elicitation GUI: it
        lists the source datasets feeding the report and every
        transformation applied along the way.
        """
        target = self.dataset(report)
        sources = [n for n in self.upstream_datasets(report) if n.kind == "source"]
        lines = [f"Report {target.name!r} is computed from:"]
        for src in sources:
            lines.append(f"  - {src.label()}")
            for transform in self.transformations_between(src.name, report):
                detail = f" ({transform.detail})" if transform.detail else ""
                lines.append(f"      via {transform.label()}{detail}")
        if len(lines) == 1:
            lines.append("  (no recorded sources)")
        return "\n".join(lines)

    def owners_involved(self, report: str) -> frozenset[str]:
        """Owners whose source data reaches the named report."""
        return frozenset(
            node.owner
            for node in self.upstream_datasets(report)
            if node.kind == "source" and node.owner
        )
