"""Lineage tracing over derived tables (Cui–Widom style, annotation-carried).

Because every operator in :mod:`repro.relational.algebra` propagates the
contributing base-row set, tracing the lineage of a derived row is a lookup,
not a recomputation. This module adds the query-side conveniences the paper's
auditing and elicitation discussions need:

* trace one output row back to the base rows per source table;
* invert the relation: which output rows does a given base row influence
  (the "what does the BI provider show that depends on my record" question);
* summarize a table's base footprint per provider, which quantifies
  *over-engineering* (constraints elicited on data the reports never touch).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping

from repro.errors import ProvenanceError
from repro.relational.table import RowId, Table

__all__ = ["LineageTrace", "trace_row", "rows_influenced_by", "base_footprint"]


@dataclass(frozen=True)
class LineageTrace:
    """The lineage of one derived row, grouped by ``(provider, table)``."""

    row_index: int
    by_relation: Mapping[tuple[str, str], tuple[RowId, ...]]

    @property
    def base_rows(self) -> frozenset[RowId]:
        """All contributing base rows, ungrouped."""
        out: set[RowId] = set()
        for rows in self.by_relation.values():
            out.update(rows)
        return frozenset(out)

    @property
    def contributor_count(self) -> int:
        """Number of distinct contributing base rows.

        This is the quantity an aggregation-threshold PLA constrains ("how
        many base elements should be present before the aggregation").
        """
        return len(self.base_rows)

    def relations(self) -> tuple[tuple[str, str], ...]:
        """The ``(provider, table)`` pairs this row draws from, sorted."""
        return tuple(sorted(self.by_relation))

    def describe(self) -> str:
        """Human-readable summary for elicitation/audit displays."""
        parts = [
            f"{provider}/{table}: {len(rows)} row(s)"
            for (provider, table), rows in sorted(self.by_relation.items())
        ]
        return f"row {self.row_index} <- " + "; ".join(parts)


def trace_row(table: Table, row_index: int) -> LineageTrace:
    """Trace derived row ``row_index`` of ``table`` back to its base rows."""
    if not 0 <= row_index < len(table.rows):
        raise ProvenanceError(
            f"row index {row_index} out of range for table with {len(table.rows)} rows"
        )
    grouped: dict[tuple[str, str], list[RowId]] = defaultdict(list)
    for row_id in sorted(table.lineage_of(row_index)):
        grouped[(row_id.provider, row_id.table)].append(row_id)
    return LineageTrace(
        row_index=row_index,
        by_relation={key: tuple(rows) for key, rows in grouped.items()},
    )


def rows_influenced_by(table: Table, base_row: RowId) -> tuple[int, ...]:
    """Indices of derived rows in ``table`` whose lineage includes ``base_row``.

    This answers the data subject's question: which delivered report rows
    depend on my record? It is the primitive disclosure audits are built on.
    """
    return tuple(
        i for i in range(len(table.rows)) if base_row in table.lineage_of(i)
    )


def base_footprint(table: Table) -> dict[tuple[str, str], int]:
    """Per ``(provider, table)`` count of distinct base rows ``table`` uses."""
    grouped: dict[tuple[str, str], set[RowId]] = defaultdict(set)
    for row_id in table.all_lineage():
        grouped[(row_id.provider, row_id.table)].add(row_id)
    return {key: len(rows) for key, rows in sorted(grouped.items())}
