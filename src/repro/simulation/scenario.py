"""The end-to-end Fig-1 scenario: providers → ETL → warehouse → reports.

:func:`build_scenario` assembles the whole outsourced-BI deployment the
paper describes: four data providers with consents and gateways, a staging
area, an annotated ETL flow with entity integration, a star-schema
warehouse with its wide view, a generated report workload, generated
meta-reports with attached PLAs, the compliance checker, the report-level
enforcer, and the audit log. Every benchmark and example builds on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.anonymize.generalization import year_hierarchy, zip_hierarchy
from repro.anonymize.pseudonym import Pseudonymizer
from repro.audit.log import AuditLog
from repro.core.annotations import (
    AggregationThreshold,
    Annotation,
    AnonymizationRequirement,
    AttributeAccess,
    IntegrationPermission,
    IntensionalCondition,
    JoinPermission,
)
from repro.core.compliance import ComplianceChecker
from repro.core.metareport import MetaReportSet, generate_metareports
from repro.core.pla import PLA, PlaLevel, PlaRegistry
from repro.core.translation import ReportLevelEnforcer
from repro.etl.flow import EtlFlow, FlowResult
from repro.etl.operators import ExtractOp, IntegrateOp, JoinOp, LoadOp
from repro.etl.staging import StagingArea
from repro.policy.subjects import SubjectRegistry
from repro.provenance.graph import ProvenanceGraph
from repro.relational.catalog import Catalog
from repro.relational.expressions import Col, Comparison, Lit
from repro.reports.catalog import ReportCatalog
from repro.reports.definition import ReportDefinition
from repro.sources.consent import ConsentRegistry
from repro.sources.provider import DataProvider, ProviderKind, TrustPosture
from repro.warehouse.star import StarSchema, build_dimension, build_fact
from repro.workloads import healthcare
from repro.workloads.reports_workload import (
    WorkloadSpec,
    generate_report_workload,
)

__all__ = ["ScenarioConfig", "Scenario", "build_scenario", "standard_annotations"]

ROLES = ("analyst", "auditor", "health_director", "municipality_official")
PURPOSES = (
    "care/quality",
    "admin/reimbursement",
    "research/epidemiology",
)

AUDIENCES = (
    frozenset({"analyst"}),
    frozenset({"analyst", "auditor"}),
    frozenset({"health_director"}),
    frozenset({"municipality_official"}),
    frozenset({"analyst", "health_director"}),
)


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs of the end-to-end scenario.

    ``source_enforces`` switches the hospital to the §3 SOURCE_ENFORCES
    posture: its exports pass through a Fig 2 gateway (consent-driven
    pseudonymization/suppression and the intensional HIV-rows-stay-home
    rule) *before* the BI provider sees them.
    """

    healthcare: healthcare.HealthcareConfig = healthcare.HealthcareConfig()
    n_reports: int = 30
    max_metareports: int = 4
    aggregation_threshold: int = 5
    seed: int = 11
    source_enforces: bool = False


@dataclass
class Scenario:
    """Everything one deployment consists of."""

    config: ScenarioConfig
    data: healthcare.HealthcareData
    providers: dict[str, DataProvider]
    bi_catalog: Catalog
    staging: StagingArea
    flow: EtlFlow
    flow_result: FlowResult
    star: StarSchema
    wide_columns: tuple[str, ...]
    subjects: SubjectRegistry
    workload: list[ReportDefinition]
    report_catalog: ReportCatalog
    metareports: MetaReportSet
    pla_registry: PlaRegistry
    checker: ComplianceChecker
    enforcer: ReportLevelEnforcer
    audit_log: AuditLog = field(default_factory=AuditLog)
    provenance: ProvenanceGraph = field(default_factory=ProvenanceGraph)

    @property
    def universe_name(self) -> str:
        return self.star.wide_view_name()

    def workload_spec(self) -> WorkloadSpec:
        """The spec the workload (and its evolution) was generated from."""
        return _workload_spec(self.universe_name, self.config)

    def delivery_service(self) -> "DeliveryService":
        """The serving layer wired to this scenario's audit log."""
        from repro.reports.delivery import DeliveryService

        return DeliveryService(
            reports=self.report_catalog,
            checker=self.checker,
            enforcer=self.enforcer,
            subjects=self.subjects,
            audit_log=self.audit_log,
        )


def _workload_spec(universe: str, config: ScenarioConfig) -> WorkloadSpec:
    # birth_year is loaded into the warehouse but no report uses it — the
    # §4 "reduced, yet not eliminated" residue of over-engineering.
    return WorkloadSpec(
        universe=universe,
        categorical=("drug", "disease", "doctor", "zip", "gender"),
        measures=("cost",),
        detail_columns=("patient", "drug", "disease", "doctor", "date", "cost", "zip"),
        new_feed_columns=("exam_type", "result"),
        audiences=AUDIENCES,
        purposes=PURPOSES,
        filter_values={
            "disease": ("asthma", "diabetes", "flu", "hypertension"),
            "drug": ("DR", "DM", "DB", "DA"),
            "gender": ("F", "M"),
        },
        n_reports=config.n_reports,
        seed=config.seed,
    )


def standard_annotations(
    wide_columns: tuple[str, ...],
    *,
    aggregation_threshold: int,
) -> list[Annotation]:
    """The scenario's privacy requirements, in PLA-annotation form.

    These are the healthcare-project requirements §2 motivates: patient
    identity pseudonymized and restricted, HIV rows never delivered, doctors
    visible only to officials, group-size floors on aggregates, and the
    municipality's "do not cross my registry with lab data" rule. The list
    is exactly what :func:`build_scenario` attaches per meta-report (scoped
    to the columns each meta-report exposes).
    """
    return _annotations_for(wide_columns, aggregation_threshold)


def build_scenario(config: ScenarioConfig | None = None) -> Scenario:
    """Assemble the full deployment deterministically."""
    cfg = config if config is not None else ScenarioConfig()
    data = healthcare.generate(cfg.healthcare)

    # -- providers (Fig 1) -------------------------------------------------
    hospital = DataProvider(
        "hospital", ProviderKind.HOSPITAL, posture=TrustPosture.BI_ENFORCES
    )
    hospital.add_table(data.prescriptions)
    if data.admissions is not None:
        hospital.add_table(data.admissions)
    if data.billing is not None:
        hospital.add_table(data.billing)
    if data.staff is not None:
        hospital.add_table(data.staff)
    hospital.consents = ConsentRegistry.from_policies_table(data.policies)
    municipality = DataProvider(
        "municipality", ProviderKind.MUNICIPALITY, posture=TrustPosture.BI_ENFORCES
    )
    municipality.add_table(data.familydoctor)
    municipality.add_table(data.residents)
    laboratory = DataProvider(
        "laboratory", ProviderKind.LABORATORY, posture=TrustPosture.BI_ENFORCES
    )
    laboratory.add_table(data.exams)
    if data.equipment is not None:
        laboratory.add_table(data.equipment)
    agency = DataProvider(
        "health_agency", ProviderKind.HEALTH_AGENCY, posture=TrustPosture.BI_ENFORCES
    )
    agency.add_table(data.drugcost)
    providers = {
        p.name: p for p in (hospital, municipality, laboratory, agency)
    }

    # -- source posture --------------------------------------------------------
    prescriptions_feed = data.prescriptions
    gateway_report = None
    if cfg.source_enforces:
        from repro.policy.intensional import IntensionalAssociation
        from repro.sources.filters import CellPolicy, SourceGateway

        hospital.posture = TrustPosture.SOURCE_ENFORCES
        hospital.metadata.add(
            IntensionalAssociation(
                "hiv-rows-stay-home",
                "prescriptions",
                Comparison("=", Col("disease"), Lit("HIV")),
                {"deny_row": True},
            )
        )
        gateway = SourceGateway(
            hospital, pseudonymizer=Pseudonymizer(salt="hospital-gateway")
        )
        gateway.add_cell_policy(CellPolicy("patient", "show_name", "pseudonymize"))
        export_subjects = SubjectRegistry()
        export_subjects.purposes.declare("care/quality")
        export_subjects.add_role("bi_provider")
        export_subjects.add_user("bi", "bi_provider")
        prescriptions_feed, gateway_report = gateway.export_table(
            "prescriptions", export_subjects.context("bi", "care/quality")
        )

    # -- staging + ETL -------------------------------------------------------
    bi_catalog = Catalog()
    staging = StagingArea(bi_catalog)
    provenance = ProvenanceGraph()
    if gateway_report is not None:
        staging.stage(prescriptions_feed, gateway_report=gateway_report)
    flow = EtlFlow("healthcare_load")
    flow.add(ExtractOp("x_presc", prescriptions_feed, "stg_prescriptions"))
    flow.add(ExtractOp("x_fd", data.familydoctor, "stg_familydoctor"))
    flow.add(ExtractOp("x_cost", data.drugcost, "stg_drugcost"))
    flow.add(ExtractOp("x_res", data.residents, "stg_residents"))
    flow.add(ExtractOp("x_exams", data.exams, "stg_exams"))
    flow.add(
        IntegrateOp(
            "fill_doctor",
            "stg_prescriptions",
            "stg_familydoctor",
            "presc_filled",
            key=("patient", "patient"),
            fill_column="doctor",
            reference_column="doctor",
        )
    )
    flow.add(
        JoinOp(
            "join_cost",
            "presc_filled",
            "stg_drugcost",
            [("drug", "drug")],
            "presc_cost",
        )
    )
    # Left join: with SOURCE_ENFORCES, pseudonymized patients cannot match
    # the municipality registry; the facts survive with NULL demographics —
    # the measurable §3 cost of source-side anonymization to integration.
    flow.add(
        JoinOp(
            "join_residents",
            "presc_cost",
            "stg_residents",
            [("patient", "patient")],
            "presc_wide",
            how="left",
        )
    )
    flow.add(LoadOp("load_wide", "presc_wide", "dwh_prescriptions"))
    flow_result = flow.run(bi_catalog, graph=provenance)

    # -- star schema ---------------------------------------------------------
    wide = bi_catalog.table("dwh_prescriptions")
    dim_drug = build_dimension("drug", wide, ["drug"])
    dim_disease = build_dimension("disease", wide, ["disease"])
    dim_doctor = build_dimension("doctor", wide, ["doctor"])
    dim_patient = build_dimension(
        "patient", wide, ["patient", "zip", "birth_year", "gender"],
        levels=["patient", "zip", "birth_year", "gender"],
    )
    fact = build_fact(
        "prescriptions",
        wide,
        [
            (dim_drug, {"drug": "drug"}),
            (dim_disease, {"disease": "disease"}),
            (dim_doctor, {"doctor": "doctor"}),
            (
                dim_patient,
                {
                    "patient": "patient",
                    "zip": "zip",
                    "birth_year": "birth_year",
                    "gender": "gender",
                },
            ),
        ],
        measures=["cost"],
        degenerate=["date"],
    )
    star = StarSchema(
        "prescriptions", fact, [dim_drug, dim_disease, dim_doctor, dim_patient]
    )
    star.register(bi_catalog)
    wide_columns = star.wide_view().query.output_names()
    assert wide_columns is not None

    # -- subjects --------------------------------------------------------------
    subjects = SubjectRegistry()
    for purpose in PURPOSES:
        subjects.purposes.declare(purpose)
    for role in ROLES:
        subjects.add_role(role)
    subjects.add_user("ann", "analyst")
    subjects.add_user("aldo", "auditor")
    subjects.add_user("dora", "health_director")
    subjects.add_user("mara", "municipality_official")

    # -- report workload + meta-reports -----------------------------------------
    spec = _workload_spec(star.wide_view_name(), cfg)
    workload = generate_report_workload(spec)
    report_catalog = ReportCatalog()
    for definition in workload:
        report_catalog.add(definition)

    metareports = generate_metareports(
        workload,
        star.wide_view_name(),
        wide_columns,
        max_metareports=cfg.max_metareports,
    )
    metareports.register_views(bi_catalog)

    pla_registry = PlaRegistry()
    for metareport in metareports:
        annotations = _annotations_for(
            metareport.columns(), cfg.aggregation_threshold
        )
        pla = PLA(
            name=f"pla_{metareport.name}",
            owner="hospital",
            level=PlaLevel.METAREPORT,
            target=metareport.name,
            annotations=tuple(annotations),
        )
        pla_registry.add(pla)
        metareport.attach_pla(pla_registry.approve(pla.name))

    checker = ComplianceChecker(catalog=bi_catalog, metareports=metareports)
    enforcer = ReportLevelEnforcer(
        catalog=bi_catalog,
        pseudonymizer=Pseudonymizer(salt="trentino-bi"),
        hierarchies={"zip": zip_hierarchy(), "birth_year": year_hierarchy()},
    )
    return Scenario(
        config=cfg,
        data=data,
        providers=providers,
        bi_catalog=bi_catalog,
        staging=staging,
        flow=flow,
        flow_result=flow_result,
        star=star,
        wide_columns=wide_columns,
        subjects=subjects,
        workload=workload,
        report_catalog=report_catalog,
        metareports=metareports,
        pla_registry=pla_registry,
        checker=checker,
        enforcer=enforcer,
        provenance=provenance,
    )


def extend_with_exams_mart(scenario: Scenario) -> dict[str, object]:
    """Add the laboratory exams mart — and watch the PLAs bite.

    The municipality's PLA prohibits combining its residents registry with
    laboratory exams. This extension builds exactly that flow twice:

    * an ETL attempt ``exams ⋈ residents`` with the PLA projected into the
      ETL registry — blocked *before* materialization (Fig 3 path);
    * a legitimate exams-only warehouse table plus a report; any report
      whose lineage would span both sources is caught by the compliance
      checker's source-footprint check (report-level path).

    Returns a summary dict used by tests and the extended example.
    """
    from repro.core.translation import to_etl_registry
    from repro.etl.operators import JoinOp, LoadOp

    data = scenario.data
    etl_registry = to_etl_registry(
        [m.pla for m in scenario.metareports if m.pla is not None]
    )

    # -- the prohibited flow: exams enriched with residents ------------------
    prohibited = EtlFlow("exams_with_residents")
    prohibited.add(ExtractOp("x_exams2", data.exams, "stg2_exams"))
    prohibited.add(ExtractOp("x_res2", data.residents, "stg2_residents"))
    prohibited.add(
        JoinOp(
            "join_res",
            "stg2_exams",
            "stg2_residents",
            [("patient", "patient")],
            "exams_res",
        )
    )
    prohibited.add(LoadOp("load_bad", "exams_res", "dwh_exams_res"))
    prohibited_result = prohibited.run(
        Catalog(), pla=etl_registry, graph=scenario.provenance
    )

    # -- the legitimate exams mart -------------------------------------------
    legit = EtlFlow("exams_mart")
    legit.add(ExtractOp("x_exams3", data.exams, "stg_lab_exams"))
    legit.add(LoadOp("load_exams", "stg_lab_exams", "dwh_exams"))
    legit_result = legit.run(
        scenario.bi_catalog, pla=etl_registry, graph=scenario.provenance
    )

    exams = scenario.bi_catalog.table("dwh_exams")
    from repro.warehouse.star import build_dimension, build_fact

    dim_exam = build_dimension("exam_type", exams, ["exam_type"])
    fact = build_fact(
        "exams",
        exams,
        [(dim_exam, {"exam_type": "exam_type"})],
        measures=["result"],
        degenerate=["patient", "date"],
    )
    star = StarSchema("exams", fact, [dim_exam])
    star.register(scenario.bi_catalog)
    return {
        "prohibited_result": prohibited_result,
        "legit_result": legit_result,
        "exams_star": star,
        "etl_registry": etl_registry,
    }


def _annotations_for(
    columns: tuple[str, ...], aggregation_threshold: int
) -> list[Annotation]:
    """Scenario annotations applicable to one meta-report's column set."""
    out: list[Annotation] = [
        AggregationThreshold(min_group_size=aggregation_threshold, scope="patient"),
        JoinPermission(
            left="municipality/residents",
            right="laboratory/exams",
            allowed=False,
        ),
        IntegrationPermission(owner="municipality", allowed=True),
        # The HIV rule binds every meta-report over prescription data, not
        # just those displaying the disease column — it is evaluated as a
        # *hidden* column where necessary (§5's hidden-HIV-column device).
        IntensionalCondition(
            attribute="disease",
            condition=Comparison("!=", Col("disease"), Lit("HIV")),
            action="suppress_row",
        ),
    ]
    if "patient" in columns:
        out.append(AnonymizationRequirement(attribute="patient", method="pseudonymize"))
        out.append(
            AttributeAccess(
                attribute="patient",
                allowed_roles=frozenset({"health_director", "analyst"}),
            )
        )
    if "doctor" in columns:
        out.append(
            AttributeAccess(
                attribute="doctor",
                allowed_roles=frozenset(
                    {"health_director", "municipality_official", "analyst", "auditor"}
                ),
            )
        )
    return out
