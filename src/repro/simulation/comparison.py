"""Replaying report evolution against the four PLA-engineering levels.

This is the quantitative engine behind Fig 5: for each level it measures
initial elicitation effort, re-elicitation under an evolution stream
(stability), over-engineering, and requirement testability — then combines
them so the continuum and the meta-report sweet spot become visible as
numbers instead of a sketch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.elicitation import ElicitationSession
from repro.core.levels import (
    EngineeringLevel,
    MetaReportLevel,
    ReportLevel,
    SourceLevel,
    WarehouseLevel,
)
from repro.reports.evolution import EvolutionEvent
from repro.simulation.owner import OwnerAgent
from repro.simulation.scenario import Scenario

__all__ = ["LevelMetrics", "build_levels", "compare_levels"]


@dataclass(frozen=True)
class LevelMetrics:
    """FIG5's series: one row per engineering level."""

    level: str
    artifacts: int
    initial_effort: float
    events: int
    reelicitations: int
    reelicitation_effort: float
    over_engineering: float
    testability: float

    @property
    def stability(self) -> float:
        """Fraction of evolution events absorbed without re-elicitation."""
        if self.events == 0:
            return 1.0
        return 1.0 - self.reelicitations / self.events

    @property
    def total_effort(self) -> float:
        return self.initial_effort + self.reelicitation_effort

    @property
    def effort_per_artifact(self) -> float:
        """Fig 5's "ease of elicitation" axis, inverted: interaction units
        per artifact the owner must understand. Lower = easier."""
        if self.artifacts == 0:
            return 0.0
        return self.initial_effort / self.artifacts

    def row(self) -> dict[str, object]:
        return {
            "level": self.level,
            "artifacts": self.artifacts,
            "effort_per_artifact": round(self.effort_per_artifact, 1),
            "initial_effort": round(self.initial_effort, 1),
            "reelicitations": self.reelicitations,
            "stability": round(self.stability, 3),
            "total_effort": round(self.total_effort, 1),
            "over_engineering": round(self.over_engineering, 3),
            "testability": round(self.testability, 2),
        }


def build_levels(scenario: Scenario) -> list[EngineeringLevel]:
    """The four level adapters over one scenario, source → report order."""
    source = SourceLevel(list(scenario.providers.values()))
    warehouse_tables = [
        (name, len(scenario.bi_catalog.table(name).schema))
        for name in scenario.bi_catalog.table_names()
        if name.startswith(("fact_", "dim_", "dwh_"))
    ]
    warehouse = WarehouseLevel(
        warehouse_tables=warehouse_tables,
        etl_flows=[(scenario.flow.name, len(scenario.flow.operators))],
        warehouse_columns=frozenset(scenario.wide_columns),
    )
    metareport = MetaReportLevel(scenario.metareports, scenario.bi_catalog)
    metareport.register_workload(scenario.workload)
    report = ReportLevel(scenario.workload)
    return [source, warehouse, metareport, report]


def compare_levels(
    scenario: Scenario,
    events: list[EvolutionEvent],
    *,
    owner: OwnerAgent | None = None,
    requirement_kinds: tuple[str, ...] = (
        "attribute_access",
        "aggregation_threshold",
        "anonymization",
        "join_permission",
        "integration_permission",
        "intensional_condition",
    ),
) -> list[LevelMetrics]:
    """Run the FIG5 comparison: initial elicitation, then the event stream."""
    agent = owner if owner is not None else OwnerAgent("hospital_dpo", expertise=0.4)
    results: list[LevelMetrics] = []
    for level in build_levels(scenario):
        # Fresh owner per level so confusion draws are identical across levels.
        level_owner = OwnerAgent(
            agent.name,
            expertise=agent.expertise,
            seed=agent.seed,
            confusion_scale=agent.confusion_scale,
        )
        initial = ElicitationSession(level_owner, level, trigger="initial").run()
        reelicitations = 0
        reelicitation_effort = 0.0
        for event in events:
            if not level.covers_event(event):
                reelicitations += 1
                session = ElicitationSession(
                    level_owner, level, trigger=f"re-elicitation:{event.describe()}"
                )
                record = session.run(level.reelicitation_artifacts(event))
                reelicitation_effort += record.cost
            level.note_event(event)
        over_engineering = _over_engineering(level, scenario)
        results.append(
            LevelMetrics(
                level=level.level.value,
                artifacts=len(level.artifacts()),
                initial_effort=initial.cost,
                events=len(events),
                reelicitations=reelicitations,
                reelicitation_effort=reelicitation_effort,
                over_engineering=over_engineering,
                testability=level.mean_testability(requirement_kinds),
            )
        )
    return results


def _over_engineering(level: EngineeringLevel, scenario: Scenario) -> float:
    if isinstance(level, SourceLevel):
        reached: set[str] = set()
        for report in scenario.workload:
            reached.update(scenario.checker.source_footprint(report))
        return level.over_engineering_ratio(scenario.workload, frozenset(reached))
    if isinstance(level, WarehouseLevel):
        return level.over_engineering_ratio(scenario.workload)
    if isinstance(level, MetaReportLevel):
        return level.over_engineering_ratio(scenario.workload)
    assert isinstance(level, ReportLevel)
    return level.over_engineering_ratio()
