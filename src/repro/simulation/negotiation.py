"""Negotiation-to-convergence: §6's open methodology question, simulated.

"...defining methodologies for interacting with the source owners in order
to quickly converge to a set of PLAs." We model the simplest realistic
protocol: the BI provider proposes annotation parameters (thresholds,
role sets); the owner, holding private sensitivity preferences, accepts or
counter-proposes stricter ones; the provider concedes toward the owner's
position; repeat until agreement. The experiment measures convergence
rounds per artifact — which shrinks with the owner's comprehension of the
artifact, reproducing the intuition that concrete artifacts (reports,
meta-reports) converge faster than abstract ones (source schemas).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ElicitationError
from repro.core.annotations import AggregationThreshold, AttributeAccess
from repro.core.levels import COMPREHENSION_WEIGHTS

__all__ = ["OwnerPreferences", "NegotiationOutcome", "negotiate_threshold", "negotiate_audience", "convergence_experiment"]


@dataclass(frozen=True)
class OwnerPreferences:
    """The owner's private position (never revealed directly)."""

    min_threshold: int = 5  # will not accept aggregation floors below this
    forbidden_roles: frozenset[str] = frozenset()  # must never see sensitive attrs
    # How reliably the owner recognizes an acceptable proposal in an
    # artifact of a given comprehension weight; misunderstanding adds rounds.
    comprehension: float = 0.7


@dataclass
class NegotiationOutcome:
    """The transcript of one negotiated annotation."""

    accepted: bool
    rounds: int
    final: object = None
    transcript: list[str] = field(default_factory=list)


def negotiate_threshold(
    owner: OwnerPreferences,
    *,
    opening: int,
    artifact_kind: str,
    rng: random.Random,
    max_rounds: int = 12,
) -> NegotiationOutcome:
    """Provider proposes a group-size floor; owner pushes it up to taste.

    Misunderstanding (probability grows with the artifact's comprehension
    weight and the owner's confusion) makes the owner reject even acceptable
    offers — the mechanism that makes source-level discussions slow.
    """
    weight = COMPREHENSION_WEIGHTS[artifact_kind]
    p_misread = max(0.0, min(0.9, (1.0 - owner.comprehension) * (weight / 4.0)))
    proposal = opening
    outcome = NegotiationOutcome(accepted=False, rounds=0)
    for _ in range(max_rounds):
        outcome.rounds += 1
        outcome.transcript.append(f"provider: threshold >= {proposal}?")
        understands = rng.random() >= p_misread
        acceptable = proposal >= owner.min_threshold
        if acceptable and understands:
            outcome.accepted = True
            outcome.final = AggregationThreshold(proposal)
            outcome.transcript.append("owner: agreed")
            return outcome
        # Counter-proposal: the owner asks for more protection. A confused
        # owner over-asks (the over-engineering mechanism, §3).
        bump = 1 if understands else rng.randint(2, 5)
        proposal = max(proposal + bump, owner.min_threshold if understands else proposal + bump)
        outcome.transcript.append(f"owner: not enough, propose {proposal}")
    outcome.transcript.append("no agreement within the meeting")
    return outcome


def negotiate_audience(
    owner: OwnerPreferences,
    *,
    attribute: str,
    opening_roles: frozenset[str],
    artifact_kind: str,
    rng: random.Random,
    max_rounds: int = 8,
) -> NegotiationOutcome:
    """Provider proposes an audience for an attribute; owner prunes it."""
    weight = COMPREHENSION_WEIGHTS[artifact_kind]
    p_misread = max(0.0, min(0.9, (1.0 - owner.comprehension) * (weight / 4.0)))
    roles = set(opening_roles)
    outcome = NegotiationOutcome(accepted=False, rounds=0)
    for _ in range(max_rounds):
        outcome.rounds += 1
        outcome.transcript.append(
            f"provider: {attribute!r} visible to {sorted(roles)}?"
        )
        understands = rng.random() >= p_misread
        offending = roles & owner.forbidden_roles
        if not offending and understands:
            outcome.accepted = True
            outcome.final = AttributeAccess(attribute, frozenset(roles))
            outcome.transcript.append("owner: agreed")
            return outcome
        if offending:
            removed = sorted(offending)[0]
            roles.discard(removed)
            outcome.transcript.append(f"owner: remove {removed!r}")
        elif not understands:
            # Confused owner removes a legitimate role "to be safe".
            if roles:
                removed = sorted(roles)[rng.randrange(len(roles))]
                roles.discard(removed)
                outcome.transcript.append(
                    f"owner: unsure, remove {removed!r} to be safe"
                )
        if not roles:
            outcome.transcript.append("owner: nobody may see it")
            outcome.accepted = True
            outcome.final = AttributeAccess(attribute, frozenset())
            return outcome
    return outcome


def convergence_experiment(
    *,
    seed: int = 29,
    trials: int = 200,
    owner_comprehension: float = 0.7,
) -> list[dict]:
    """Mean convergence rounds per artifact kind (the §6 methodology metric).

    Expected shape: rounds grow with the artifact's comprehension weight —
    discussing thresholds over a source schema takes more meetings than
    over a concrete report.
    """
    if trials <= 0:
        raise ElicitationError("trials must be positive")
    rng = random.Random(seed)
    rows = []
    for kind in ("source_table", "warehouse_table", "metareport", "report"):
        total_rounds = 0
        agreed = 0
        over_asks = 0
        for _ in range(trials):
            owner = OwnerPreferences(
                min_threshold=rng.randint(3, 8),
                comprehension=owner_comprehension,
            )
            outcome = negotiate_threshold(
                owner, opening=2, artifact_kind=kind, rng=rng
            )
            total_rounds += outcome.rounds
            if outcome.accepted:
                agreed += 1
                assert isinstance(outcome.final, AggregationThreshold)
                if outcome.final.min_group_size > owner.min_threshold:
                    over_asks += 1
        rows.append(
            {
                "artifact_kind": kind,
                "mean_rounds": total_rounds / trials,
                "agreement_rate": agreed / trials,
                "over_asked_fraction": over_asks / max(1, agreed),
            }
        )
    return rows
