"""Simulation: owner agents, the Fig-1 scenario builder, level comparison."""

from repro.simulation.comparison import LevelMetrics, build_levels, compare_levels
from repro.simulation.negotiation import (
    NegotiationOutcome,
    OwnerPreferences,
    convergence_experiment,
    negotiate_audience,
    negotiate_threshold,
)
from repro.simulation.owner import OwnerAgent
from repro.simulation.scenario import (
    AUDIENCES,
    PURPOSES,
    ROLES,
    Scenario,
    ScenarioConfig,
    build_scenario,
    extend_with_exams_mart,
    standard_annotations,
)

__all__ = [
    "AUDIENCES",
    "LevelMetrics",
    "NegotiationOutcome",
    "OwnerAgent",
    "OwnerPreferences",
    "PURPOSES",
    "ROLES",
    "Scenario",
    "ScenarioConfig",
    "build_levels",
    "build_scenario",
    "compare_levels",
    "convergence_experiment",
    "extend_with_exams_mart",
    "negotiate_audience",
    "negotiate_threshold",
    "standard_annotations",
]
