"""Simulated source owners for elicitation-cost experiments.

The paper's owners are humans in meetings; we model the properties its
arguments rely on: owners understand concrete reports easily, warehouse
schemas with effort, and raw source schemas poorly ("the managers in charge
of privacy are unaware of the details and the meaning of the data in the
tables"). An owner's ``expertise`` scales cost; confusion (needing a second
explanation) grows with artifact complexity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ElicitationError
from repro.core.levels import COMPREHENSION_WEIGHTS, ElicitationArtifact

__all__ = ["OwnerAgent"]


@dataclass
class OwnerAgent:
    """A deterministic simulated source owner (implements ``OwnerModel``)."""

    name: str
    expertise: float = 0.5  # 0 = privacy manager with no schema knowledge
    seed: int = 42
    confusion_scale: float = 0.08  # chance of needing a re-explanation, per weight unit
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.expertise <= 1.0:
            raise ElicitationError("expertise must be in [0, 1]")
        self._rng = random.Random(self.seed)

    def comprehension_cost(self, artifact: ElicitationArtifact) -> float:
        """Interaction units to understand one artifact.

        Base cost is the artifact's weight × element count; low expertise
        inflates it (up to 2×).
        """
        return artifact.effort() * (2.0 - self.expertise)

    def review(self, artifact: ElicitationArtifact) -> bool:
        """Whether the artifact is approved on the first pass.

        Confusion probability grows with the artifact kind's comprehension
        weight and shrinks with expertise — a source owner rarely needs a
        report re-explained, but source tables often take two meetings.
        """
        weight = COMPREHENSION_WEIGHTS[artifact.kind]
        p_confused = min(0.9, self.confusion_scale * weight * (1.5 - self.expertise))
        return self._rng.random() >= p_confused
