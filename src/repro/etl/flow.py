"""ETL flows: ordered operator pipelines with PLA checks and provenance capture.

A flow runs its operators in order; before each operator it consults the
ETL-level PLA registry (Fig 3b). In ``strict`` mode a violation aborts the
flow; otherwise the violating operator is *skipped* (its output never
materializes — privacy-by-construction) and the violation is recorded.
Every executed operator is also recorded into a
:class:`~repro.provenance.graph.ProvenanceGraph` for the elicitation tool.

Source and operator calls can additionally run under a
:class:`~repro.resilience.ResiliencePolicy`: faults (injected or real) are
retried with backoff, escalated failures fail *closed* — the operator's
output never materializes, everything downstream of it cascades into
``skipped``, and the fault is recorded in :attr:`FlowResult.faults` — and a
propagated :class:`~repro.resilience.Deadline` bounds the whole flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ComplianceError, EtlError, FaultError
from repro.etl.annotations import EtlPlaRegistry, EtlViolation
from repro.etl.operators import EtlOperator, ExtractOp
from repro.obs import instrument
from repro.obs.trace import TRACER
from repro.provenance.graph import DatasetNode, ProvenanceGraph, TransformNode
from repro.relational.catalog import Catalog
from repro.relational.table import Table
from repro.resilience.retry import Deadline
from repro.resilience.runtime import ResiliencePolicy, default_policy

__all__ = ["EtlFlow", "FlowFault", "FlowResult"]


@dataclass(frozen=True)
class FlowFault:
    """One operator that failed for availability (not compliance) reasons."""

    op: str
    target: str
    kind: str  # exception class name, e.g. "SourceUnavailableError"
    detail: str

    def __str__(self) -> str:
        return f"{self.op} [{self.target}] {self.kind}: {self.detail}"


def _parse_identity(identity: str):
    """A symbolic RowId standing for one base relation in static checks."""
    from repro.relational.table import RowId

    provider, _, table = identity.partition("/")
    return RowId(provider, table, 0)


@dataclass
class FlowResult:
    """Outcome of one flow run."""

    catalog: Catalog
    executed: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    violations: list[EtlViolation] = field(default_factory=list)
    faults: list[FlowFault] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True if the run completed without a PLA violation or a fault."""
        return not self.violations and not self.faults

    @property
    def degraded(self) -> bool:
        """True if an availability failure left part of the flow unloaded."""
        return bool(self.faults)

    def summary(self) -> str:
        base = (
            f"executed {len(self.executed)} op(s), skipped {len(self.skipped)}, "
            f"violations {len(self.violations)}"
        )
        if self.faults:
            base += f", faults {len(self.faults)}"
        return base


class EtlFlow:
    """An ordered ETL pipeline."""

    def __init__(self, name: str) -> None:
        if not name:
            raise EtlError("flow name must be non-empty")
        self.name = name
        self.operators: list[EtlOperator] = []

    def add(self, op: EtlOperator) -> EtlOperator:
        """Append an operator; output names must be unique within the flow."""
        if any(existing.output == op.output for existing in self.operators):
            raise EtlError(f"output name {op.output!r} already produced in flow")
        self.operators.append(op)
        return op

    def validate(self, catalog: Catalog) -> None:
        """Check that every non-extract input is available when needed."""
        available = set(catalog.table_names()) | set(catalog.view_names())
        for op in self.operators:
            if not isinstance(op, ExtractOp):
                missing = [i for i in op.inputs if i not in available]
                if missing:
                    raise EtlError(
                        f"operator {op.name!r} needs unavailable inputs {missing}"
                    )
            available.add(op.output)

    def static_footprints(
        self, catalog: Catalog | None = None
    ) -> dict[str, frozenset[str]]:
        """Per-output ``provider/table`` footprints, computed without running.

        Extract operators contribute their carried table's identity (plus
        any lineage it already carries); every other operator's output
        footprint is the union of its inputs'. This is the design-time
        approximation of the runtime lineage — exact for the operators in
        this library, since none of them drops whole input relations.
        """
        footprints: dict[str, frozenset[str]] = {}
        if catalog is not None:
            for name in catalog.table_names():
                table = catalog.table(name)
                runtime = {
                    f"{rid.provider}/{rid.table}" for rid in table.all_lineage()
                }
                footprints[name] = frozenset(runtime or {f"{table.provider}/{name}"})
        for op in self.operators:
            if isinstance(op, ExtractOp):
                table = op._input_table()
                runtime = {
                    f"{rid.provider}/{rid.table}" for rid in table.all_lineage()
                }
                footprints[op.output] = frozenset(
                    runtime or {f"{table.provider}/{table.name}"}
                )
                continue
            combined: set[str] = set()
            for name in op.inputs:
                combined |= footprints.get(name, frozenset())
            footprints[op.output] = frozenset(combined)
        return footprints

    def precheck(
        self, pla: EtlPlaRegistry, catalog: Catalog | None = None
    ) -> list[EtlViolation]:
        """Design-time PLA check: find violations before any data moves.

        §6 asks for "automated privacy management support at design time or
        runtime"; :meth:`run` is the runtime half, this is the design-time
        half. Uses symbolic footprints, so it needs no source data beyond
        the extract declarations.
        """
        from repro.relational.schema import Schema
        from repro.relational.table import Table

        footprints = self.static_footprints(catalog)
        violations: list[EtlViolation] = []

        def phantom(name: str) -> Table:
            """An empty stand-in whose lineage footprint is symbolic."""
            table = Table(name, Schema([]), provider="static")
            footprint = footprints.get(name, frozenset())
            table.all_lineage = lambda fp=footprint: frozenset(  # type: ignore[method-assign]
                _parse_identity(identity) for identity in fp
            )
            return table

        for op in self.operators:
            inputs = [phantom(name) for name in op.inputs]
            violations.extend(pla.check_op(op, inputs, catalog or Catalog()))
        return violations

    def run(
        self,
        catalog: Catalog | None = None,
        *,
        pla: EtlPlaRegistry | None = None,
        graph: ProvenanceGraph | None = None,
        strict: bool = False,
        resilience: ResiliencePolicy | None = None,
        deadline: Deadline | None = None,
    ) -> FlowResult:
        """Execute the flow.

        ``catalog`` is mutated in place (outputs registered); a fresh one is
        created if omitted. With ``strict`` a violation raises
        :class:`ComplianceError`; otherwise it is recorded and the operator
        skipped. Skipping cascades: operators depending on a skipped output
        are skipped too.

        ``resilience`` (defaulting to the ``REPRO_FAULTS`` process policy,
        when installed) wraps every operator in the injector→retry→breaker
        call path; an escalated availability failure is handled exactly
        like a PLA skip — fail closed: the output never materializes,
        dependents cascade into ``skipped``, and the fault is recorded in
        :attr:`FlowResult.faults` (with ``strict``, it raises). ``deadline``
        bounds the whole flow; expiry fails the remaining operators.

        When observability is on, the run emits an ``etl.flow`` span with
        one ``etl.op`` child per executed operator, counts operators
        executed/skipped/failed, and records PLA skips as warehouse-level
        ``deny_op`` enforcement decisions.
        """
        if resilience is None:
            resilience = default_policy()
        if not TRACER.active():
            return self._run(catalog, pla=pla, graph=graph, strict=strict,
                             resilience=resilience, deadline=deadline,
                             observing=False)
        with TRACER.span("etl.flow", {"flow": self.name}) as span:
            result = self._run(catalog, pla=pla, graph=graph, strict=strict,
                               resilience=resilience, deadline=deadline,
                               observing=True)
            span.set_tag("executed", len(result.executed))
            span.set_tag("skipped", len(result.skipped))
            span.set_tag("violations", len(result.violations))
            if result.faults:
                span.set_tag("faults", len(result.faults))
            return result

    @staticmethod
    def _fault_target(op: EtlOperator) -> str:
        """The injection/breaker identity of one operator's work.

        Extracts are remote source calls and carry the same
        ``provider/table`` identity used by lineage and audit footprints;
        everything else is local ETL work under ``etl/<op>``.
        """
        if isinstance(op, ExtractOp):
            table = op._input_table()
            return f"{table.provider}/{table.name}"
        return f"etl/{op.name}"

    def _run(
        self,
        catalog: Catalog | None,
        *,
        pla: EtlPlaRegistry | None,
        graph: ProvenanceGraph | None,
        strict: bool,
        resilience: ResiliencePolicy | None,
        deadline: Deadline | None,
        observing: bool,
    ) -> FlowResult:
        cat = catalog if catalog is not None else Catalog()
        self.validate(cat)
        result = FlowResult(catalog=cat)
        unavailable: set[str] = set()

        for op in self.operators:
            if any(i in unavailable for i in op.inputs):
                result.skipped.append(op.name)
                unavailable.add(op.output)
                if observing:
                    instrument.ETL_OPS.inc(1, ("skipped",))
                continue
            inputs = self._resolve_inputs(op, cat)
            if pla is not None:
                violations = pla.check_op(op, inputs, cat)
                if violations:
                    result.violations.extend(violations)
                    if observing:
                        instrument.record_decision(
                            instrument.LEVEL_WAREHOUSE, "deny_op", "etl_pla",
                            count=len(violations),
                        )
                        instrument.ETL_OPS.inc(1, ("skipped",))
                    if strict:
                        raise ComplianceError(
                            f"ETL flow {self.name!r} aborted: "
                            + "; ".join(str(v) for v in violations)
                        )
                    result.skipped.append(op.name)
                    unavailable.add(op.output)
                    continue
            try:
                output = self._execute(
                    op, cat, resilience=resilience, deadline=deadline,
                    observing=observing,
                )
            except FaultError as exc:
                fault = FlowFault(
                    op=op.name,
                    target=self._fault_target(op),
                    kind=type(exc).__name__,
                    detail=str(exc),
                )
                result.faults.append(fault)
                if observing:
                    instrument.ETL_OPS.inc(1, ("failed",))
                if strict:
                    raise
                result.skipped.append(op.name)
                unavailable.add(op.output)
                continue
            if observing:
                instrument.ETL_OPS.inc(1, ("executed",))
            output.name = op.output
            cat.add_table(output, replace=True)
            result.executed.append(op.name)
            if graph is not None:
                self._record(graph, op, inputs, output)
        return result

    def _execute(
        self,
        op: EtlOperator,
        cat: Catalog,
        *,
        resilience: ResiliencePolicy | None,
        deadline: Deadline | None,
        observing: bool,
    ) -> Table:
        if deadline is not None:
            deadline.check(f"ETL flow {self.name!r}")
        if observing:
            with TRACER.span("etl.op", {"op": op.name, "kind": op.kind}):
                if resilience is not None:
                    return resilience.call(
                        self._fault_target(op),
                        lambda: op.run(cat),
                        deadline=deadline,
                    )
                return op.run(cat)
        if resilience is not None:
            return resilience.call(
                self._fault_target(op), lambda: op.run(cat), deadline=deadline
            )
        return op.run(cat)

    @staticmethod
    def _resolve_inputs(op: EtlOperator, catalog: Catalog) -> list[Table]:
        if isinstance(op, ExtractOp):
            # The extract op carries its table; expose it for PLA checks.
            return [op.run(catalog)]
        return [catalog.table(name) for name in op.inputs]

    def _record(
        self,
        graph: ProvenanceGraph,
        op: EtlOperator,
        inputs: list[Table],
        output: Table,
    ) -> None:
        input_nodes = [
            DatasetNode(
                name=t.name,
                kind="source" if isinstance(op, ExtractOp) else "staging",
                owner=t.provider,
            )
            for t in inputs
        ]
        output_node = DatasetNode(
            name=output.name,
            kind="warehouse" if op.kind == "load" else "staging",
            owner=output.provider,
        )
        graph.add_transform(
            TransformNode(name=f"{self.name}.{op.name}", operation=op.kind),
            input_nodes,
            output_node,
        )

    def describe(self) -> str:
        lines = [f"ETL flow {self.name!r}:"]
        lines.extend(f"  {i + 1}. {op.describe()}" for i, op in enumerate(self.operators))
        return "\n".join(lines)
