"""PLA annotations on ETL flows (Fig 3b): restricting operations on sources.

Constraints are *provenance-based*: instead of inspecting operator wiring
only, checks look at the base footprint (why-provenance) of each operator's
inputs, so a prohibited combination is caught no matter how many
intermediate steps launder it — exactly the compliance-through-provenance
role §4 assigns to lineage techniques.

Relations are addressed as ``"provider/table"`` strings (the identity of a
base table as carried in every :class:`~repro.relational.table.RowId`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.errors import PolicyError
from repro.etl.operators import EtlOperator, IntegrateOp
from repro.relational.catalog import Catalog
from repro.relational.table import Table

__all__ = [
    "EtlViolation",
    "EtlConstraint",
    "JoinProhibition",
    "OperationRestriction",
    "IntegrationProhibition",
    "EtlPlaRegistry",
]


@dataclass(frozen=True)
class EtlViolation:
    """One detected violation of an ETL-level PLA constraint."""

    operator: str
    constraint: str
    message: str

    def __str__(self) -> str:
        return f"[{self.constraint}] {self.operator}: {self.message}"


def _footprint(table: Table) -> frozenset[str]:
    """The ``provider/table`` identities in a table's base lineage."""
    return frozenset(
        f"{row_id.provider}/{row_id.table}" for row_id in table.all_lineage()
    )


class EtlConstraint(abc.ABC):
    """Base class for ETL-level PLA constraints."""

    def __init__(self, name: str, owner: str, reason: str = "") -> None:
        if not name:
            raise PolicyError("constraint name must be non-empty")
        self.name = name
        self.owner = owner
        self.reason = reason

    @abc.abstractmethod
    def check(
        self, op: EtlOperator, inputs: list[Table], catalog: Catalog
    ) -> EtlViolation | None:
        """Return a violation if running ``op`` on ``inputs`` breaks this PLA."""

    def describe(self) -> str:
        suffix = f" ({self.reason})" if self.reason else ""
        return f"{self.name} by {self.owner}{suffix}"


class JoinProhibition(EtlConstraint):
    """Data from ``left`` must never be combined with data from ``right``.

    Triggered by any operator that merges the two footprints into one output
    (joins and integrations), regardless of intermediate laundering.
    """

    _COMBINING_KINDS = frozenset({"join", "integrate"})

    def __init__(
        self, name: str, owner: str, left: str, right: str, reason: str = ""
    ) -> None:
        super().__init__(name, owner, reason)
        self.left = left
        self.right = right

    def check(
        self, op: EtlOperator, inputs: list[Table], catalog: Catalog
    ) -> EtlViolation | None:
        if op.kind not in self._COMBINING_KINDS or len(inputs) < 2:
            return None
        footprints = [_footprint(t) for t in inputs]
        pair = {self.left, self.right}
        for i, fp_a in enumerate(footprints):
            for fp_b in footprints[i + 1 :]:
                if (self.left in fp_a and self.right in fp_b) or (
                    self.right in fp_a and self.left in fp_b
                ):
                    return EtlViolation(
                        operator=op.name,
                        constraint=self.name,
                        message=(
                            f"would combine {sorted(pair)} "
                            f"(prohibited by {self.owner})"
                        ),
                    )
        return None


class OperationRestriction(EtlConstraint):
    """Certain operator kinds are forbidden on data descending from a relation."""

    def __init__(
        self,
        name: str,
        owner: str,
        relation: str,
        forbidden_kinds: frozenset[str] | set[str],
        reason: str = "",
    ) -> None:
        super().__init__(name, owner, reason)
        if not forbidden_kinds:
            raise PolicyError(f"restriction {name!r} forbids nothing")
        self.relation = relation
        self.forbidden_kinds = frozenset(forbidden_kinds)

    def check(
        self, op: EtlOperator, inputs: list[Table], catalog: Catalog
    ) -> EtlViolation | None:
        if op.kind not in self.forbidden_kinds:
            return None
        if any(self.relation in _footprint(t) for t in inputs):
            return EtlViolation(
                operator=op.name,
                constraint=self.name,
                message=(
                    f"{op.kind} is forbidden on data from {self.relation} "
                    f"(restricted by {self.owner})"
                ),
            )
        return None


class IntegrationProhibition(EtlConstraint):
    """An owner's data may not be used to clean/resolve other owners' data.

    This is §5 annotation kind (v) stated negatively: the *reference* side of
    an :class:`IntegrateOp` must not descend from the protected owner while
    the target belongs to someone else.
    """

    def __init__(self, name: str, owner: str, reason: str = "") -> None:
        super().__init__(name, owner, reason)

    def check(
        self, op: EtlOperator, inputs: list[Table], catalog: Catalog
    ) -> EtlViolation | None:
        if not isinstance(op, IntegrateOp) or len(inputs) < 2:
            return None
        target, reference = inputs[0], inputs[1]
        ref_owners = {rid.provider for rid in reference.all_lineage()}
        target_owners = {rid.provider for rid in target.all_lineage()}
        if self.owner in ref_owners and (target_owners - {self.owner}):
            return EtlViolation(
                operator=op.name,
                constraint=self.name,
                message=(
                    f"{self.owner}'s data would be used to clean data of "
                    f"{sorted(target_owners - {self.owner})}"
                ),
            )
        return None


@dataclass
class EtlPlaRegistry:
    """All ETL-level PLA constraints agreed with the source owners."""

    constraints: list[EtlConstraint] = field(default_factory=list)

    def add(self, constraint: EtlConstraint) -> EtlConstraint:
        if any(c.name == constraint.name for c in self.constraints):
            raise PolicyError(f"constraint {constraint.name!r} already registered")
        self.constraints.append(constraint)
        return constraint

    def check_op(
        self, op: EtlOperator, inputs: list[Table], catalog: Catalog
    ) -> list[EtlViolation]:
        """Check one operator against every constraint."""
        violations = []
        for constraint in self.constraints:
            violation = constraint.check(op, inputs, catalog)
            if violation is not None:
                violations.append(violation)
        return violations

    def describe(self) -> str:
        if not self.constraints:
            return "(no ETL PLA constraints)"
        return "\n".join(c.describe() for c in self.constraints)
