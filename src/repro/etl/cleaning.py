"""Reusable cleaning transforms for StandardizeOp and friends."""

from __future__ import annotations

import datetime
from typing import Any

from repro.relational.types import parse_date

__all__ = [
    "normalize_name",
    "normalize_code",
    "to_iso_date",
    "strip_whitespace",
    "titlecase",
]


def strip_whitespace(value: Any) -> Any:
    """Trim surrounding whitespace from strings; pass others through."""
    return value.strip() if isinstance(value, str) else value


def titlecase(value: Any) -> Any:
    """Title-case person names ('alice' → 'Alice')."""
    return value.strip().title() if isinstance(value, str) else value


def normalize_name(value: Any) -> Any:
    """Canonical person-name form used as an entity-resolution key."""
    if not isinstance(value, str):
        return value
    return " ".join(value.split()).title()


def normalize_code(value: Any) -> Any:
    """Canonical code form: uppercase, no spaces ('dh ' → 'DH')."""
    if not isinstance(value, str):
        return value
    return "".join(value.split()).upper()


def to_iso_date(value: Any) -> Any:
    """Coerce strings/dates to ``datetime.date`` (accepts dd/mm/yyyy)."""
    if isinstance(value, datetime.date):
        return value
    if isinstance(value, str):
        return parse_date(value)
    return value
