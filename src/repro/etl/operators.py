"""ETL operators: the typed steps an ETL flow is built from.

Every operator declares its ``kind`` — the vocabulary ETL-level PLA
annotations (Fig 3b) restrict: ``extract``, ``standardize``, ``filter``,
``derive``, ``dedupe``, ``join``, ``integrate`` (cleaning/entity resolution
that uses one owner's data to refine another's — §5 annotation kind v),
``aggregate``, and ``load``.

Operators are pure with respect to the catalog: ``run`` reads the declared
inputs and returns the output table; the flow registers it.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Sequence

from repro.errors import EtlError
from repro.relational import algebra
from repro.relational.catalog import Catalog
from repro.relational.expressions import Expr
from repro.relational.table import RowProvenance, Table

__all__ = [
    "EtlOperator",
    "ExtractOp",
    "StandardizeOp",
    "FilterOp",
    "DeriveOp",
    "DedupeOp",
    "JoinOp",
    "IntegrateOp",
    "AggregateOp",
    "LoadOp",
]


class EtlOperator(abc.ABC):
    """Base class: name, input table names, output table name, and a kind."""

    kind: str = "abstract"

    def __init__(self, name: str, inputs: Sequence[str], output: str) -> None:
        if not name or not output:
            raise EtlError("operator name and output must be non-empty")
        if not inputs:
            raise EtlError(f"operator {name!r} needs at least one input")
        self.name = name
        self.inputs = tuple(inputs)
        self.output = output

    @abc.abstractmethod
    def run(self, catalog: Catalog) -> Table:
        """Execute against the catalog and return the output table."""

    def describe(self) -> str:
        return f"{self.kind}:{self.name} ({', '.join(self.inputs)} -> {self.output})"

    def _input(self, catalog: Catalog, name: str) -> Table:
        return catalog.table(name)


class ExtractOp(EtlOperator):
    """Bring an exported provider table into the staging namespace.

    The table object comes from the provider (usually through its gateway);
    extraction re-registers it under the staging name while keeping its
    provider tag and provenance.
    """

    kind = "extract"

    def __init__(self, name: str, table: Table, output: str) -> None:
        super().__init__(name, [table.name], output)
        self._table = table

    def run(self, catalog: Catalog) -> Table:
        staged = Table.derived(
            self.output,
            self._table.schema,
            list(self._table.rows),
            list(self._table.provenance),
            provider=self._table.provider,
        )
        return staged

    def _input_table(self) -> Table:
        """The carried table (used by static flow analysis)."""
        return self._table


class StandardizeOp(EtlOperator):
    """Apply per-column value transforms (date formats, casing, trimming)."""

    kind = "standardize"

    def __init__(
        self,
        name: str,
        input_name: str,
        output: str,
        transforms: dict[str, Callable[[Any], Any]],
    ) -> None:
        super().__init__(name, [input_name], output)
        if not transforms:
            raise EtlError(f"standardize op {name!r} has no transforms")
        self.transforms = dict(transforms)

    def run(self, catalog: Catalog) -> Table:
        table = self._input(catalog, self.inputs[0])
        indices = {
            column: table.schema.index_of(column) for column in self.transforms
        }
        rows = []
        for row in table.rows:
            mutated = list(row)
            for column, fn in self.transforms.items():
                idx = indices[column]
                if mutated[idx] is not None:
                    mutated[idx] = fn(mutated[idx])
            rows.append(tuple(mutated))
        return Table.derived(
            self.output, table.schema, rows, list(table.provenance),
            provider=table.provider,
        )


class FilterOp(EtlOperator):
    """Keep rows matching a predicate."""

    kind = "filter"

    def __init__(self, name: str, input_name: str, output: str, predicate: Expr) -> None:
        super().__init__(name, [input_name], output)
        self.predicate = predicate

    def run(self, catalog: Catalog) -> Table:
        table = self._input(catalog, self.inputs[0])
        out = algebra.select(table, self.predicate, name=self.output)
        out.provider = table.provider
        return out


class DeriveOp(EtlOperator):
    """Append computed columns."""

    kind = "derive"

    def __init__(
        self,
        name: str,
        input_name: str,
        output: str,
        additions: Sequence[tuple[str, Expr]],
    ) -> None:
        super().__init__(name, [input_name], output)
        if not additions:
            raise EtlError(f"derive op {name!r} adds no columns")
        self.additions = tuple(additions)

    def run(self, catalog: Catalog) -> Table:
        table = self._input(catalog, self.inputs[0])
        out = algebra.extend(table, list(self.additions), name=self.output)
        out.provider = table.provider
        return out


class DedupeOp(EtlOperator):
    """Remove duplicate rows (provenance of merged rows is unioned)."""

    kind = "dedupe"

    def __init__(self, name: str, input_name: str, output: str) -> None:
        super().__init__(name, [input_name], output)

    def run(self, catalog: Catalog) -> Table:
        table = self._input(catalog, self.inputs[0])
        out = algebra.distinct(table, name=self.output)
        out.provider = table.provider
        return out


class JoinOp(EtlOperator):
    """Equi-join two staged tables — the operation Fig 3's PLAs restrict."""

    kind = "join"

    def __init__(
        self,
        name: str,
        left: str,
        right: str,
        on: Sequence[tuple[str, str]],
        output: str,
        *,
        how: str = "inner",
    ) -> None:
        super().__init__(name, [left, right], output)
        self.on = tuple(on)
        self.how = how

    def run(self, catalog: Catalog) -> Table:
        left = self._input(catalog, self.inputs[0])
        right = self._input(catalog, self.inputs[1])
        joined = algebra.join(
            left, right, list(self.on), how=self.how, name=self.output
        )
        # Equi-join keys are redundant on the right side; drop the duplicate
        # and give the left key back its plain name (ETL-tool convention).
        drop = {f"{right.name}.{rcol}" for _, rcol in self.on}
        restore = {f"{left.name}.{lcol}": lcol for lcol, _ in self.on}
        specs: list[str | tuple[str, Any]] = []
        for column in joined.schema.names:
            if column in drop:
                continue
            if column in restore:
                from repro.relational.expressions import Col

                specs.append((restore[column], Col(column)))
            else:
                specs.append(column)
        return algebra.project(joined, specs, name=self.output)


class IntegrateOp(EtlOperator):
    """Fill missing values in a target using a reference owned by someone else.

    This is the §5 annotation-kind-(v) operation: "the permission to use
    information to clean/resolve data from other owners". The reference is
    joined on ``key`` and ``fill_column`` of the target is completed from
    ``reference_column`` where NULL. Lineage of completed rows includes the
    reference rows used, so integration is auditable.
    """

    kind = "integrate"

    def __init__(
        self,
        name: str,
        target: str,
        reference: str,
        output: str,
        *,
        key: tuple[str, str],
        fill_column: str,
        reference_column: str,
    ) -> None:
        super().__init__(name, [target, reference], output)
        self.key = key
        self.fill_column = fill_column
        self.reference_column = reference_column

    def run(self, catalog: Catalog) -> Table:
        target = self._input(catalog, self.inputs[0])
        reference = self._input(catalog, self.inputs[1])
        fill_idx = target.schema.index_of(self.fill_column)
        tkey_idx = target.schema.index_of(self.key[0])
        rkey_idx = reference.schema.index_of(self.key[1])
        rcol_idx = reference.schema.index_of(self.reference_column)

        lookup: dict[Any, int] = {}
        for j, row in enumerate(reference.rows):
            key = row[rkey_idx]
            if key is not None and key not in lookup:
                lookup[key] = j

        rows = []
        provs: list[RowProvenance] = []
        for i, row in enumerate(target.rows):
            prov = target.provenance[i]
            mutated = list(row)
            if mutated[fill_idx] is None:
                j = lookup.get(mutated[tkey_idx])
                if j is not None:
                    mutated[fill_idx] = reference.rows[j][rcol_idx]
                    prov = prov.merged(
                        RowProvenance(
                            lineage=reference.provenance[j].lineage,
                            where={
                                self.fill_column: reference.provenance[j].where_of(
                                    self.reference_column
                                )
                            },
                        )
                    )
            rows.append(tuple(mutated))
            provs.append(prov)
        return Table.derived(
            self.output, target.schema, rows, provs, provider=target.provider
        )


class AggregateOp(EtlOperator):
    """Pre-aggregate during ETL (summary staging tables)."""

    kind = "aggregate"

    def __init__(
        self,
        name: str,
        input_name: str,
        output: str,
        *,
        group_by: Sequence[str],
        aggs: Sequence[algebra.AggSpec],
    ) -> None:
        super().__init__(name, [input_name], output)
        self.group_by = tuple(group_by)
        self.aggs = tuple(aggs)

    def run(self, catalog: Catalog) -> Table:
        table = self._input(catalog, self.inputs[0])
        return algebra.aggregate(
            table, list(self.group_by), list(self.aggs), name=self.output
        )


class LoadOp(EtlOperator):
    """Publish a staged table under its warehouse name."""

    kind = "load"

    def __init__(self, name: str, input_name: str, output: str) -> None:
        super().__init__(name, [input_name], output)

    def run(self, catalog: Catalog) -> Table:
        table = self._input(catalog, self.inputs[0])
        return Table.derived(
            self.output,
            table.schema,
            list(table.rows),
            list(table.provenance),
            provider="warehouse",
        )
