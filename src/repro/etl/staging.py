"""The staging area: where extracted source data lands before the warehouse.

"Typically, but not necessarily, before loading the actual warehouse and in
order to reduce the complexity of ETL, data is extracted from the data
sources and stored in a so-called staging area" (§4). The staging area is a
named region of the BI provider's catalog with a ``stg_<provider>_<table>``
convention and per-table intake bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EtlError
from repro.relational.catalog import Catalog
from repro.relational.table import Table
from repro.sources.filters import GatewayReport

__all__ = ["StagingArea", "IntakeRecord"]


@dataclass(frozen=True)
class IntakeRecord:
    """One extraction into staging: what arrived, from whom, filtered how."""

    staged_name: str
    provider: str
    source_table: str
    rows: int
    gateway_report: GatewayReport | None = None


@dataclass
class StagingArea:
    """Naming convention + intake ledger over a shared catalog."""

    catalog: Catalog
    prefix: str = "stg"
    intake: list[IntakeRecord] = field(default_factory=list)

    def staged_name(self, provider: str, table: str) -> str:
        return f"{self.prefix}_{provider}_{table}"

    def stage(
        self,
        table: Table,
        *,
        gateway_report: GatewayReport | None = None,
    ) -> Table:
        """Register an exported table under its staging name."""
        name = self.staged_name(table.provider, table.name)
        staged = Table.derived(
            name,
            table.schema,
            list(table.rows),
            list(table.provenance),
            provider=table.provider,
        )
        self.catalog.add_table(staged, replace=True)
        self.intake.append(
            IntakeRecord(
                staged_name=name,
                provider=table.provider,
                source_table=table.name,
                rows=len(staged),
                gateway_report=gateway_report,
            )
        )
        return staged

    def staged_tables(self) -> tuple[str, ...]:
        """All staging-area table names currently in the catalog."""
        return tuple(
            name
            for name in self.catalog.table_names()
            if name.startswith(self.prefix + "_")
        )

    def record_for(self, staged_name: str) -> IntakeRecord:
        for record in reversed(self.intake):
            if record.staged_name == staged_name:
                return record
        raise EtlError(f"no intake record for {staged_name!r}")
