"""Entity resolution across providers — the integration step PLAs govern.

The paper's §1 names entity resolution as the canonical "use data from one
provider to clean/refine data from another" operation, and §5's annotation
kind (v) makes it permission-gated. This module implements a deterministic
key-based resolver: values from several tables are clustered by a normalized
key, each cluster gets a canonical entity id, and tables can be rewritten to
canonical ids. Cluster membership records which providers contributed, so
integration-permission checks have the evidence they need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import EtlError
from repro.etl.cleaning import normalize_name
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import ColumnType

__all__ = ["EntityCluster", "ResolutionResult", "resolve_entities", "rewrite_to_canonical"]


@dataclass(frozen=True)
class EntityCluster:
    """One resolved entity: its id, canonical value, and member evidence."""

    entity_id: str
    canonical: str
    members: tuple[tuple[str, str], ...]  # (provider, original value)

    @property
    def providers(self) -> frozenset[str]:
        return frozenset(provider for provider, _ in self.members)


@dataclass
class ResolutionResult:
    """The output of entity resolution."""

    clusters: list[EntityCluster] = field(default_factory=list)
    by_original: dict[tuple[str, str], str] = field(default_factory=dict)

    def entity_of(self, provider: str, value: str) -> str | None:
        """Entity id for ``value`` as seen at ``provider`` (None if unknown)."""
        return self.by_original.get((provider, value))

    def cross_provider_clusters(self) -> list[EntityCluster]:
        """Clusters whose evidence spans more than one provider —
        exactly the ones an integration permission must cover."""
        return [c for c in self.clusters if len(c.providers) > 1]

    def mapping_table(self, *, name: str = "entity_map") -> Table:
        """The mapping as a relational table (loadable into staging)."""
        schema = Schema(
            [
                Column("entity_id", ColumnType.STRING, nullable=False),
                Column("provider", ColumnType.STRING, nullable=False),
                Column("original", ColumnType.STRING, nullable=False),
                Column("canonical", ColumnType.STRING, nullable=False),
            ]
        )
        table = Table(name, schema, provider="bi_provider")
        for cluster in self.clusters:
            for provider, original in cluster.members:
                table.insert((cluster.entity_id, provider, original, cluster.canonical))
        return table


def resolve_entities(
    tables: Sequence[tuple[Table, str]],
    *,
    key_fn: Callable[[str], str] = normalize_name,
) -> ResolutionResult:
    """Cluster values of the named column across ``(table, column)`` pairs.

    ``key_fn`` normalizes raw values into match keys; values sharing a key
    become one entity. Canonical value = the most frequent raw form (ties
    broken lexicographically); entity ids are stable (key-ordered).
    """
    if not tables:
        raise EtlError("resolve_entities needs at least one (table, column) pair")
    observations: dict[str, list[tuple[str, str]]] = {}
    for table, column in tables:
        idx = table.schema.index_of(column)
        for row in table.rows:
            value = row[idx]
            if value is None:
                continue
            key = key_fn(str(value))
            observations.setdefault(key, []).append((table.provider, str(value)))

    result = ResolutionResult()
    for n, key in enumerate(sorted(observations)):
        members = observations[key]
        counts: dict[str, int] = {}
        for _, original in members:
            counts[original] = counts.get(original, 0) + 1
        canonical = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[0][0]
        distinct_members = tuple(sorted(set(members)))
        cluster = EntityCluster(
            entity_id=f"E{n:05d}", canonical=canonical, members=distinct_members
        )
        result.clusters.append(cluster)
        for provider, original in distinct_members:
            result.by_original[(provider, original)] = cluster.entity_id
    return result


def rewrite_to_canonical(
    table: Table,
    column: str,
    resolution: ResolutionResult,
    *,
    name: str | None = None,
) -> Table:
    """Replace raw values in ``column`` with their cluster-canonical form.

    Values that resolution never saw stay as they are (cleaning must not
    invent data).
    """
    idx = table.schema.index_of(column)
    canonical_by_entity = {c.entity_id: c.canonical for c in resolution.clusters}
    rows = []
    for row in table.rows:
        mutated = list(row)
        value = mutated[idx]
        if value is not None:
            entity = resolution.entity_of(table.provider, str(value))
            if entity is not None:
                mutated[idx] = canonical_by_entity[entity]
        rows.append(tuple(mutated))
    return Table.derived(
        name or table.name,
        table.schema,
        rows,
        list(table.provenance),
        provider=table.provider,
    )
