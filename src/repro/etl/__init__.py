"""ETL: staging, operators, flows, and ETL-level PLA annotations."""

from repro.etl.annotations import (
    EtlConstraint,
    EtlPlaRegistry,
    EtlViolation,
    IntegrationProhibition,
    JoinProhibition,
    OperationRestriction,
)
from repro.etl.cleaning import (
    normalize_code,
    normalize_name,
    strip_whitespace,
    titlecase,
    to_iso_date,
)
from repro.etl.entity_resolution import (
    EntityCluster,
    ResolutionResult,
    resolve_entities,
    rewrite_to_canonical,
)
from repro.etl.flow import EtlFlow, FlowResult
from repro.etl.operators import (
    AggregateOp,
    DedupeOp,
    DeriveOp,
    EtlOperator,
    ExtractOp,
    FilterOp,
    IntegrateOp,
    JoinOp,
    LoadOp,
    StandardizeOp,
)
from repro.etl.staging import IntakeRecord, StagingArea

__all__ = [
    "AggregateOp",
    "DedupeOp",
    "DeriveOp",
    "EntityCluster",
    "EtlConstraint",
    "EtlFlow",
    "EtlOperator",
    "EtlPlaRegistry",
    "EtlViolation",
    "ExtractOp",
    "FilterOp",
    "FlowResult",
    "IntakeRecord",
    "IntegrateOp",
    "IntegrationProhibition",
    "JoinOp",
    "JoinProhibition",
    "LoadOp",
    "OperationRestriction",
    "ResolutionResult",
    "StagingArea",
    "StandardizeOp",
    "normalize_code",
    "normalize_name",
    "resolve_entities",
    "rewrite_to_canonical",
    "strip_whitespace",
    "titlecase",
    "to_iso_date",
]
