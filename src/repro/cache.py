"""Small shared caching primitives used by the execution and proof layers.

Two consumers:

* :mod:`repro.relational.plancache` — the normalized-plan/result cache of the
  columnar executor;
* :mod:`repro.core.containment` — memoized derivability/containment proofs
  (meta-report compliance is re-proved on every report-evolution step, and
  the proof inputs rarely change between steps).

Both are keyed by *fingerprints plus version counters*, so mutating the
underlying catalog/PLA state changes the key rather than leaving a stale
entry reachable; the LRU bound plus explicit invalidation hooks keep the
dead generations from accumulating.

Thread safety: every operation is guarded by an internal lock, and
get-or-compute call sites can make their fills **atomic with respect to
invalidation** via the generation token (:meth:`LRUCache.fill_token` /
:meth:`LRUCache.put_if`). The race this closes: reader misses, starts
computing; a writer mutates the state and invalidates; the reader's
``put`` then re-inserts a value computed against the pre-mutation state.
With a token captured at miss time the late fill is simply dropped —
a missed caching opportunity, never a stale entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

__all__ = ["CacheStats", "LRUCache"]

_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    dropped_fills: int = 0  # fills discarded because an invalidation intervened

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup in [0, 1]; 0.0 before the first lookup."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.invalidations = 0
        self.dropped_fills = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "dropped_fills": self.dropped_fills,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class LRUCache:
    """A bounded mapping with LRU eviction and observable statistics.

    Thread-safe: lookups, fills, and invalidations serialize on an internal
    lock (compute work belongs *outside* — see :meth:`get_or_compute`).
    ``maxsize <= 0`` disables storage entirely, turning every lookup into a
    miss — handy for cold-path measurements without branching at every call
    site.
    """

    maxsize: int = 1024
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict[Hashable, Any] = field(default_factory=OrderedDict)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )
    #: Bumped by every invalidation; fills guarded by :meth:`put_if` compare
    #: against the generation captured when the miss was observed.
    _generation: int = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, counting a hit or miss."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``; evicts the least-recently-used overflow."""
        with self._lock:
            self._put_locked(key, value)

    def _put_locked(self, key: Hashable, value: Any) -> None:
        if self.maxsize <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # -- invalidation-atomic fills -------------------------------------------

    def fill_token(self) -> int:
        """The current invalidation generation; capture it *at miss time*."""
        with self._lock:
            return self._generation

    def put_if(self, key: Hashable, value: Any, token: int) -> bool:
        """Store only if no invalidation ran since ``token`` was captured.

        Returns True when the fill landed. A False return means a writer
        invalidated concurrently with the caller's compute; the stale value
        is discarded (counted in ``stats.dropped_fills``) rather than
        resurrected into the post-invalidation cache.
        """
        with self._lock:
            if self._generation != token:
                self.stats.dropped_fills += 1
                return False
            self._put_locked(key, value)
            return True

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Cached value of ``compute()`` under ``key``.

        ``compute`` runs *outside* the lock (it may be slow or re-enter the
        cache); the resulting fill is generation-guarded, so an invalidation
        that lands mid-compute wins and the computed value is returned to
        the caller without being stored.
        """
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is not _MISSING:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return value
            self.stats.misses += 1
            token = self._generation
        value = compute()
        self.put_if(key, value, token)
        return value

    def invalidate_where(self, match: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``match``; returns the count."""
        with self._lock:
            doomed = [k for k in self._entries if match(k)]
            for k in doomed:
                del self._entries[k]
            self.stats.invalidations += len(doomed)
            self._generation += 1
            return len(doomed)

    def clear(self) -> int:
        """Drop everything; returns how many entries were removed."""
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += n
            self._generation += 1
            return n
