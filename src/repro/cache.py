"""Small shared caching primitives used by the execution and proof layers.

Two consumers:

* :mod:`repro.relational.plancache` — the normalized-plan/result cache of the
  columnar executor;
* :mod:`repro.core.containment` — memoized derivability/containment proofs
  (meta-report compliance is re-proved on every report-evolution step, and
  the proof inputs rarely change between steps).

Both are keyed by *fingerprints plus version counters*, so mutating the
underlying catalog/PLA state changes the key rather than leaving a stale
entry reachable; the LRU bound plus explicit invalidation hooks keep the
dead generations from accumulating.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

__all__ = ["CacheStats", "LRUCache"]

_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup in [0, 1]; 0.0 before the first lookup."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.invalidations = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class LRUCache:
    """A bounded mapping with LRU eviction and observable statistics.

    Not thread-safe (the whole engine is single-threaded); ``maxsize <= 0``
    disables storage entirely, turning every lookup into a miss — handy for
    cold-path measurements without branching at every call site.
    """

    maxsize: int = 1024
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict[Hashable, Any] = field(default_factory=OrderedDict)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, counting a hit or miss."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        self._entries.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``; evicts the least-recently-used overflow."""
        if self.maxsize <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Cached value of ``compute()`` under ``key``."""
        value = self._entries.get(key, _MISSING)
        if value is not _MISSING:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return value
        self.stats.misses += 1
        value = compute()
        self.put(key, value)
        return value

    def invalidate_where(self, match: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``match``; returns the count."""
        doomed = [k for k in self._entries if match(k)]
        for k in doomed:
            del self._entries[k]
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> int:
        """Drop everything; returns how many entries were removed."""
        n = len(self._entries)
        self._entries.clear()
        self.stats.invalidations += n
        return n
