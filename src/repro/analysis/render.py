"""Render a diagnostic report for terminals and machines.

Text output groups findings by severity (most severe first) with one
``severity: CODE at location: message`` line per finding plus an indented
fix hint — the compiler-diagnostic shape CI logs are easiest to read in.
JSON output is :meth:`DiagnosticReport.to_dict` verbatim, stable enough to
diff between runs.
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticReport

__all__ = ["render_text", "render_json"]


def render_text(report: DiagnosticReport, *, hints: bool = True) -> str:
    """Human-readable lint output."""
    lines = [report.summary()]
    for diagnostic in report.sorted():
        lines.append(str(diagnostic))
        if hints and diagnostic.fix_hint:
            lines.append(f"    hint: {diagnostic.fix_hint}")
    return "\n".join(lines)


def render_json(report: DiagnosticReport) -> str:
    """Machine-readable lint output (stable key order)."""
    return report.to_json()
