"""Quasi-identifier taint lattice over base warehouse columns.

Static analysis needs to know *how identifying* each base column is before
it can rank findings. Sensitivity forms a small join-semilattice

    PUBLIC  <  QUASI  <  SENSITIVE  <  DIRECT

where ``join`` is ``max``: a value computed from several columns is as
identifying as the most identifying input. The classification of base
columns is configuration, not inference — it is exactly the metadata the
paper's elicitation step produces when an owner marks attributes as
identifying/quasi-identifying/sensitive — so :class:`SensitivityMap` is an
explicit mapping with wildcard support, and the healthcare defaults mirror
the scenario's annotations (patient identity, HIV-revealing disease, and
the classic zip/birth-year/gender QI triple of k-anonymity).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = [
    "Sensitivity",
    "SensitivityMap",
    "healthcare_sensitivity",
    "join_sensitivity",
]


class Sensitivity(enum.IntEnum):
    """How identifying one base column is (lattice order = int order)."""

    PUBLIC = 0
    QUASI = 1  # quasi-identifier: identifying in combination
    SENSITIVE = 2  # the protected value itself (diagnosis, exam result)
    DIRECT = 3  # direct identifier (name, SSN)

    def __str__(self) -> str:
        return self.name.lower()


def join_sensitivity(values: Iterable[Sensitivity]) -> Sensitivity:
    """Lattice join (least upper bound) of a set of sensitivities."""
    out = Sensitivity.PUBLIC
    for value in values:
        if value > out:
            out = value
    return out


@dataclass
class SensitivityMap:
    """Classification of base columns, addressed as ``relation.column``.

    Lookup precedence: exact ``relation.column`` entry, then bare-column
    wildcard (an entry under the column name alone, which classifies that
    column in *every* relation), then :attr:`default`. The wildcard form is
    how one line of configuration covers the same attribute replicated
    through staging tables, warehouse tables, and views.
    """

    entries: dict[str, Sensitivity] = field(default_factory=dict)
    default: Sensitivity = Sensitivity.PUBLIC

    def classify(self, qualified: str) -> Sensitivity:
        """Sensitivity of one ``relation.column`` (or bare column) name."""
        if qualified in self.entries:
            return self.entries[qualified]
        column = qualified.rsplit(".", 1)[-1]
        return self.entries.get(column, self.default)

    def of_sources(self, sources: Iterable[str]) -> Sensitivity:
        """Join over a set of qualified base columns (empty set → PUBLIC)."""
        return join_sensitivity(self.classify(s) for s in sources)

    def of_predicate(self, predicate) -> Sensitivity:
        """Joined sensitivity a filter predicate can actually disclose.

        Uses :func:`repro.analysis.dataflow.live_predicate_columns`, so OR
        branches the solver proves unreachable against their sibling
        conjuncts do not widen the result — a filter like
        ``(patient = 'bob' AND cost < 10) OR flag`` under ``cost > 100``
        no longer taints the output with the identifier of the dead branch.
        """
        from repro.analysis.dataflow import live_predicate_columns

        return self.of_sources(live_predicate_columns(predicate))

    def with_entries(self, extra: Mapping[str, Sensitivity]) -> "SensitivityMap":
        merged = dict(self.entries)
        merged.update(extra)
        return SensitivityMap(entries=merged, default=self.default)

    def columns_at_least(self, floor: Sensitivity) -> tuple[str, ...]:
        """Configured names classified at or above ``floor``, sorted."""
        return tuple(
            sorted(name for name, s in self.entries.items() if s >= floor)
        )


def healthcare_sensitivity() -> SensitivityMap:
    """The Fig 1 healthcare scenario's column classification.

    Bare-column wildcards, so the same attribute is recognized in provider
    exports, staging tables, the warehouse star, and every view over it.
    """
    return SensitivityMap(
        entries={
            "patient": Sensitivity.DIRECT,
            "ssn": Sensitivity.DIRECT,
            "name": Sensitivity.DIRECT,
            "zip": Sensitivity.QUASI,
            "birth_year": Sensitivity.QUASI,
            "gender": Sensitivity.QUASI,
            "doctor": Sensitivity.QUASI,
            "disease": Sensitivity.SENSITIVE,
            "result": Sensitivity.SENSITIVE,
        }
    )
