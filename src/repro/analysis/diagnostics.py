"""Typed diagnostics: the output vocabulary of the static analyzer.

Every finding the analyzer emits is a :class:`Diagnostic` with a *stable
code* (so CI pipelines can allowlist/denylist findings), a severity, a
location string (``kind:name`` or ``kind:name/part``), an owner-readable
message, and a fix hint. :class:`DiagnosticReport` aggregates findings over
a whole catalog sweep and knows how to map severities to exit codes —
mirroring compiler/linter conventions (Pleak-style typed leak reports).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

__all__ = ["Severity", "Diagnostic", "DiagnosticReport", "CODES"]


class Severity(enum.IntEnum):
    """Finding severity; ordering is by urgency (ERROR sorts highest)."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


#: Registry of stable diagnostic codes. Codes are never renumbered; retired
#: codes are kept here (marked retired) so historic reports stay readable.
CODES: dict[str, str] = {
    "PLA001": "uncovered-column: a sensitive column is exposed by a "
    "meta-report whose PLA carries no annotation protecting it",
    "PLA002": "contradictory-annotations: two annotations of one PLA "
    "cannot be satisfied together",
    "PLA003": "shadowed-rule: an annotation can never change an outcome "
    "because a stronger annotation in the same PLA subsumes it",
    "PLA004": "dead-intensional-predicate: an intensional condition can "
    "never fire (unknown columns, tautology, or nothing to suppress)",
    "PLA005": "join-prohibition-reachable: data lineage already merges, or "
    "an ETL operator would merge, two relations a PLA prohibits combining",
    "ETL001": "pla-unchecked-operator: an operator combines data of several "
    "owners but no ETL-level PLA constraint covers the combination",
    "RPT001": "report-escapes-metareports: a catalog report is not "
    "derivable from any approved meta-report",
    "RPT002": "identifying-detail-report: a non-aggregate report copies a "
    "direct identifier into its output",
    "RPT003": "identifier-conditioned-report: a report's selection "
    "predicate filters on a direct identifier, disclosing it even though "
    "it is projected away",
    "VER001": "report-escapes-approved-region: a report can deliver a row "
    "outside the region its covering meta-report's approved definition "
    "admits",
    "VER002": "metareport-weaker-than-source-policy: a meta-report's "
    "runtime region admits a row a source/warehouse policy excludes",
    "VER003": "unsatisfiable-intensional-condition: a PLA visibility "
    "condition is provably unsatisfiable — it suppresses every row",
    "VER004": "vacuous-intensional-condition: a PLA visibility condition "
    "is provably a tautology — it never suppresses anything",
    "VER005": "metareport-delivers-nothing: a meta-report's runtime "
    "region is provably empty; every report over it is vacuously compliant",
    "VER006": "static-runtime-drift: a synthesized counterexample did not "
    "reproduce its violation when replayed through the runtime engine",
    "ING001": "unknown-relation: an ingested statement reads a table or "
    "view that exists neither in the star schema nor among the suite's own "
    "definitions",
    "ING002": "unknown-column: an ingested statement references a column "
    "its FROM relations do not provide",
    "ING003": "ambiguous-name: an unqualified column name in an ingested "
    "statement matches more than one relation in scope",
    "ING004": "unsupported-construct: an ingested statement uses SQL the "
    "ingestion grammar recognizes but cannot model (fails closed)",
    "ING005": "parse-error: an ingested statement is not syntactically "
    "valid in the declared dialect",
    "ING006": "dialect-normalization: a dialect-specific construct was "
    "rewritten to its ANSI equivalent during ingestion (informational)",
    "ING007": "lineage-widening: static lineage of an ingested report "
    "widened beyond its projected outputs (predicate or derivation "
    "discloses extra base columns)",
    "ING008": "duplicate-name: a suite defines the same view or report "
    "name twice",
    "ING009": "shape-mismatch: the branches of a set operation do not "
    "produce the same number of columns, so the positional union cannot "
    "align them",
    "ING010": "unmodeled-analytic-construct: an ingested statement uses a "
    "window function or another analytic shape the static-lineage model "
    "does not cover yet (fails closed with a typed diagnostic, never a "
    "crash)",
}


def _location_key(location: str) -> tuple[list[str], int]:
    """Sort key for a location string, numeric-aware on a trailing line.

    ``suite:reports.sql:10`` must sort *after* ``suite:reports.sql:2`` —
    a plain lexicographic compare puts line 10 first. Locations without a
    trailing line number sort before any numbered location of the same
    prefix.
    """
    parts = location.split(":")
    if parts and parts[-1].isdigit():
        return (parts[:-1], int(parts[-1]))
    return (parts, -1)


@dataclass(frozen=True)
class Diagnostic:
    """One static finding."""

    code: str
    severity: Severity
    location: str  # e.g. "metareport:mr_0", "flow:healthcare_load/join_cost"
    message: str
    fix_hint: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def to_dict(self) -> dict:
        out = {
            "code": self.code,
            "severity": str(self.severity),
            "location": self.location,
            "message": self.message,
        }
        if self.fix_hint:
            out["fix_hint"] = self.fix_hint
        return out

    def __str__(self) -> str:
        return f"{self.severity}: {self.code} at {self.location}: {self.message}"


@dataclass
class DiagnosticReport:
    """All findings of one analyzer run, ordered most severe first."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Artifact counts the sweep covered, e.g. {"reports": 30, "flows": 1}.
    coverage: dict[str, int] = field(default_factory=dict)

    def add(self, diagnostic: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def sorted(self) -> tuple[Diagnostic, ...]:
        return tuple(
            sorted(
                self.diagnostics,
                key=lambda d: (
                    -d.severity,
                    d.code,
                    _location_key(d.location),
                    d.message,
                ),
            )
        )

    def source_sorted(self) -> tuple[Diagnostic, ...]:
        """Diagnostics in *source order*: file, numeric line, then code.

        This is the deterministic ordering ``repro ingest`` presents —
        findings appear in the order a reader scanning the suite files
        would hit them, regardless of the order the compiler discovered
        them in.
        """
        return tuple(
            sorted(
                self.diagnostics,
                key=lambda d: (
                    _location_key(d.location),
                    d.code,
                    -d.severity,
                    d.message,
                ),
            )
        )

    def by_severity(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is severity)

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def codes(self) -> tuple[str, ...]:
        """Distinct codes present, sorted."""
        return tuple(sorted({d.code for d in self.diagnostics}))

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        """0 when nothing at/above ``fail_on`` was found, 1 otherwise."""
        worst = self.max_severity()
        return 1 if worst is not None and worst >= fail_on else 0

    def counts(self) -> dict[str, int]:
        out = {str(s): 0 for s in Severity}
        for diagnostic in self.diagnostics:
            out[str(diagnostic.severity)] += 1
        return out

    def summary(self) -> str:
        counts = self.counts()
        scanned = ", ".join(f"{n} {k}" for k, n in sorted(self.coverage.items()))
        body = (
            "clean"
            if self.clean
            else ", ".join(f"{n} {name}(s)" for name, n in counts.items() if n)
        )
        prefix = f"lint[{scanned}]: " if scanned else "lint: "
        return prefix + body

    def to_dict(self, *, order: str = "severity") -> dict:
        """JSON-ready form; ``order`` is ``"severity"`` or ``"source"``."""
        items = self.source_sorted() if order == "source" else self.sorted()
        return {
            "summary": self.summary(),
            "coverage": dict(sorted(self.coverage.items())),
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in items],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
