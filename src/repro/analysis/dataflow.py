"""Column-level dataflow IR: static where-provenance for query trees.

For every output column of a :class:`~repro.relational.query.Query` this
pass computes, *without executing anything*, the set of base-table columns
the value may be copied from (:attr:`ColumnFlow.copied`) and the set it may
be computed from (:attr:`ColumnFlow.derived`) — the static analogue of the
runtime where-provenance the algebra operators propagate. The propagation
rules deliberately mirror :mod:`repro.relational.algebra` operator by
operator:

* plain projection / ``Col`` aliasing keeps a flow intact (a copy stays a
  copy);
* computed expressions *derive from* the union of their inputs' sources;
* joins qualify colliding names exactly like ``Schema.concat`` does;
* aggregation turns the aggregated column's sources into a derivation and
  marks the flow ``aggregated`` (the declassification boundary threshold
  PLAs reason about);
* selection/HAVING/join keys never change a column's flow but do disclose
  the predicate columns, collected in :attr:`QueryFlow.condition_sources`
  (filtering on a value reveals it even when it is projected away).

Soundness contract (checked by the property tests): for every output cell
the runtime where-provenance set is a subset of the static
``copied | derived`` of its column — the static pass over-approximates,
never misses, a flow.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import AnalysisError
from repro.relational.catalog import Catalog
from repro.relational.expressions import And, Col, Expr, conjuncts, disjuncts
from repro.relational.query import Query

__all__ = ["ColumnFlow", "QueryFlow", "column_flows", "live_predicate_columns"]

_MAX_VIEW_DEPTH = 32

EMPTY: frozenset[str] = frozenset()


@dataclass(frozen=True)
class ColumnFlow:
    """Where one output column's values may come from, statically.

    ``copied``/``derived`` hold qualified ``base_table.column`` names.
    ``aggregated`` marks flows that passed through an aggregate function —
    their values summarize many base cells rather than exposing one.
    """

    copied: frozenset[str] = EMPTY
    derived: frozenset[str] = EMPTY
    aggregated: bool = False

    @property
    def sources(self) -> frozenset[str]:
        """Every base column this flow may disclose."""
        return self.copied | self.derived

    def as_derivation(self) -> "ColumnFlow":
        """The same sources, demoted from copies to derivations."""
        return ColumnFlow(
            copied=EMPTY, derived=self.sources, aggregated=self.aggregated
        )

    def merged(self, other: "ColumnFlow") -> "ColumnFlow":
        return ColumnFlow(
            copied=self.copied | other.copied,
            derived=self.derived | other.derived,
            aggregated=self.aggregated or other.aggregated,
        )


@dataclass(frozen=True)
class QueryFlow:
    """The dataflow summary of one query: per-column flows + disclosures."""

    relation: str  # name the intermediate result carries (for qualification)
    columns: tuple[tuple[str, ColumnFlow], ...]
    condition_sources: frozenset[str] = EMPTY  # base cols predicates touch

    def flow_of(self, column: str) -> ColumnFlow:
        for name, flow in self.columns:
            if name == column:
                return flow
        raise AnalysisError(
            f"dataflow: unknown column {column!r} in {self.relation!r} "
            f"(have {[n for n, _ in self.columns]})"
        )

    def names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.columns)

    def as_dict(self) -> dict[str, ColumnFlow]:
        return dict(self.columns)

    def all_sources(self) -> frozenset[str]:
        """Every base column the query may disclose, outputs and predicates."""
        out: set[str] = set(self.condition_sources)
        for _, flow in self.columns:
            out |= flow.sources
        return frozenset(out)


def column_flows(query: Query, catalog: Catalog) -> QueryFlow:
    """Static dataflow of ``query`` against ``catalog`` (views expanded)."""
    return _flows(query, catalog, depth=0, name=None)


def _resolve(name: str, catalog: Catalog, depth: int) -> QueryFlow:
    if depth > _MAX_VIEW_DEPTH:
        raise AnalysisError(f"view nesting deeper than {_MAX_VIEW_DEPTH}; cycle?")
    if catalog.is_table(name):
        schema = catalog.table(name).schema
        return QueryFlow(
            relation=name,
            columns=tuple(
                (c, ColumnFlow(copied=frozenset([f"{name}.{c}"])))
                for c in schema.names
            ),
        )
    if catalog.is_view(name):
        view = catalog.view(name)
        return _flows(view.query, catalog, depth=depth + 1, name=name)
    raise AnalysisError(f"dataflow: unknown relation {name!r}")


def _flows(
    query: Query, catalog: Catalog, *, depth: int, name: str | None
) -> QueryFlow:
    current = _resolve(query.source, catalog, depth)
    condition_sources = set(current.condition_sources)

    # FROM/JOIN — mirror algebra.join's Schema.concat qualification.
    for clause in query.joins:
        right = _resolve(clause.table, catalog, depth)
        condition_sources |= right.condition_sources
        left_cols = current.as_dict()
        right_cols = right.as_dict()
        for lcol, rcol in clause.on:
            condition_sources |= _lookup(left_cols, lcol, current.relation).sources
            condition_sources |= _lookup(right_cols, rcol, right.relation).sources
        collisions = set(left_cols) & set(right_cols)
        merged: list[tuple[str, ColumnFlow]] = []
        for col, flow in current.columns:
            key = f"{current.relation}.{col}" if col in collisions else col
            merged.append((key, flow))
        for col, flow in right.columns:
            key = f"{right.relation}.{col}" if col in collisions else col
            merged.append((key, flow))
        current = QueryFlow(
            relation=f"{current.relation}_{right.relation}",
            columns=tuple(merged),
        )

    columns = current.as_dict()

    # WHERE — discloses predicate columns, flows unchanged. Branches the
    # solver proves dead against the sibling conjuncts disclose nothing.
    if query.where is not None:
        for col in live_predicate_columns(query.where):
            condition_sources |= _lookup(columns, col, current.relation).sources

    # GROUP BY / aggregates — mirror algebra.aggregate.
    if query.is_aggregate:
        out: list[tuple[str, ColumnFlow]] = []
        for g in query.group_by:
            out.append((g, _lookup(columns, g, current.relation)))
        for spec in query.aggregates:
            if spec.column is None:
                flow = ColumnFlow(aggregated=True)
            else:
                inner = _lookup(columns, spec.column, current.relation)
                flow = replace(inner.as_derivation(), aggregated=True)
            out.append((spec.alias, flow))
        columns = dict(out)
        if query.having is not None:
            for col in live_predicate_columns(query.having):
                condition_sources |= _lookup(columns, col, current.relation).sources

    # SELECT projection — mirror algebra.project's copy/derive split.
    if query.select:
        out = []
        for item in query.select:
            if isinstance(item, str):
                out.append((item, _lookup(columns, item, current.relation)))
            else:
                alias, expr = item
                if isinstance(expr, Col):
                    out.append((alias, _lookup(columns, expr.name, current.relation)))
                else:
                    flow = ColumnFlow()
                    for col in expr.columns():
                        flow = flow.merged(
                            _lookup(columns, col, current.relation).as_derivation()
                        )
                    out.append((alias, flow))
        columns = dict(out)

    # Set operations — a value in output column i may come from any branch's
    # column i (positional, like the executor's _conform), so each flow is
    # the union of the head's and every branch's. Copies stay copies: a
    # value copied verbatim from either side's base column is still a copy.
    if query.set_ops:
        merged_cols = list(columns.items())
        for clause in query.set_ops:
            branch = _flows(clause.query, catalog, depth=depth, name=None)
            if len(branch.columns) != len(merged_cols):
                raise AnalysisError(
                    "dataflow: set operation arity mismatch: head has "
                    f"{len(merged_cols)} column(s), branch over "
                    f"{clause.query.source!r} has {len(branch.columns)}"
                )
            condition_sources |= branch.condition_sources
            merged_cols = [
                (col, flow.merged(bflow))
                for (col, flow), (_, bflow) in zip(merged_cols, branch.columns)
            ]
        columns = dict(merged_cols)

    # DISTINCT/ORDER BY/LIMIT keep flows intact (distinct unions provenance
    # of duplicate rows, which the static per-column union already covers).
    return QueryFlow(
        relation=name or current.relation,
        columns=tuple(columns.items()),
        condition_sources=frozenset(condition_sources),
    )


#: Solver budget for dead-branch pruning: predicates are small and the
#: dataflow pass runs per report, so give up (= keep the branch) early.
_PRUNE_SOLVER_BUDGET = 20_000


def live_predicate_columns(predicate: Expr) -> frozenset[str]:
    """Columns ``predicate`` can actually consult, dead OR branches pruned.

    A disjunctive branch of one top-level conjunct is *dead* when it can
    never hold together with the remaining conjuncts (solver-proved
    disjointness under three-valued logic). A row the filter keeps then
    owes its membership to a sibling branch — ``True OR x`` is ``True``
    regardless of ``x`` — so the dead branch's columns disclose nothing
    about kept rows. An undecided solver call keeps the branch: the result
    only shrinks on proof, preserving the over-approximation contract
    (every genuinely consulted column is always reported).
    """
    from repro.verify.solver import overlap

    parts = list(conjuncts(predicate))
    live: set[str] = set()
    for i, conjunct in enumerate(parts):
        branches = list(disjuncts(conjunct))
        rest = [c for j, c in enumerate(parts) if j != i]
        if len(branches) == 1 or not rest:
            live |= conjunct.columns()
            continue
        context: Expr = rest[0]
        for extra in rest[1:]:
            context = And(context, extra)
        for branch in branches:
            result = overlap(branch, context, budget=_PRUNE_SOLVER_BUDGET)
            if not result.is_unsat():
                live |= branch.columns()
    return frozenset(live)


def _lookup(columns: dict[str, ColumnFlow], name: str, relation: str) -> ColumnFlow:
    try:
        return columns[name]
    except KeyError:
        raise AnalysisError(
            f"dataflow: unknown column {name!r} in {relation!r} "
            f"(have {sorted(columns)})"
        ) from None
