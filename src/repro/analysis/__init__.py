"""Static privacy-flow analysis and PLA lint over the whole BI catalog.

The paper's central claim (§5) is that meta-report PLAs make compliance
*statically checkable*: every report should be provable as a view of an
approved meta-report before anything runs. This package is that claim as a
compiler-style analysis layer — a column-level dataflow IR with a
quasi-identifier taint lattice, a rule-set linter over PLA annotation sets,
an execution-free ETL flow check, and a whole-catalog pass emitting typed
:class:`Diagnostic` findings with stable codes (``PLA001``…``RPT002``),
runnable in CI via ``repro lint``.
"""

from repro.analysis.analyzer import AnalysisInput, StaticAnalyzer, analyze_scenario
from repro.analysis.dataflow import ColumnFlow, QueryFlow, column_flows
from repro.analysis.diagnostics import CODES, Diagnostic, DiagnosticReport, Severity
from repro.analysis.etl_lint import (
    lint_catalog_lineage,
    lint_flow,
    prohibited_pairs_of,
)
from repro.analysis.render import render_json, render_text
from repro.analysis.rules import lint_pla
from repro.analysis.taint import (
    Sensitivity,
    SensitivityMap,
    healthcare_sensitivity,
    join_sensitivity,
)

__all__ = [
    "AnalysisInput",
    "StaticAnalyzer",
    "analyze_scenario",
    "ColumnFlow",
    "QueryFlow",
    "column_flows",
    "CODES",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "lint_catalog_lineage",
    "lint_flow",
    "prohibited_pairs_of",
    "lint_pla",
    "render_json",
    "render_text",
    "Sensitivity",
    "SensitivityMap",
    "healthcare_sensitivity",
    "join_sensitivity",
]
