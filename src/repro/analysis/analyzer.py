"""The whole-catalog pass: sweep every artifact, aggregate diagnostics.

:class:`StaticAnalyzer` audits one deployment's complete state — relational
catalog, meta-report set with PLAs, report catalog, and ETL flows — without
executing a single query or operator. It stitches the other analysis
modules together:

* the dataflow pass classifies each meta-report/report column by the
  sensitivity of its base sources (taint lattice);
* the rule-set linter checks every approved PLA (PLA001–PLA004);
* the ETL linter checks flows and materialized lineage (ETL001, PLA005);
* the report sweep re-proves each catalog report as a view of an approved
  meta-report (RPT001) and flags identifier-copying detail reports
  (RPT002).

This is the paper's "testing before operation" made mechanical: the same
check CI runs on every catalog change, over everything at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.dataflow import column_flows
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.analysis.etl_lint import (
    lint_catalog_lineage,
    lint_flow,
    prohibited_pairs_of,
)
from repro.analysis.rules import lint_pla
from repro.analysis.taint import Sensitivity, SensitivityMap, healthcare_sensitivity
from repro.core.annotations import JoinPermission
from repro.core.metareport import MetaReportSet
from repro.errors import AnalysisError
from repro.etl.annotations import EtlPlaRegistry
from repro.etl.flow import EtlFlow
from repro.relational.catalog import Catalog
from repro.reports.catalog import ReportCatalog
from repro.reports.definition import ReportDefinition

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.scenario import Scenario

__all__ = ["AnalysisInput", "StaticAnalyzer", "analyze_scenario"]


@dataclass
class AnalysisInput:
    """Everything one analyzer run looks at. Only ``catalog`` is required."""

    catalog: Catalog
    metareports: MetaReportSet | None = None
    reports: ReportCatalog | None = None
    flows: tuple[EtlFlow, ...] = ()
    etl_registry: EtlPlaRegistry | None = None
    sensitivity: SensitivityMap = field(default_factory=healthcare_sensitivity)


class StaticAnalyzer:
    """Execution-free privacy analysis over one deployment's state."""

    def __init__(self, target: AnalysisInput) -> None:
        self.target = target

    @classmethod
    def for_scenario(cls, scenario: "Scenario") -> "StaticAnalyzer":
        """Analyzer over a built scenario, ETL registry projected from PLAs."""
        from repro.core.translation import to_etl_registry

        registry = to_etl_registry(
            [m.pla for m in scenario.metareports if m.pla is not None]
        )
        return cls(
            AnalysisInput(
                catalog=scenario.bi_catalog,
                metareports=scenario.metareports,
                reports=scenario.report_catalog,
                flows=(scenario.flow,),
                etl_registry=registry,
            )
        )

    # -- the sweep ----------------------------------------------------------

    def analyze(self) -> DiagnosticReport:
        report = DiagnosticReport()
        target = self.target
        prohibited = set(prohibited_pairs_of(target.etl_registry))
        prohibited |= set(self._pla_prohibited_pairs())
        pairs = tuple(sorted(prohibited, key=sorted))

        n_metareports = 0
        if target.metareports is not None:
            for metareport in target.metareports:
                n_metareports += 1
                report.extend(self._lint_metareport(metareport))

        n_reports = 0
        if target.reports is not None:
            for definition in target.reports.all_current():
                n_reports += 1
                report.extend(self._lint_report(definition))

        for flow in target.flows:
            report.extend(
                lint_flow(
                    flow,
                    registry=target.etl_registry,
                    catalog=target.catalog,
                    prohibited_pairs=pairs,
                )
            )
        report.extend(lint_catalog_lineage(target.catalog, pairs))

        report.coverage = {
            "metareports": n_metareports,
            "reports": n_reports,
            "flows": len(target.flows),
            "tables": len(target.catalog.table_names()),
        }
        return report

    # -- meta-report level ---------------------------------------------------

    def _pla_prohibited_pairs(self) -> tuple[frozenset[str], ...]:
        if self.target.metareports is None:
            return ()
        pairs = []
        for metareport in self.target.metareports:
            if metareport.pla is None:
                continue
            for annotation in metareport.pla.annotations:
                if isinstance(annotation, JoinPermission) and not annotation.allowed:
                    pairs.append(annotation.pair())
        return tuple(pairs)

    def _lint_metareport(self, metareport) -> list[Diagnostic]:
        location = f"metareport:{metareport.name}"
        if not metareport.approved:
            return [
                Diagnostic(
                    code="RPT001",
                    severity=Severity.WARNING,
                    location=location,
                    message=(
                        "meta-report has no approved PLA; it cannot serve as "
                        "a compliance baseline for any report"
                    ),
                    fix_hint="have the owner approve the PLA (or retire the view)",
                )
            ]
        assert metareport.pla is not None
        try:
            flow = column_flows(metareport.query, self.target.catalog)
        except AnalysisError as exc:
            return [
                Diagnostic(
                    code="PLA004",
                    severity=Severity.ERROR,
                    location=location,
                    message=f"meta-report query cannot be modeled: {exc}",
                    fix_hint="fix the meta-report definition against the catalog",
                )
            ]
        exposed = metareport.columns()
        sensitivity = {
            name: self.target.sensitivity.of_sources(flow.flow_of(name).sources)
            for name in exposed
        }
        base_columns = self._base_columns_of(metareport.query.source)
        return lint_pla(
            metareport.pla,
            exposed_columns=exposed,
            column_sensitivity=sensitivity,
            base_columns=base_columns,
            location=location,
        )

    def _base_columns_of(self, relation: str) -> frozenset[str]:
        """Bare column names any relation under ``relation`` can supply."""
        catalog = self.target.catalog
        out: set[str] = set()
        if relation not in catalog:
            return frozenset()
        for base in catalog.base_relations(relation):
            out.update(catalog.table(base).schema.names)
        if catalog.is_view(relation):
            view_outputs = catalog.view(relation).query.output_names()
            if view_outputs:
                out.update(view_outputs)
        return frozenset(out)

    # -- report level --------------------------------------------------------

    def _lint_report(self, definition: ReportDefinition) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        # Ingested reports carry their suite origin (file:line); citing it
        # maps findings back to the SQL statement the author owns.
        location = f"report:{definition.name}"
        if definition.origin:
            location += f"@{definition.origin}"
        if self.target.metareports is not None:
            covering, attempts = self.target.metareports.find_covering(
                definition, self.target.catalog
            )
            if covering is None:
                reasons = [r for a in attempts for r in a.reasons]
                closest = f" (closest: {reasons[0]})" if reasons else ""
                out.append(
                    Diagnostic(
                        code="RPT001",
                        severity=Severity.ERROR,
                        location=location,
                        message=(
                            "report is not derivable from any approved "
                            f"meta-report{closest}"
                        ),
                        fix_hint=(
                            "author the report over an approved meta-report "
                            "view, or run a new elicitation round"
                        ),
                    )
                )

        try:
            flow = column_flows(definition.query, self.target.catalog)
        except AnalysisError:
            # Underivable reports may reference unknown relations/columns;
            # RPT001 above already points at them.
            return out
        for column, column_flow in flow.columns:
            if column_flow.aggregated or not column_flow.copied:
                continue
            if self.target.sensitivity.of_sources(column_flow.copied) is (
                Sensitivity.DIRECT
            ):
                out.append(
                    Diagnostic(
                        code="RPT002",
                        severity=Severity.WARNING,
                        location=location,
                        message=(
                            f"detail report copies direct identifier "
                            f"{column!r} (from "
                            f"{sorted(column_flow.copied)}) into its output"
                        ),
                        fix_hint=(
                            "aggregate the report, or rely on an "
                            "anonymization annotation and verify it is "
                            "enforced at generation time"
                        ),
                    )
                )
        # RPT003 — filtering on a direct identifier discloses it even when
        # the column is projected away (membership in the result reveals the
        # identity tested for). condition_sources already excludes branches
        # the solver proved dead, so an unreachable identifier test does not
        # fire this.
        disclosed = {
            source
            for source in flow.condition_sources
            if self.target.sensitivity.classify(source) is Sensitivity.DIRECT
        }
        exposed = {
            source for _, column_flow in flow.columns
            for source in column_flow.copied
        }
        for source in sorted(disclosed - exposed):
            out.append(
                Diagnostic(
                    code="RPT003",
                    severity=Severity.WARNING,
                    location=location,
                    message=(
                        f"report predicate filters on direct identifier "
                        f"{source!r}; row membership discloses it even "
                        "though it is projected away"
                    ),
                    fix_hint=(
                        "filter on a quasi-identifier or pseudonymized "
                        "column instead"
                    ),
                )
            )
        return out


def analyze_scenario(scenario: "Scenario") -> DiagnosticReport:
    """One-call sweep of a built scenario (the CLI's ``repro lint``)."""
    return StaticAnalyzer.for_scenario(scenario).analyze()
