"""Static lint of ETL flows (codes ETL001 and PLA005), execution-free.

Works entirely on :meth:`repro.etl.flow.EtlFlow.static_footprints` — the
design-time ``provider/table`` footprint of every operator output — so no
operator runs and no data moves. Two families of findings:

* **ETL001**: an operator merges data of two or more owners but no
  constraint in the ETL PLA registry speaks about any of the relations or
  owners involved — the combination is legal by *omission*, not by
  agreement, which §5 treats as an elicitation gap.
* **PLA005**: a prohibited relation pair is *reachable*: some operator
  output (or an already-materialized catalog table) carries both sides of a
  join prohibition in one lineage footprint, no matter how many
  intermediate steps laundered the merge.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.etl.annotations import (
    EtlConstraint,
    EtlPlaRegistry,
    IntegrationProhibition,
    JoinProhibition,
    OperationRestriction,
)
from repro.etl.flow import EtlFlow
from repro.relational.catalog import Catalog

__all__ = ["lint_flow", "lint_catalog_lineage", "prohibited_pairs_of"]

_COMBINING_KINDS = frozenset({"join", "integrate"})


def prohibited_pairs_of(registry: EtlPlaRegistry | None) -> tuple[frozenset[str], ...]:
    """The relation pairs the registry's join prohibitions forbid."""
    if registry is None:
        return ()
    pairs = []
    for constraint in registry.constraints:
        if isinstance(constraint, JoinProhibition):
            pairs.append(frozenset((constraint.left, constraint.right)))
    return tuple(pairs)


def _constraint_covers(
    constraint: EtlConstraint, footprint: frozenset[str], owners: frozenset[str]
) -> bool:
    """Does this constraint say anything about the data being combined?"""
    if isinstance(constraint, JoinProhibition):
        return constraint.left in footprint or constraint.right in footprint
    if isinstance(constraint, OperationRestriction):
        return constraint.relation in footprint
    if isinstance(constraint, IntegrationProhibition):
        return constraint.owner in owners
    return False


def lint_flow(
    flow: EtlFlow,
    *,
    registry: EtlPlaRegistry | None,
    catalog: Catalog | None = None,
    prohibited_pairs: tuple[frozenset[str], ...] = (),
) -> list[Diagnostic]:
    """Static findings for one flow; nothing is executed."""
    footprints = flow.static_footprints(catalog)
    constraints = registry.constraints if registry is not None else []
    out: list[Diagnostic] = []
    for op in flow.operators:
        location = f"flow:{flow.name}/{op.name}"
        in_footprint: set[str] = set()
        for name in op.inputs:
            in_footprint |= footprints.get(name, frozenset())
        # Extract operators' inputs name provider tables outside the flow
        # namespace; their own output footprint is the authoritative one.
        in_footprint |= footprints.get(op.output, frozenset())
        owners = frozenset(identity.partition("/")[0] for identity in in_footprint)

        for pair in prohibited_pairs:
            if pair <= footprints.get(op.output, frozenset()):
                out.append(
                    Diagnostic(
                        code="PLA005",
                        severity=Severity.ERROR,
                        location=location,
                        message=(
                            f"operator output {op.output!r} would carry data "
                            f"from both {sorted(pair)}, which a PLA prohibits "
                            "combining"
                        ),
                        fix_hint=(
                            "remove one side from the flow, or renegotiate "
                            "the join prohibition with the owner"
                        ),
                    )
                )

        if op.kind in _COMBINING_KINDS and len(owners) >= 2:
            if not any(
                _constraint_covers(c, frozenset(in_footprint), owners)
                for c in constraints
            ):
                out.append(
                    Diagnostic(
                        code="ETL001",
                        severity=Severity.WARNING,
                        location=location,
                        message=(
                            f"{op.kind} operator combines data of owners "
                            f"{sorted(owners)} but no ETL-level PLA "
                            "constraint covers any relation involved"
                        ),
                        fix_hint=(
                            "elicit a join/integration permission from the "
                            "owners and register it in the ETL PLA registry"
                        ),
                    )
                )
    return out


def lint_catalog_lineage(
    catalog: Catalog,
    prohibited_pairs: tuple[frozenset[str], ...],
) -> list[Diagnostic]:
    """PLA005 over already-materialized tables: lineage that merged both
    sides of a prohibition (the after-the-fact audit of the same rule)."""
    out: list[Diagnostic] = []
    if not prohibited_pairs:
        return out
    for name in catalog.table_names():
        table = catalog.table(name)
        footprint = frozenset(
            f"{rid.provider}/{rid.table}" for rid in table.all_lineage()
        )
        for pair in prohibited_pairs:
            if pair <= footprint:
                out.append(
                    Diagnostic(
                        code="PLA005",
                        severity=Severity.ERROR,
                        location=f"table:{name}",
                        message=(
                            f"table lineage already combines {sorted(pair)}, "
                            "which a PLA prohibits"
                        ),
                        fix_hint="rebuild the table without the prohibited side",
                    )
                )
    return out
