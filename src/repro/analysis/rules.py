"""Rule-set linter over one PLA's annotation set (codes PLA001–PLA004).

A PLA is a conjunction of annotations, and conjunctions rot the same way
rule bases do: rules contradict each other (PLA002), stronger rules shadow
weaker ones into irrelevance (PLA003), intensional predicates go dead when
the schema drifts under them (PLA004), and sensitive columns fall through
the net entirely (PLA001). All four are decidable statically from the
annotation set, the columns the target meta-report exposes, and the columns
its underlying relations can supply to hidden-column conditions.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.taint import Sensitivity
from repro.core.annotations import (
    AggregationThreshold,
    AnonymizationRequirement,
    AttributeAccess,
    IntensionalCondition,
    JoinPermission,
)
from repro.core.containment import predicate_implies
from repro.core.pla import PLA

__all__ = ["lint_pla"]

#: Annotation kinds that protect one named attribute.
_ATTRIBUTE_KINDS = (AttributeAccess, AnonymizationRequirement, IntensionalCondition)


def lint_pla(
    pla: PLA,
    *,
    exposed_columns: tuple[str, ...],
    column_sensitivity: Mapping[str, Sensitivity],
    base_columns: frozenset[str],
    location: str,
) -> list[Diagnostic]:
    """Lint one PLA against the meta-report surface it governs.

    ``exposed_columns`` are the meta-report's output columns;
    ``column_sensitivity`` maps each to the joined sensitivity of its base
    sources (from the dataflow pass); ``base_columns`` are every column the
    underlying relations could supply to a hidden-column condition.
    """
    out: list[Diagnostic] = []
    out.extend(_contradictions(pla, location))
    out.extend(_shadowed(pla, location))
    out.extend(_dead_intensional(pla, exposed_columns, base_columns, location))
    out.extend(_uncovered(pla, exposed_columns, column_sensitivity, location))
    return out


# -- PLA002: contradictory annotations --------------------------------------


def _contradictions(pla: PLA, location: str) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    accesses: dict[str, AttributeAccess] = {}
    for a in pla.annotations:
        if not isinstance(a, AttributeAccess):
            continue
        earlier = accesses.get(a.attribute)
        if earlier is not None and not (earlier.allowed_roles & a.allowed_roles):
            out.append(
                Diagnostic(
                    code="PLA002",
                    severity=Severity.ERROR,
                    location=location,
                    message=(
                        f"attribute-access rules on {a.attribute!r} allow "
                        f"disjoint role sets {sorted(earlier.allowed_roles)} "
                        f"and {sorted(a.allowed_roles)}; no audience can ever "
                        "satisfy both"
                    ),
                    fix_hint="merge the two rules into one shared role set",
                )
            )
        accesses.setdefault(a.attribute, a)

    joins: dict[frozenset[str], JoinPermission] = {}
    for a in pla.annotations:
        if not isinstance(a, JoinPermission):
            continue
        earlier = joins.get(a.pair())
        if earlier is not None and earlier.allowed != a.allowed:
            out.append(
                Diagnostic(
                    code="PLA002",
                    severity=Severity.ERROR,
                    location=location,
                    message=(
                        f"join of {sorted(a.pair())} is both permitted and "
                        "prohibited by the same PLA"
                    ),
                    fix_hint="keep only the owner's intended join rule",
                )
            )
        joins.setdefault(a.pair(), a)

    anonymize: dict[str, AnonymizationRequirement] = {}
    for a in pla.annotations:
        if not isinstance(a, AnonymizationRequirement):
            continue
        earlier = anonymize.get(a.attribute)
        if earlier is not None and earlier.method != a.method:
            out.append(
                Diagnostic(
                    code="PLA002",
                    severity=Severity.ERROR,
                    location=location,
                    message=(
                        f"attribute {a.attribute!r} must be both "
                        f"{earlier.method}d and {a.method}d; the enforcement "
                        "translator can apply only one method per attribute"
                    ),
                    fix_hint="pick the stronger anonymization method",
                )
            )
        anonymize.setdefault(a.attribute, a)
    return out


# -- PLA003: shadowed rules --------------------------------------------------


def _shadowed(pla: PLA, location: str) -> list[Diagnostic]:
    out: list[Diagnostic] = []

    thresholds = [a for a in pla.annotations if isinstance(a, AggregationThreshold)]
    if len(thresholds) > 1:
        strongest = max(thresholds, key=lambda a: a.min_group_size)
        for a in thresholds:
            if a is not strongest and a.min_group_size <= strongest.min_group_size:
                out.append(
                    Diagnostic(
                        code="PLA003",
                        severity=Severity.WARNING,
                        location=location,
                        message=(
                            f"aggregation threshold ≥{a.min_group_size} is "
                            f"shadowed by the stricter ≥"
                            f"{strongest.min_group_size} in the same PLA"
                        ),
                        fix_hint="drop the weaker threshold",
                    )
                )

    accesses = [a for a in pla.annotations if isinstance(a, AttributeAccess)]
    for i, weaker in enumerate(accesses):
        for j, stronger in enumerate(accesses):
            if i == j or weaker.attribute != stronger.attribute:
                continue
            subsumed = stronger.allowed_roles <= weaker.allowed_roles
            if subsumed and (stronger.allowed_roles < weaker.allowed_roles or j < i):
                out.append(
                    Diagnostic(
                        code="PLA003",
                        severity=Severity.WARNING,
                        location=location,
                        message=(
                            f"access rule on {weaker.attribute!r} allowing "
                            f"{sorted(weaker.allowed_roles)} is shadowed by "
                            f"the stricter rule allowing "
                            f"{sorted(stronger.allowed_roles)}"
                        ),
                        fix_hint="drop the wider role set; the stricter rule decides",
                    )
                )
                break

    seen_joins: set[tuple[frozenset[str], bool]] = set()
    for a in pla.annotations:
        if not isinstance(a, JoinPermission):
            continue
        key = (a.pair(), a.allowed)
        if key in seen_joins:
            out.append(
                Diagnostic(
                    code="PLA003",
                    severity=Severity.WARNING,
                    location=location,
                    message=f"duplicate join rule on {sorted(a.pair())}",
                    fix_hint="remove the duplicate annotation",
                )
            )
        seen_joins.add(key)

    conditions = [a for a in pla.annotations if isinstance(a, IntensionalCondition)]
    for j, candidate in enumerate(conditions):
        for i, other in enumerate(conditions):
            if i == j or other is candidate:
                continue
            if other.attribute != candidate.attribute or other.action != candidate.action:
                continue
            # ``other`` shows strictly less (or the same, for the earlier
            # rule), so everything ``candidate`` suppresses is already gone.
            if predicate_implies(other.condition, candidate.condition) and (
                not predicate_implies(candidate.condition, other.condition) or i < j
            ):
                out.append(
                    Diagnostic(
                        code="PLA003",
                        severity=Severity.WARNING,
                        location=location,
                        message=(
                            f"intensional rule on {candidate.attribute!r} "
                            f"(show where {candidate.condition}) is shadowed "
                            f"by the stricter rule (show where "
                            f"{other.condition})"
                        ),
                        fix_hint="drop the weaker condition",
                    )
                )
                break
    return out


# -- PLA004: dead intensional predicates -------------------------------------


def _dead_intensional(
    pla: PLA,
    exposed_columns: tuple[str, ...],
    base_columns: frozenset[str],
    location: str,
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for a in pla.annotations:
        if not isinstance(a, IntensionalCondition):
            continue
        unknown = a.condition.columns() - base_columns
        if unknown:
            out.append(
                Diagnostic(
                    code="PLA004",
                    severity=Severity.ERROR,
                    location=location,
                    message=(
                        f"intensional condition on {a.attribute!r} references "
                        f"columns {sorted(unknown)} that no underlying "
                        "relation supplies; the rule silently never applies"
                    ),
                    fix_hint=(
                        "point the condition at existing columns, or add the "
                        "hidden column to the warehouse load"
                    ),
                )
            )
            continue
        status = _condition_status(a.condition)
        if status == "unsat":
            out.append(
                Diagnostic(
                    code="PLA004",
                    severity=Severity.ERROR,
                    location=location,
                    message=(
                        f"intensional condition on {a.attribute!r} "
                        f"({a.condition}) is provably unsatisfiable; it "
                        "suppresses every row of the target"
                    ),
                    fix_hint=(
                        "restate the condition; as written the rule blanks "
                        "the whole view"
                    ),
                )
            )
            continue
        if status == "tautology":
            out.append(
                Diagnostic(
                    code="PLA004",
                    severity=Severity.WARNING,
                    location=location,
                    message=(
                        f"intensional condition on {a.attribute!r} is always "
                        "true; it never suppresses anything"
                    ),
                    fix_hint="state the actual restriction, or remove the rule",
                )
            )
            continue
        if a.action == "suppress_cell" and a.attribute not in exposed_columns:
            out.append(
                Diagnostic(
                    code="PLA004",
                    severity=Severity.WARNING,
                    location=location,
                    message=(
                        f"cell-suppression rule targets {a.attribute!r}, "
                        "which the meta-report does not expose; there is no "
                        "cell to blank"
                    ),
                    fix_hint=(
                        "use suppress_row, or attach the rule to a "
                        "meta-report exposing the attribute"
                    ),
                )
            )
    return out


#: Solver budget for lint-time checks: PLA conditions are small, and lint
#: must stay interactive, so give up (= stay silent) early.
_LINT_SOLVER_BUDGET = 20_000


def _condition_status(condition) -> str:
    """``"unsat"``, ``"tautology"``, or ``"ok"`` for one PLA condition.

    Backed by the :mod:`repro.verify` solver (imported lazily so plain
    dataflow lint never pays for it). Both degenerate shapes are decided
    under SQL three-valued logic; an undecided solver call stays ``"ok"``
    — lint only reports what it can prove.
    """
    from repro.verify.solver import falsifiable, satisfiable

    if satisfiable(condition, budget=_LINT_SOLVER_BUDGET).is_unsat():
        return "unsat"
    if falsifiable(condition, budget=_LINT_SOLVER_BUDGET).is_unsat():
        return "tautology"
    return "ok"


# -- PLA001: uncovered sensitive columns --------------------------------------


def _uncovered(
    pla: PLA,
    exposed_columns: tuple[str, ...],
    column_sensitivity: Mapping[str, Sensitivity],
    location: str,
) -> list[Diagnostic]:
    protected = {
        a.attribute for a in pla.annotations if isinstance(a, _ATTRIBUTE_KINDS)
    }
    out: list[Diagnostic] = []
    for column in exposed_columns:
        sensitivity = column_sensitivity.get(column, Sensitivity.PUBLIC)
        if sensitivity is Sensitivity.PUBLIC or column in protected:
            continue
        severity = (
            Severity.ERROR if sensitivity is Sensitivity.DIRECT else Severity.WARNING
        )
        out.append(
            Diagnostic(
                code="PLA001",
                severity=severity,
                location=location,
                message=(
                    f"{sensitivity} column {column!r} is exposed but no "
                    "attribute-level annotation of the PLA covers it"
                ),
                fix_hint=(
                    f"add an attribute-access, anonymization, or intensional "
                    f"annotation for {column!r} (or remove it from the "
                    "meta-report)"
                ),
            )
        )
    return out
