"""Data warehouse: star schemas, cubes, cube authorization, privacy metadata."""

from repro.warehouse.authorization import CubeAuthorizationRule, CubeAuthorizer
from repro.warehouse.cube import Cube, CubeQuery
from repro.warehouse.enforcement import WarehouseEnforcer
from repro.warehouse.metadata import (
    ColumnAnnotation,
    PrivacyMetadataRegistry,
    TableAnnotation,
)
from repro.warehouse.star import (
    Dimension,
    StarSchema,
    build_date_dimension,
    build_dimension,
    build_fact,
)

__all__ = [
    "ColumnAnnotation",
    "Cube",
    "CubeAuthorizationRule",
    "CubeAuthorizer",
    "CubeQuery",
    "Dimension",
    "PrivacyMetadataRegistry",
    "StarSchema",
    "TableAnnotation",
    "WarehouseEnforcer",
    "build_date_dimension",
    "build_dimension",
    "build_fact",
]
