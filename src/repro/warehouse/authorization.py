"""Fine-grained cube authorization (Wang–Jajodia–Wijesekera style, [14]).

Per role, a rule fixes: the *finest* dimension levels the role may group by,
slices it must never see, and a minimum contributor count per published
cell. Enforcement is two-phase: a static check of the cube request, then a
dynamic pass that suppresses cells whose lineage has too few contributors
(possible because every engine aggregate carries its contributor set).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PolicyError
from repro.policy.rbac import Decision
from repro.policy.subjects import AccessContext
from repro.relational.expressions import Expr
from repro.relational.table import Table
from repro.warehouse.cube import Cube, CubeQuery

__all__ = ["CubeAuthorizationRule", "CubeAuthorizer"]


@dataclass(frozen=True)
class CubeAuthorizationRule:
    """What one role may see of one cube."""

    role: str
    max_detail: dict[str, str]  # dimension name -> finest allowed level attr
    min_cell_contributors: int = 1
    denied_slices: tuple[Expr, ...] = ()  # cells matching any are forbidden

    def __post_init__(self) -> None:
        if self.min_cell_contributors < 1:
            raise PolicyError("min_cell_contributors must be at least 1")


@dataclass
class CubeAuthorizer:
    """Authorization rules for one cube, plus the guarded evaluation path."""

    cube: Cube
    rules: dict[str, CubeAuthorizationRule] = field(default_factory=dict)

    def add_rule(self, rule: CubeAuthorizationRule) -> CubeAuthorizationRule:
        if rule.role in self.rules:
            raise PolicyError(f"cube rule for role {rule.role!r} already exists")
        self.rules[rule.role] = rule
        return rule

    def _rule_for(self, context: AccessContext) -> CubeAuthorizationRule | None:
        for role in sorted(r.name for r in context.user.roles):
            if role in self.rules:
                return self.rules[role]
        return None

    def check(self, context: AccessContext, cube_query: CubeQuery) -> Decision:
        """Static admissibility of the request for this subject."""
        rule = self._rule_for(context)
        if rule is None:
            return Decision(False, "no cube authorization for any of the user's roles")
        star = self.cube.star
        for attr in cube_query.group_by:
            dim = star.attribute_dimension(attr)
            allowed_attr = rule.max_detail.get(dim.name)
            if allowed_attr is None:
                return Decision(
                    False, f"role {rule.role!r} may not group by dimension {dim.name!r}"
                )
            if dim.level_of(attr) < dim.level_of(allowed_attr):
                return Decision(
                    False,
                    f"{attr!r} is finer than role {rule.role!r}'s allowed level "
                    f"{allowed_attr!r} on {dim.name!r}",
                )
        return Decision(True, f"admissible for role {rule.role!r}")

    def evaluate(
        self, context: AccessContext, cube_query: CubeQuery, *, name: str = "cube_result"
    ) -> tuple[Table, int]:
        """Check, evaluate, and suppress undersized cells.

        Returns the published table and the number of suppressed cells.
        Raises :class:`PolicyError` if the static check fails.
        """
        decision = self.check(context, cube_query)
        if not decision:
            raise PolicyError(f"cube request denied: {decision.reason}")
        rule = self._rule_for(context)
        assert rule is not None  # check() succeeded
        # Denied slices are removed *before* aggregation: data from a denied
        # region must not even contribute to published cells.
        guarded = cube_query
        for predicate in rule.denied_slices:
            from repro.relational.expressions import Not

            guarded = self.cube.slice(guarded, Not(predicate))
        result = self.cube.evaluate(guarded, name=name)
        # Dynamic pass: contributor thresholds via lineage.
        keep: list[int] = []
        for i in range(len(result)):
            if len(result.lineage_of(i)) < rule.min_cell_contributors:
                continue
            keep.append(i)
        suppressed = len(result) - len(keep)
        published = Table.derived(
            name,
            result.schema,
            [result.rows[i] for i in keep],
            [result.provenance[i] for i in keep],
            provider="warehouse",
        )
        return published, suppressed
