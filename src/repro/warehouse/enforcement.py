"""Warehouse-level enforcement: executing queries under DWH privacy metadata.

§4's mechanism, made operational: the annotations of a
:class:`~repro.warehouse.metadata.PrivacyMetadataRegistry` (field
sensitivity/role limits, table purpose limits, join permissions, aggregation
floors, intensional row rules) gate and shape every query a consumer runs
against the warehouse. This is the enforcement point a deployment gets when
PLAs are engineered at the warehouse level instead of on reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ComplianceError
from repro.obs import instrument
from repro.obs.trace import TRACER
from repro.policy.subjects import AccessContext
from repro.relational.catalog import Catalog
from repro.relational.engine import execute
from repro.relational.execconfig import ExecutionConfig
from repro.relational.query import Query
from repro.relational.table import Table
from repro.warehouse.metadata import PrivacyMetadataRegistry

__all__ = ["WarehouseEnforcer"]


@dataclass
class WarehouseEnforcer:
    """Gates warehouse queries against the DWH privacy metadata."""

    catalog: Catalog
    metadata: PrivacyMetadataRegistry
    config: ExecutionConfig | None = None  # None = process default

    # -- static gate ---------------------------------------------------------

    def check(self, query: Query, context: AccessContext) -> list[str]:
        """Reasons the query is not allowed (empty = admissible)."""
        reasons: list[str] = []
        relations = query.referenced_relations()
        base_tables: set[str] = set()
        for relation in relations:
            base_tables |= set(self.catalog.base_relations(relation))

        # Table-level purpose restrictions.
        for table in sorted(base_tables):
            annotation = self.metadata.table_annotation(table)
            if annotation is not None and not annotation.permits_purpose(
                context.purpose.name
            ):
                reasons.append(
                    f"table {table!r} may not be used for purpose "
                    f"{context.purpose.name!r}"
                )

        # Join permissions between every referenced base-table pair.
        tables = sorted(base_tables)
        for i, left in enumerate(tables):
            for right in tables[i + 1 :]:
                if not self.metadata.join_permitted(left, right):
                    reasons.append(
                        f"joining {left!r} with {right!r} is not permitted"
                    )

        # Column-level role limits on everything the query touches.
        from repro.core.containment import source_columns_used

        used = source_columns_used(query)
        roles = {role.name for role in context.user.roles}
        for table in sorted(base_tables):
            for column in used:
                annotation = self.metadata.column_annotation(table, column)
                if annotation is None:
                    continue
                if not any(annotation.permits_role(role) for role in roles):
                    reasons.append(
                        f"column {table}.{column} is restricted to roles "
                        f"{sorted(annotation.allowed_roles)}"
                    )

        # Record-level exposure of sensitive columns requires aggregation.
        floor = self.metadata.min_aggregation_for(base_tables)
        if floor > 1 and not query.is_aggregate:
            outputs = query.output_names()
            if outputs is None or any(
                column in self._all_sensitive(base_tables) for column in outputs
            ):
                reasons.append(
                    f"record-level access requires aggregation over ≥ {floor} "
                    "records for these tables"
                )
        return reasons

    def _all_sensitive(self, tables: set[str]) -> set[str]:
        out: set[str] = set()
        for table in tables:
            out.update(self.metadata.sensitive_columns(table))
        return out

    # -- guarded execution ------------------------------------------------------

    def run(
        self, query: Query, context: AccessContext, *, name: str = "dwh_result"
    ) -> tuple[Table, int]:
        """Check, execute, apply row rules and aggregation floors.

        Returns ``(table, suppressed_rows)``. Raises
        :class:`ComplianceError` when the static gate rejects the query.
        When observability is on, emits a ``warehouse.enforce`` span and
        counts warehouse-level enforcement decisions.
        """
        if not TRACER.active():
            return self._run(query, context, name=name)
        with TRACER.span(
            "warehouse.enforce",
            {"user": context.user.name, "purpose": context.purpose.name},
        ) as span:
            level = instrument.LEVEL_WAREHOUSE
            try:
                table, suppressed = self._run(query, context, name=name)
            except ComplianceError:
                instrument.record_decision(level, "deny", "metadata_gate")
                raise
            instrument.record_decision(level, "allow")
            instrument.record_decision(
                level, "suppress_row", "row_rule_or_floor", count=suppressed
            )
            span.set_tag("suppressed_rows", suppressed)
            return table, suppressed

    def _run(
        self, query: Query, context: AccessContext, *, name: str
    ) -> tuple[Table, int]:
        reasons = self.check(query, context)
        if reasons:
            raise ComplianceError(
                "warehouse metadata rejects the query: " + "; ".join(reasons)
            )
        result = execute(query, self.catalog, name=name, config=self.config)
        base_tables = {
            t
            for relation in query.referenced_relations()
            for t in self.catalog.base_relations(relation)
        }
        keep: list[int] = []
        floor = self.metadata.min_aggregation_for(base_tables)
        names = result.schema.names
        # Row rules apply only when their condition columns are visible in
        # the output (aggregates hide them; the aggregation floor is the
        # protection at that grain).
        applicable_rules = [
            rule
            for rule in self.metadata.row_rules
            if rule.table in base_tables
            and rule.condition.columns() <= set(names)
        ]
        for i in range(len(result)):
            row = dict(zip(names, result.rows[i]))
            restricted = False
            for rule in applicable_rules:
                if rule.covers(row) and rule.metadata.get("deny_row"):
                    restricted = True
                    break
            if restricted:
                continue
            if query.is_aggregate and len(result.lineage_of(i)) < floor:
                continue
            keep.append(i)
        suppressed = len(result) - len(keep)
        if not suppressed:
            return result, 0
        filtered = Table.derived(
            name,
            result.schema,
            [result.rows[i] for i in keep],
            [result.provenance[i] for i in keep],
            provider="warehouse",
        )
        return filtered, suppressed
