"""Privacy metadata on warehouse tables, columns, and rows (§4).

"Metadata can also be used here to allow the specification of privacy
restrictions over tables, rows, or fields, joins or aggregations." This
registry holds those annotations at the DWH level; the warehouse-level
enforcement adapter (:mod:`repro.core.levels`) translates them into checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import PolicyError
from repro.policy.intensional import IntensionalAssociation

__all__ = ["ColumnAnnotation", "TableAnnotation", "PrivacyMetadataRegistry"]


@dataclass(frozen=True)
class ColumnAnnotation:
    """Field-level privacy metadata."""

    table: str
    column: str
    sensitivity: str = "normal"  # "normal" | "quasi" | "sensitive" | "identifying"
    allowed_roles: frozenset[str] = frozenset()  # empty = unrestricted
    requires_anonymization: bool = False
    note: str = ""

    def permits_role(self, role: str) -> bool:
        return not self.allowed_roles or role in self.allowed_roles


@dataclass(frozen=True)
class TableAnnotation:
    """Table-level privacy metadata."""

    table: str
    min_aggregation: int = 1  # group-size floor for aggregates over this table
    joinable_with: frozenset[str] | None = None  # None = any; empty = none
    allowed_purposes: frozenset[str] = frozenset()  # empty = any
    note: str = ""

    def permits_join(self, other: str) -> bool:
        return self.joinable_with is None or other in self.joinable_with

    def permits_purpose(self, purpose: str) -> bool:
        if not self.allowed_purposes:
            return True
        return any(
            purpose == p or purpose.startswith(p + "/") for p in self.allowed_purposes
        )


@dataclass
class PrivacyMetadataRegistry:
    """All DWH-level privacy annotations of one warehouse."""

    columns: dict[tuple[str, str], ColumnAnnotation] = field(default_factory=dict)
    tables: dict[str, TableAnnotation] = field(default_factory=dict)
    row_rules: list[IntensionalAssociation] = field(default_factory=list)

    # -- registration -------------------------------------------------------

    def annotate_column(self, annotation: ColumnAnnotation) -> ColumnAnnotation:
        key = (annotation.table, annotation.column)
        if key in self.columns:
            raise PolicyError(f"column {key} already annotated")
        self.columns[key] = annotation
        return annotation

    def annotate_table(self, annotation: TableAnnotation) -> TableAnnotation:
        if annotation.table in self.tables:
            raise PolicyError(f"table {annotation.table!r} already annotated")
        self.tables[annotation.table] = annotation
        return annotation

    def add_row_rule(self, rule: IntensionalAssociation) -> IntensionalAssociation:
        self.row_rules.append(rule)
        return rule

    # -- queries ------------------------------------------------------------

    def column_annotation(self, table: str, column: str) -> ColumnAnnotation | None:
        return self.columns.get((table, column))

    def table_annotation(self, table: str) -> TableAnnotation | None:
        return self.tables.get(table)

    def sensitive_columns(self, table: str) -> tuple[str, ...]:
        """Columns of ``table`` tagged sensitive or identifying."""
        return tuple(
            sorted(
                column
                for (t, column), ann in self.columns.items()
                if t == table and ann.sensitivity in ("sensitive", "identifying")
            )
        )

    def row_restrictions_for(
        self, table: str, row: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Merged metadata of every row rule covering ``row`` of ``table``."""
        merged: dict[str, Any] = {}
        for rule in self.row_rules:
            if rule.table == table and rule.covers(row):
                merged.update(rule.metadata)
        return merged

    def min_aggregation_for(self, tables: frozenset[str] | set[str]) -> int:
        """Strictest group-size floor over a set of tables (joins compose)."""
        return max(
            (self.tables[t].min_aggregation for t in tables if t in self.tables),
            default=1,
        )

    def join_permitted(self, left: str, right: str) -> bool:
        """Both sides' annotations must permit the pairing."""
        left_ann = self.tables.get(left)
        right_ann = self.tables.get(right)
        if left_ann is not None and not left_ann.permits_join(right):
            return False
        if right_ann is not None and not right_ann.permits_join(left):
            return False
        return True

    def annotation_count(self) -> int:
        """Total annotations — the elicitation cost driver at this level."""
        return len(self.columns) + len(self.tables) + len(self.row_rules)
