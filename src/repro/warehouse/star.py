"""Star-schema modeling: dimensions with surrogate keys, fact tables, wide views.

The BI provider "extracts, integrates and transforms data that is then
loaded on a data warehouse". We model the warehouse as a classic star:
dimension tables built from distinct attribute combinations (surrogate
integer keys), fact tables holding measures plus dimension keys, and a
denormalized wide view — which is exactly the raw material §5's
meta-reports are cut from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import WarehouseError
from repro.relational.catalog import Catalog, View
from repro.relational.query import Query
from repro.relational.schema import Column, Schema
from repro.relational.table import RowProvenance, Table
from repro.relational.types import ColumnType

__all__ = [
    "Dimension",
    "StarSchema",
    "build_date_dimension",
    "build_dimension",
    "build_fact",
]


@dataclass(frozen=True)
class Dimension:
    """A dimension table plus its level ordering (fine → coarse)."""

    name: str
    key: str  # surrogate key column, "<name>_id"
    table: Table
    levels: tuple[str, ...]  # attribute columns, finest first

    def level_of(self, attribute: str) -> int:
        """Position of ``attribute`` in the fine→coarse level order."""
        try:
            return self.levels.index(attribute)
        except ValueError:
            raise WarehouseError(
                f"{attribute!r} is not a level of dimension {self.name!r}"
            ) from None


def build_dimension(
    name: str,
    source: Table,
    attributes: Sequence[str],
    *,
    levels: Sequence[str] | None = None,
) -> Dimension:
    """Build a dimension from the distinct attribute combinations of ``source``.

    Surrogate keys are dense integers in first-seen order. ``levels``
    defaults to the attribute order given (finest first).

    Dimension rows keep *where-provenance* (the base cells their attribute
    values were copied from, for elicitation displays) but carry **empty
    lineage**: a dimension member is reference data, not a record. This
    keeps contributor counts honest — joining the fact to its dimensions
    must not inflate an aggregate cell's lineage with every source row that
    ever exhibited the member (which would also leak rows from *other*
    groups into a cell's contributor set).
    """
    if not attributes:
        raise WarehouseError(f"dimension {name!r} needs at least one attribute")
    for attr in attributes:
        source.schema.column(attr)
    key_column = f"{name}_id"
    schema = Schema(
        [Column(key_column, ColumnType.INT, nullable=False)]
        + [source.schema.column(a) for a in attributes]
    )
    indices = [source.schema.index_of(a) for a in attributes]
    seen: dict[tuple[Any, ...], int] = {}
    rows: list[tuple[Any, ...]] = []
    provs: list[RowProvenance] = []
    for i, row in enumerate(source.rows):
        combo = tuple(row[j] for j in indices)
        if combo in seen:
            k = seen[combo]
            provs[k] = RowProvenance(
                lineage=provs[k].lineage,
                where={
                    a: provs[k].where_of(a) | source.provenance[i].where_of(a)
                    for a in attributes
                },
            )
            continue
        key = len(rows)
        seen[combo] = key
        where = {
            a: source.provenance[i].where_of(a) for a in attributes
        }
        rows.append((key,) + combo)
        provs.append(RowProvenance(lineage=frozenset(), where=where))
    table = Table.derived(f"dim_{name}", schema, rows, provs, provider="warehouse")
    return Dimension(
        name=name,
        key=key_column,
        table=table,
        levels=tuple(levels) if levels is not None else tuple(attributes),
    )


def build_date_dimension(
    name: str,
    source: Table,
    date_column: str,
) -> tuple[Dimension, Table]:
    """A calendar dimension with the classic day → month → year roll-up.

    Derives ``<date>_month``/``<date>_year`` attributes from a DATE column
    of ``source`` and returns both the dimension and a copy of ``source``
    extended with those attributes (fact building needs the derived columns
    present on the source side for key lookups).
    """
    column = source.schema.column(date_column)
    if column.ctype is not ColumnType.DATE:
        raise WarehouseError(f"{date_column!r} is not a DATE column")
    month, year = f"{date_column}_month", f"{date_column}_year"

    extended_schema = Schema(
        list(source.schema.columns)
        + [
            Column(month, ColumnType.STRING, column.nullable),
            Column(year, ColumnType.INT, column.nullable),
        ]
    )
    idx = source.schema.index_of(date_column)
    rows = []
    for row in source.rows:
        value = row[idx]
        if value is None:
            rows.append(row + (None, None))
        else:
            rows.append(row + (f"{value.year:04d}-{value.month:02d}", value.year))
    extended = Table.derived(
        source.name,
        extended_schema,
        rows,
        list(source.provenance),
        provider=source.provider,
    )
    dimension = build_dimension(
        name,
        extended,
        [date_column, month, year],
        levels=[date_column, month, year],
    )
    return dimension, extended


def build_fact(
    name: str,
    source: Table,
    dimensions: Sequence[tuple[Dimension, dict[str, str]]],
    measures: Sequence[str],
    *,
    degenerate: Sequence[str] = (),
) -> Table:
    """Build a fact table from ``source``.

    ``dimensions`` pairs each dimension with a mapping
    *source column → dimension attribute* used to look up surrogate keys.
    ``measures`` are numeric columns copied through; ``degenerate`` columns
    are carried on the fact without a dimension (dates, flags).
    Rows whose dimension lookup fails are rejected — the warehouse load is
    not allowed to silently drop or invent facts.
    """
    for m in measures:
        source.schema.column(m)
    fact_columns = [Column(d.key, ColumnType.INT, nullable=False) for d, _ in dimensions]
    fact_columns += [source.schema.column(c) for c in degenerate]
    fact_columns += [source.schema.column(m) for m in measures]
    schema = Schema(fact_columns)

    lookups = []
    for dim, mapping in dimensions:
        attr_idx = {
            a: dim.table.schema.index_of(a) for a in mapping.values()
        }
        key_idx = dim.table.schema.index_of(dim.key)
        index: dict[tuple[Any, ...], int] = {}
        for row in dim.table.rows:
            combo = tuple(row[attr_idx[a]] for a in mapping.values())
            index[combo] = row[key_idx]
        src_idx = [source.schema.index_of(c) for c in mapping.keys()]
        lookups.append((dim, src_idx, index))

    degen_idx = [source.schema.index_of(c) for c in degenerate]
    measure_idx = [source.schema.index_of(m) for m in measures]

    rows: list[tuple[Any, ...]] = []
    provs: list[RowProvenance] = []
    for i, row in enumerate(source.rows):
        keys = []
        for dim, src_idx, index in lookups:
            combo = tuple(row[j] for j in src_idx)
            if combo not in index:
                raise WarehouseError(
                    f"fact {name!r}: no {dim.name} member for {combo!r}"
                )
            keys.append(index[combo])
        values = tuple(keys) + tuple(row[j] for j in degen_idx) + tuple(
            row[j] for j in measure_idx
        )
        rows.append(values)
        provs.append(source.provenance[i])
    return Table.derived(f"fact_{name}", schema, rows, provs, provider="warehouse")


@dataclass
class StarSchema:
    """A fact table with its dimensions, registered into a catalog."""

    name: str
    fact: Table
    dimensions: list[Dimension] = field(default_factory=list)

    def register(self, catalog: Catalog) -> None:
        """Register fact, dimensions, and the denormalized wide view."""
        catalog.add_table(self.fact, replace=True)
        for dim in self.dimensions:
            catalog.add_table(dim.table, replace=True)
        catalog.add_view(self.wide_view(), replace=True)

    def dimension(self, name: str) -> Dimension:
        for dim in self.dimensions:
            if dim.name == name:
                return dim
        raise WarehouseError(f"star {self.name!r} has no dimension {name!r}")

    def attribute_dimension(self, attribute: str) -> Dimension:
        """The dimension owning ``attribute`` as a level."""
        for dim in self.dimensions:
            if attribute in dim.levels:
                return dim
        raise WarehouseError(f"no dimension carries attribute {attribute!r}")

    def wide_view_name(self) -> str:
        return f"wide_{self.name}"

    def wide_query(self) -> Query:
        """The denormalization join: fact ⋈ every dimension."""
        query = Query.from_(self.fact.name)
        for dim in self.dimensions:
            query = query.join(dim.table.name, [(dim.key, dim.key)])
        return query

    def wide_view(self) -> View:
        """The wide view — the universe meta-reports are carved from."""
        # Project away surrogate keys: owners discuss attributes, not keys.
        attributes: list[str] = []
        for dim in self.dimensions:
            attributes.extend(dim.levels)
        non_key = [
            c.name
            for c in self.fact.schema
            if not any(c.name == d.key for d in self.dimensions)
        ]
        query = self.wide_query().project(*(attributes + non_key))
        return View(
            self.wide_view_name(),
            query,
            description=f"denormalized view of star {self.name!r}",
        )
