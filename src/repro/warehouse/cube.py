"""Data-cube operations over a star schema: roll-up, drill-down, slice, dice.

The cube is logical: every operation compiles to a query over the star's
wide view and runs through the provenance-carrying engine, so each cell of
every aggregate knows its contributor set — the hook fine-grained cube
authorization (Wang et al. [14]) and aggregation-threshold PLAs need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import WarehouseError
from repro.relational.algebra import AggSpec
from repro.relational.catalog import Catalog
from repro.relational.engine import execute
from repro.relational.expressions import Expr
from repro.relational.query import Query
from repro.relational.table import Table
from repro.warehouse.star import StarSchema

__all__ = ["Cube", "CubeQuery"]


@dataclass(frozen=True)
class CubeQuery:
    """A logical cube request: group-by attributes, measures, slice predicate."""

    group_by: tuple[str, ...]
    measures: tuple[AggSpec, ...]
    slice_predicate: Expr | None = None

    def describe(self) -> str:
        parts = [f"by ({', '.join(self.group_by) or 'ALL'})"]
        parts.append(f"measures ({', '.join(str(m) for m in self.measures)})")
        if self.slice_predicate is not None:
            parts.append(f"where {self.slice_predicate}")
        return " ".join(parts)


class Cube:
    """OLAP operations over one star schema."""

    def __init__(self, star: StarSchema, catalog: Catalog) -> None:
        self.star = star
        self.catalog = catalog
        if star.wide_view_name() not in catalog:
            star.register(catalog)

    # -- core -------------------------------------------------------------

    def compile(self, cube_query: CubeQuery) -> Query:
        """Compile a cube request to an engine query over the wide view."""
        for attr in cube_query.group_by:
            self.star.attribute_dimension(attr)  # validates the attribute
        query = Query.from_(self.star.wide_view_name())
        if cube_query.slice_predicate is not None:
            query = query.filter(cube_query.slice_predicate)
        query = query.group(*cube_query.group_by).agg(*cube_query.measures)
        return query

    def evaluate(self, cube_query: CubeQuery, *, name: str = "cube_result") -> Table:
        """Run a cube request."""
        return execute(self.compile(cube_query), self.catalog, name=name)

    # -- OLAP verbs ----------------------------------------------------------

    def rollup(
        self,
        cube_query: CubeQuery,
        attribute: str,
    ) -> CubeQuery:
        """Coarsen: replace ``attribute`` with the next level of its dimension
        (or drop it entirely at the top)."""
        dim = self.star.attribute_dimension(attribute)
        level = dim.level_of(attribute)
        if attribute not in cube_query.group_by:
            raise WarehouseError(f"{attribute!r} is not in the current group-by")
        if level + 1 < len(dim.levels):
            replacement: tuple[str, ...] = tuple(
                dim.levels[level + 1] if g == attribute else g
                for g in cube_query.group_by
            )
        else:
            replacement = tuple(g for g in cube_query.group_by if g != attribute)
        return CubeQuery(replacement, cube_query.measures, cube_query.slice_predicate)

    def drilldown(self, cube_query: CubeQuery, attribute: str) -> CubeQuery:
        """Refine: replace ``attribute`` with the next finer level."""
        dim = self.star.attribute_dimension(attribute)
        level = dim.level_of(attribute)
        if attribute not in cube_query.group_by:
            raise WarehouseError(f"{attribute!r} is not in the current group-by")
        if level == 0:
            raise WarehouseError(f"{attribute!r} is already the finest level")
        replacement = tuple(
            dim.levels[level - 1] if g == attribute else g
            for g in cube_query.group_by
        )
        return CubeQuery(replacement, cube_query.measures, cube_query.slice_predicate)

    def slice(self, cube_query: CubeQuery, predicate: Expr) -> CubeQuery:
        """Restrict the cube to cells satisfying ``predicate``."""
        combined = (
            predicate
            if cube_query.slice_predicate is None
            else cube_query.slice_predicate & predicate
        )
        return CubeQuery(cube_query.group_by, cube_query.measures, combined)

    def dice(self, cube_query: CubeQuery, *attributes: str) -> CubeQuery:
        """Project the group-by down to ``attributes`` (must be a subset)."""
        missing = set(attributes) - set(cube_query.group_by)
        if missing:
            raise WarehouseError(f"dice attributes not in group-by: {sorted(missing)}")
        return CubeQuery(
            tuple(a for a in cube_query.group_by if a in attributes),
            cube_query.measures,
            cube_query.slice_predicate,
        )

    def base_query(
        self, group_by: Sequence[str], measures: Sequence[AggSpec]
    ) -> CubeQuery:
        """Convenience constructor for the finest-grain starting request."""
        return CubeQuery(tuple(group_by), tuple(measures))
