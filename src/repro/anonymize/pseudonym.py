"""Deterministic pseudonymization of identifier columns.

The source-level gateway (Fig 2a) and report-level anonymization
requirements (§5 annotation kind iii) both need identity columns replaced by
stable opaque tokens: the same patient maps to the same pseudonym everywhere
(so joins and longitudinal analyses still work), but the mapping is
infeasible to invert without the salt.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import AnonymizationError
from repro.relational.table import Table

__all__ = ["Pseudonymizer"]


@dataclass
class Pseudonymizer:
    """Keyed, prefix-tagged, deterministic pseudonym generator.

    Uses HMAC-SHA256 truncated to ``digits`` hex characters. The instance
    keeps an escrow map so an authorized auditor (holding the instance) can
    re-identify, which is exactly the controlled re-identification path
    dispute resolution needs.
    """

    salt: str
    prefix: str = "anon"
    digits: int = 8
    _escrow: dict[str, str] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.salt:
            raise AnonymizationError("pseudonymizer salt must be non-empty")
        if self.digits < 4:
            raise AnonymizationError("digits must be at least 4")

    def pseudonym(self, value: object) -> str:
        """The stable pseudonym of ``value`` (NULL-safe: None → 'anon-null')."""
        if value is None:
            return f"{self.prefix}-null"
        digest = hmac.new(
            self.salt.encode(), str(value).encode(), hashlib.sha256
        ).hexdigest()[: self.digits]
        token = f"{self.prefix}-{digest}"
        self._escrow[token] = str(value)
        return token

    def reidentify(self, token: str) -> str:
        """Escrowed inverse lookup (auditor path)."""
        try:
            return self._escrow[token]
        except KeyError:
            raise AnonymizationError(
                f"token {token!r} not in escrow (never issued by this instance)"
            ) from None

    def apply(
        self, table: Table, columns: Sequence[str], *, name: str | None = None
    ) -> Table:
        """A copy of ``table`` with the given columns pseudonymized.

        Column types stay STRING-compatible: pseudonyms are strings, so the
        output schema keeps the columns but retypes them as strings if needed.
        """
        from repro.relational.schema import Column, Schema
        from repro.relational.types import ColumnType

        targets = set(columns)
        for c in targets:
            table.schema.column(c)
        schema = Schema(
            Column(c.name, ColumnType.STRING, c.nullable) if c.name in targets else c
            for c in table.schema
        )
        indices = [table.schema.index_of(c) for c in columns]
        rows = []
        for row in table.rows:
            mutated = list(row)
            for idx in indices:
                mutated[idx] = self.pseudonym(row[idx])
            rows.append(tuple(mutated))
        return Table.derived(
            name or f"{table.name}_pseudo",
            schema,
            rows,
            list(table.provenance),
            provider=table.provider,
        )
