"""Quality metrics for anonymized releases.

Used by the ABL-ANON benchmark to reproduce the k-vs-utility and
noise-vs-accuracy trade-off shapes the paper's cited techniques promise.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import AnonymizationError
from repro.anonymize.kanonymity import equivalence_classes
from repro.relational.table import Table

__all__ = [
    "discernibility",
    "average_class_size",
    "generalization_loss",
    "aggregate_error",
]


def discernibility(table: Table, qi_columns: Sequence[str]) -> int:
    """Discernibility metric: Σ |class|² over equivalence classes.

    Lower is better; the identity release scores n (all classes singleton),
    full suppression scores n².
    """
    return sum(
        len(members) ** 2
        for members in equivalence_classes(table, qi_columns).values()
    )


def average_class_size(table: Table, qi_columns: Sequence[str]) -> float:
    """C_avg: n / number of equivalence classes (≥ k for a k-anonymous release)."""
    classes = equivalence_classes(table, qi_columns)
    if not classes:
        return 0.0
    return len(table) / len(classes)


def generalization_loss(
    original: Table, anonymized: Table, qi_columns: Sequence[str]
) -> float:
    """Fraction of QI cells whose value changed (0 = untouched, 1 = all recoded).

    A deliberately simple, hierarchy-independent loss proxy: Mondrian ranges,
    recoded labels, and suppression all count as changed cells.
    """
    if len(original) == 0:
        return 0.0
    changed = 0
    total = 0
    anon_by_prov: dict[frozenset, tuple] = {}
    # Anonymization preserves per-row provenance; align rows through it.
    for i in range(len(anonymized)):
        anon_by_prov[anonymized.provenance[i].lineage] = anonymized.rows[i]
    for i in range(len(original)):
        key = original.provenance[i].lineage
        anon_row = anon_by_prov.get(key)
        for c in qi_columns:
            total += 1
            if anon_row is None:
                changed += 1  # suppressed row
                continue
            orig_val = original.rows[i][original.schema.index_of(c)]
            anon_val = anon_row[anonymized.schema.index_of(c)]
            if str(orig_val) != str(anon_val):
                changed += 1
    return changed / total if total else 0.0


def aggregate_error(
    truth: Table,
    release: Table,
    *,
    group_column: str,
    value_column: str,
) -> float:
    """Mean relative error of per-group SUM(value) between truth and release.

    Groups present in the truth but absent from the release contribute a
    relative error of 1 (their whole mass is lost) — this is what suppression
    costs an aggregate report.
    """
    def sums(table: Table) -> dict[Any, float]:
        g = table.schema.index_of(group_column)
        v = table.schema.index_of(value_column)
        out: dict[Any, float] = {}
        for row in table.rows:
            if row[v] is None:
                continue
            out[row[g]] = out.get(row[g], 0.0) + float(row[v])
        return out

    truth_sums = sums(truth)
    release_sums = sums(release)
    if not truth_sums:
        raise AnonymizationError("truth table has no aggregatable groups")
    errors = []
    for group, true_sum in truth_sums.items():
        got = release_sums.get(group, 0.0)
        denom = abs(true_sum) if true_sum else 1.0
        errors.append(abs(got - true_sum) / denom)
    return sum(errors) / len(errors)
