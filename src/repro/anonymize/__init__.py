"""Anonymization: k-anonymity, l-diversity, perturbation, pseudonymization."""

from repro.anonymize.generalization import (
    SUPPRESSED,
    Hierarchy,
    suppression_hierarchy,
    taxonomy_hierarchy,
    year_hierarchy,
    zip_hierarchy,
)
from repro.anonymize.kanonymity import (
    AnonymizationResult,
    QuasiIdentifier,
    equivalence_classes,
    global_recoding,
    is_k_anonymous,
    mondrian_anonymize,
)
from repro.anonymize.ldiversity import (
    DiversityReport,
    enforce_l_diversity,
    entropy_l_diversity,
    is_l_diverse,
)
from repro.anonymize.metrics import (
    aggregate_error,
    average_class_size,
    discernibility,
    generalization_loss,
)
from repro.anonymize.perturbation import (
    PerturbationReport,
    perturb_numeric,
    scramble_column,
)
from repro.anonymize.pseudonym import Pseudonymizer

__all__ = [
    "AnonymizationResult",
    "DiversityReport",
    "Hierarchy",
    "PerturbationReport",
    "Pseudonymizer",
    "QuasiIdentifier",
    "SUPPRESSED",
    "aggregate_error",
    "average_class_size",
    "discernibility",
    "enforce_l_diversity",
    "entropy_l_diversity",
    "equivalence_classes",
    "generalization_loss",
    "global_recoding",
    "is_k_anonymous",
    "is_l_diverse",
    "mondrian_anonymize",
    "perturb_numeric",
    "scramble_column",
    "suppression_hierarchy",
    "taxonomy_hierarchy",
    "year_hierarchy",
    "zip_hierarchy",
]
