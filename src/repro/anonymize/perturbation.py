"""Data perturbation and value scrambling (paper §4, citing Verykios et al. [13]).

Two warehouse-side mechanisms that alter microdata while preserving the
quality of aggregates:

* :func:`perturb_numeric` — zero-mean additive noise on numeric columns,
  optionally post-shifted so the column mean is preserved *exactly*; the
  statistical distribution is preserved in expectation, so aggregate reports
  computed from perturbed data stay close to the truth.
* :func:`scramble_column` — the "cryptographic scrambling" stand-in: a keyed
  permutation of values *within* a column, which destroys row-level
  attribution but preserves every column-marginal aggregate exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.errors import AnonymizationError
from repro.relational.table import Table
from repro.relational.types import ColumnType

__all__ = ["PerturbationReport", "perturb_numeric", "scramble_column"]


@dataclass(frozen=True)
class PerturbationReport:
    """What a perturbation did, for EXPERIMENTS bookkeeping."""

    columns: tuple[str, ...]
    noise_scale: float
    mean_preserved: bool


def perturb_numeric(
    table: Table,
    columns: Sequence[str],
    *,
    noise_scale: float,
    seed: int,
    preserve_mean: bool = True,
    name: str | None = None,
) -> tuple[Table, PerturbationReport]:
    """Add Gaussian noise ``N(0, noise_scale·σ_col)`` to numeric columns.

    ``noise_scale`` is relative to each column's own standard deviation, so
    one knob fits heterogeneous columns. With ``preserve_mean`` the residual
    sampling error of the noise is subtracted, keeping SUM/AVG aggregates on
    the full table exact.
    """
    if noise_scale < 0:
        raise AnonymizationError("noise_scale must be non-negative")
    for c in columns:
        ctype = table.schema.column(c).ctype
        if ctype not in (ColumnType.INT, ColumnType.FLOAT):
            raise AnonymizationError(f"column {c!r} is not numeric")
    rng = random.Random(seed)
    rows = [list(row) for row in table.rows]
    for c in columns:
        idx = table.schema.index_of(c)
        values = [row[idx] for row in rows]
        present = [i for i, v in enumerate(values) if v is not None]
        if not present:
            continue
        mean = sum(values[i] for i in present) / len(present)
        var = sum((values[i] - mean) ** 2 for i in present) / max(1, len(present) - 1)
        sigma = noise_scale * (var**0.5)
        noise = [rng.gauss(0.0, sigma) for _ in present]
        if preserve_mean and present:
            drift = sum(noise) / len(noise)
            noise = [n - drift for n in noise]
        is_int = table.schema.column(c).ctype is ColumnType.INT
        for i, n in zip(present, noise):
            perturbed = values[i] + n
            rows[i][idx] = round(perturbed) if is_int else perturbed
    out = Table.derived(
        name or f"{table.name}_perturbed",
        table.schema,
        [tuple(row) for row in rows],
        list(table.provenance),
        provider=table.provider,
    )
    report = PerturbationReport(
        columns=tuple(columns),
        noise_scale=noise_scale,
        mean_preserved=preserve_mean,
    )
    return out, report


def scramble_column(
    table: Table,
    column: str,
    *,
    seed: int,
    name: str | None = None,
) -> Table:
    """Permute one column's values across rows with a keyed shuffle.

    Every single-column aggregate is preserved exactly; the association
    between the scrambled column and the rest of the row is destroyed.
    Provenance is intentionally *kept per row position*: an auditor with the
    key (the seed) can invert the permutation, matching the "cryptographic
    techniques to scramble the data" role in §4.
    """
    idx = table.schema.index_of(column)
    rng = random.Random(seed)
    order = list(range(len(table.rows)))
    rng.shuffle(order)
    rows = []
    for i, row in enumerate(table.rows):
        mutated = list(row)
        mutated[idx] = table.rows[order[i]][idx]
        rows.append(tuple(mutated))
    return Table.derived(
        name or f"{table.name}_scrambled",
        table.schema,
        rows,
        list(table.provenance),
        provider=table.provider,
    )
