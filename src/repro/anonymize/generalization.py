"""Generalization hierarchies for k-anonymity (Sweeney-style recoding).

A :class:`Hierarchy` maps a concrete value to progressively coarser
generalizations: level 0 is the value itself and the top level is full
suppression (``*``). Hierarchies are defined either by explicit level
functions or via the convenience constructors for the common domains of the
healthcare scenario (zip codes, years, categorical taxonomies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.errors import AnonymizationError

__all__ = ["Hierarchy", "zip_hierarchy", "year_hierarchy", "taxonomy_hierarchy", "suppression_hierarchy"]

SUPPRESSED = "*"


@dataclass(frozen=True)
class Hierarchy:
    """A fixed ladder of generalization functions.

    ``levels[i]`` maps a raw value to its level-``i`` generalization;
    ``levels[0]`` must be the identity (as a string) and the last level must
    map everything to ``*``.
    """

    name: str
    levels: tuple[Callable[[Any], str], ...]

    def __post_init__(self) -> None:
        if len(self.levels) < 2:
            raise AnonymizationError(
                f"hierarchy {self.name!r} needs at least identity and suppression levels"
            )

    @property
    def height(self) -> int:
        """Number of generalization steps above the raw value."""
        return len(self.levels) - 1

    def generalize(self, value: Any, level: int) -> str:
        """The level-``level`` generalization of ``value``."""
        if value is None:
            return SUPPRESSED
        if not 0 <= level < len(self.levels):
            raise AnonymizationError(
                f"level {level} out of range for hierarchy {self.name!r} "
                f"(height {self.height})"
            )
        return self.levels[level](value)

    def loss(self, level: int) -> float:
        """Normalized information loss of publishing at ``level`` (0..1)."""
        return level / self.height


def zip_hierarchy(digits: int = 5) -> Hierarchy:
    """Postal-code hierarchy: drop one trailing digit per level."""
    if digits < 1:
        raise AnonymizationError("zip codes need at least one digit")

    def level_fn(keep: int) -> Callable[[Any], str]:
        def fn(value: Any) -> str:
            text = str(value)
            if keep == 0:
                return SUPPRESSED
            return text[:keep] + "*" * max(0, len(text) - keep)

        return fn

    return Hierarchy(
        "zip", tuple(level_fn(digits - i) for i in range(digits + 1))
    )


def year_hierarchy(*, widths: Sequence[int] = (1, 10, 25)) -> Hierarchy:
    """Numeric-year hierarchy: exact, then buckets of growing width, then ``*``."""
    if not widths or widths[0] != 1:
        raise AnonymizationError("widths must start with 1 (the identity level)")

    def bucket_fn(width: int) -> Callable[[Any], str]:
        def fn(value: Any) -> str:
            year = int(value)
            if width == 1:
                return str(year)
            lo = (year // width) * width
            return f"{lo}-{lo + width - 1}"

        return fn

    levels = tuple(bucket_fn(w) for w in widths) + ((lambda _v: SUPPRESSED),)
    return Hierarchy("year", levels)


def taxonomy_hierarchy(
    name: str, parents: Mapping[str, str], *, height: int | None = None
) -> Hierarchy:
    """Categorical hierarchy from a child→parent mapping.

    Values missing from ``parents`` generalize straight to ``*``. ``height``
    defaults to the longest parent chain plus suppression.
    """

    def chain(value: str) -> list[str]:
        out = [value]
        seen = {value}
        while out[-1] in parents:
            nxt = parents[out[-1]]
            if nxt in seen:
                raise AnonymizationError(f"taxonomy cycle at {nxt!r}")
            out.append(nxt)
            seen.add(nxt)
        return out

    max_height = height
    if max_height is None:
        max_height = 1 + max(
            (len(chain(v)) - 1 for v in parents), default=0
        )

    def level_fn(level: int) -> Callable[[Any], str]:
        def fn(value: Any) -> str:
            if level >= max_height:
                return SUPPRESSED
            steps = chain(str(value))
            return steps[min(level, len(steps) - 1)]

        return fn

    return Hierarchy(name, tuple(level_fn(i) for i in range(max_height + 1)))


def suppression_hierarchy(name: str = "suppress") -> Hierarchy:
    """The trivial hierarchy: the value, or ``*`` (for direct identifiers)."""
    return Hierarchy(name, (lambda v: str(v), lambda _v: SUPPRESSED))
