"""k-anonymity via Mondrian multidimensional partitioning and global recoding.

Two published families, both cited by the paper via Sweeney [12]:

* :func:`mondrian_anonymize` — LeFevre et al.'s Mondrian: recursively split
  the record set on the quasi-identifier with the widest (normalized) range,
  median-cut, while every part keeps ≥ k records; publish each equivalence
  class with QI values generalized to the class's range/value-set.
* :func:`global_recoding` — Samarati-style single-dimensional full-domain
  generalization: pick one hierarchy level per QI (lowest total loss first),
  suppressing up to ``max_suppression`` records that still violate k.

Output tables keep per-row provenance, so anonymized releases remain
auditable: each published row still knows which base rows it stands for.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import AnonymizationError
from repro.anonymize.generalization import SUPPRESSED, Hierarchy
from repro.relational.schema import Column, Schema
from repro.relational.table import RowProvenance, Table
from repro.relational.types import ColumnType

__all__ = [
    "QuasiIdentifier",
    "AnonymizationResult",
    "mondrian_anonymize",
    "global_recoding",
    "is_k_anonymous",
    "equivalence_classes",
]


@dataclass(frozen=True)
class QuasiIdentifier:
    """A quasi-identifying column, optionally with a recoding hierarchy.

    Numeric QIs without a hierarchy are generalized to ranges by Mondrian.
    ``global_recoding`` requires a hierarchy for every QI.
    """

    column: str
    hierarchy: Hierarchy | None = None


@dataclass
class AnonymizationResult:
    """An anonymized release plus its bookkeeping."""

    table: Table
    k: int
    quasi_identifiers: tuple[str, ...]
    suppressed_rows: int = 0
    partitions: int = 0
    levels_used: dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"k={self.k}, classes={self.partitions}, "
            f"suppressed={self.suppressed_rows}, rows={len(self.table)}"
        )


def equivalence_classes(
    table: Table, qi_columns: Sequence[str]
) -> dict[tuple[Any, ...], list[int]]:
    """Group row indices by their quasi-identifier combination."""
    idx = [table.schema.index_of(c) for c in qi_columns]
    groups: dict[tuple[Any, ...], list[int]] = {}
    for i, row in enumerate(table.rows):
        groups.setdefault(tuple(row[j] for j in idx), []).append(i)
    return groups


def is_k_anonymous(table: Table, qi_columns: Sequence[str], k: int) -> bool:
    """Every QI combination occurs at least ``k`` times (empty table passes)."""
    if k < 1:
        raise AnonymizationError("k must be at least 1")
    return all(
        len(members) >= k
        for members in equivalence_classes(table, qi_columns).values()
    )


def _generalized_schema(schema: Schema, qi_columns: set[str]) -> Schema:
    """QI columns become strings (ranges/recoded labels); others unchanged."""
    return Schema(
        Column(c.name, ColumnType.STRING, True) if c.name in qi_columns else c
        for c in schema
    )


# -- Mondrian -----------------------------------------------------------------


def mondrian_anonymize(
    table: Table,
    quasi_identifiers: Sequence[QuasiIdentifier],
    k: int,
    *,
    name: str | None = None,
) -> AnonymizationResult:
    """Multidimensional k-anonymization (strict Mondrian, median cut)."""
    if k < 1:
        raise AnonymizationError("k must be at least 1")
    if not quasi_identifiers:
        raise AnonymizationError("need at least one quasi-identifier")
    qi_cols = [qi.column for qi in quasi_identifiers]
    for c in qi_cols:
        table.schema.column(c)
    if len(table) and len(table) < k:
        raise AnonymizationError(
            f"table has {len(table)} rows; cannot be {k}-anonymous"
        )

    col_idx = {qi.column: table.schema.index_of(qi.column) for qi in quasi_identifiers}
    numeric = {
        qi.column: table.schema.column(qi.column).ctype
        in (ColumnType.INT, ColumnType.FLOAT)
        for qi in quasi_identifiers
    }

    # Domain widths for normalized-range split choice.
    def span(members: list[int], column: str) -> float:
        values = [table.rows[i][col_idx[column]] for i in members]
        values = [v for v in values if v is not None]
        if not values:
            return 0.0
        if numeric[column]:
            return float(max(values) - min(values))
        return float(len(set(values)) - 1)

    domain_span = {c: span(list(range(len(table))), c) or 1.0 for c in qi_cols}

    def split(members: list[int]) -> list[list[int]]:
        if len(members) < 2 * k:
            return [members]
        # Widest normalized span first.
        order = sorted(
            qi_cols, key=lambda c: span(members, c) / domain_span[c], reverse=True
        )
        for column in order:
            idx = col_idx[column]
            keyed = sorted(
                members,
                key=lambda i: (table.rows[i][idx] is None, table.rows[i][idx]),
            )
            values = [table.rows[i][idx] for i in keyed]
            # Median cut that keeps equal values on one side (strict Mondrian).
            mid = len(keyed) // 2
            median = values[mid]
            left = [i for i in keyed if _lt(table.rows[i][idx], median)]
            right = [i for i in keyed if not _lt(table.rows[i][idx], median)]
            if len(left) >= k and len(right) >= k:
                return split(left) + split(right)
        return [members]

    members_all = list(range(len(table)))
    partitions = split(members_all) if members_all else []

    schema = _generalized_schema(table.schema, set(qi_cols))
    rows: list[tuple[Any, ...]] = []
    provs: list[RowProvenance] = []
    for part in partitions:
        summaries = {c: _summarize(table, part, col_idx[c], numeric[c]) for c in qi_cols}
        for i in part:
            row = list(table.rows[i])
            for c in qi_cols:
                row[col_idx[c]] = summaries[c]
            rows.append(tuple(row))
            provs.append(table.provenance[i])
    out = Table.derived(
        name or f"{table.name}_k{k}", schema, rows, provs, provider="anonymized"
    )
    return AnonymizationResult(
        table=out,
        k=k,
        quasi_identifiers=tuple(qi_cols),
        partitions=len(partitions),
    )


def _lt(value: Any, pivot: Any) -> bool:
    if value is None:
        return False
    if pivot is None:
        return True
    return value < pivot


def _summarize(table: Table, members: list[int], idx: int, is_numeric: bool) -> str:
    values = [table.rows[i][idx] for i in members if table.rows[i][idx] is not None]
    if not values:
        return SUPPRESSED
    if is_numeric:
        lo, hi = min(values), max(values)
        return str(lo) if lo == hi else f"{lo}-{hi}"
    distinct = sorted({str(v) for v in values})
    return distinct[0] if len(distinct) == 1 else "{" + ",".join(distinct) + "}"


# -- global recoding -----------------------------------------------------------


def global_recoding(
    table: Table,
    quasi_identifiers: Sequence[QuasiIdentifier],
    k: int,
    *,
    max_suppression: float = 0.05,
    name: str | None = None,
) -> AnonymizationResult:
    """Full-domain generalization with bounded suppression.

    Searches level vectors in order of total information loss; within each
    vector, rows in undersized equivalence classes are suppressed. The first
    vector whose suppression fraction is within ``max_suppression`` wins.
    """
    if k < 1:
        raise AnonymizationError("k must be at least 1")
    if not quasi_identifiers:
        raise AnonymizationError("need at least one quasi-identifier")
    for qi in quasi_identifiers:
        if qi.hierarchy is None:
            raise AnonymizationError(
                f"global recoding requires a hierarchy for {qi.column!r}"
            )
        table.schema.column(qi.column)
    if not 0.0 <= max_suppression <= 1.0:
        raise AnonymizationError("max_suppression must be in [0, 1]")

    qi_cols = [qi.column for qi in quasi_identifiers]
    hierarchies = {qi.column: qi.hierarchy for qi in quasi_identifiers}
    col_idx = {c: table.schema.index_of(c) for c in qi_cols}
    n = len(table)
    budget = int(max_suppression * n)

    level_ranges = [range(hierarchies[c].height + 1) for c in qi_cols]
    candidates = sorted(
        itertools.product(*level_ranges),
        key=lambda vec: (
            sum(hierarchies[c].loss(v) for c, v in zip(qi_cols, vec)),
            vec,
        ),
    )

    for vector in candidates:
        recoded = [
            tuple(
                hierarchies[c].generalize(table.rows[i][col_idx[c]], v)
                for c, v in zip(qi_cols, vector)
            )
            for i in range(n)
        ]
        counts: dict[tuple[str, ...], int] = {}
        for key in recoded:
            counts[key] = counts.get(key, 0) + 1
        suppressed = sum(
            1 for key in recoded if counts[key] < k
        )
        if suppressed <= budget:
            schema = _generalized_schema(table.schema, set(qi_cols))
            rows: list[tuple[Any, ...]] = []
            provs: list[RowProvenance] = []
            for i in range(n):
                if counts[recoded[i]] < k:
                    continue
                row = list(table.rows[i])
                for c, value in zip(qi_cols, recoded[i]):
                    row[col_idx[c]] = value
                rows.append(tuple(row))
                provs.append(table.provenance[i])
            out = Table.derived(
                name or f"{table.name}_k{k}", schema, rows, provs,
                provider="anonymized",
            )
            return AnonymizationResult(
                table=out,
                k=k,
                quasi_identifiers=tuple(qi_cols),
                suppressed_rows=suppressed,
                partitions=len(
                    {key for key in recoded if counts[key] >= k}
                ),
                levels_used=dict(zip(qi_cols, vector)),
            )
    raise AnonymizationError(
        f"no generalization achieves {k}-anonymity within "
        f"{max_suppression:.0%} suppression"
    )
