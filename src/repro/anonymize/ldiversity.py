"""l-diversity on top of k-anonymous releases (Machanavajjhala et al. [9]).

k-anonymity bounds re-identification but not attribute disclosure: if every
record in an equivalence class shares the same disease, the class size is
irrelevant. Distinct l-diversity requires every class to contain at least
``l`` distinct sensitive values; entropy l-diversity strengthens this to an
entropy bound.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.errors import AnonymizationError
from repro.anonymize.kanonymity import AnonymizationResult, equivalence_classes
from repro.relational.table import Table

__all__ = [
    "is_l_diverse",
    "entropy_l_diversity",
    "enforce_l_diversity",
    "DiversityReport",
]


@dataclass(frozen=True)
class DiversityReport:
    """Per-release diversity diagnostics."""

    l_required: int
    classes_total: int
    classes_failing: int
    min_distinct: int

    @property
    def satisfied(self) -> bool:
        return self.classes_failing == 0


def _class_sensitive_values(
    table: Table, qi_columns: Sequence[str], sensitive: str
) -> list[Counter]:
    sens_idx = table.schema.index_of(sensitive)
    return [
        Counter(table.rows[i][sens_idx] for i in members)
        for members in equivalence_classes(table, qi_columns).values()
    ]


def is_l_diverse(
    table: Table, qi_columns: Sequence[str], sensitive: str, l: int
) -> DiversityReport:
    """Distinct l-diversity check; returns a full report, truthiness via
    ``report.satisfied``."""
    if l < 1:
        raise AnonymizationError("l must be at least 1")
    counters = _class_sensitive_values(table, qi_columns, sensitive)
    failing = sum(1 for c in counters if len(c) < l)
    min_distinct = min((len(c) for c in counters), default=0)
    return DiversityReport(
        l_required=l,
        classes_total=len(counters),
        classes_failing=failing,
        min_distinct=min_distinct,
    )


def entropy_l_diversity(
    table: Table, qi_columns: Sequence[str], sensitive: str, l: int
) -> bool:
    """Entropy l-diversity: every class's entropy ≥ log(l)."""
    if l < 1:
        raise AnonymizationError("l must be at least 1")
    threshold = math.log(l)
    for counter in _class_sensitive_values(table, qi_columns, sensitive):
        total = sum(counter.values())
        entropy = -sum(
            (count / total) * math.log(count / total)
            for count in counter.values()
        )
        if entropy < threshold - 1e-12:
            return False
    return True


def enforce_l_diversity(
    result: AnonymizationResult, sensitive: str, l: int
) -> AnonymizationResult:
    """Suppress every equivalence class that fails distinct l-diversity.

    Applied after k-anonymization: the release keeps its k guarantee (only
    whole classes are removed) and gains distinct l-diversity.
    """
    if l < 1:
        raise AnonymizationError("l must be at least 1")
    table = result.table
    sens_idx = table.schema.index_of(sensitive)
    keep: list[int] = []
    kept_classes = 0
    for members in equivalence_classes(table, result.quasi_identifiers).values():
        distinct = {table.rows[i][sens_idx] for i in members}
        if len(distinct) >= l:
            keep.extend(members)
            kept_classes += 1
    keep.sort()
    out = Table.derived(
        table.name,
        table.schema,
        [table.rows[i] for i in keep],
        [table.provenance[i] for i in keep],
        provider=table.provider,
    )
    return AnonymizationResult(
        table=out,
        k=result.k,
        quasi_identifiers=result.quasi_identifiers,
        suppressed_rows=result.suppressed_rows + (len(table) - len(keep)),
        partitions=kept_classes,
        levels_used=dict(result.levels_used),
    )
