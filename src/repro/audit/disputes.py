"""Dispute resolution: evidence bundles for audit findings.

§1: precision is needed "to audit and to resolve possible disputes". When
the auditor flags a disclosure, the resolver assembles everything the
parties need to argue the case: the disclosure record, the governing PLA
text, the derivability attempts, and — for an auditor holding the
pseudonym escrow — the re-identified subjects whose data was involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.anonymize.pseudonym import Pseudonymizer
from repro.audit.log import AuditLog, DisclosureRecord
from repro.audit.violations import Violation
from repro.core.compliance import ComplianceChecker
from repro.errors import ReproError
from repro.reports.catalog import ReportCatalog

__all__ = ["EvidenceBundle", "DisputeResolver"]


@dataclass(frozen=True)
class EvidenceBundle:
    """Everything assembled for one disputed disclosure."""

    violation: Violation
    disclosure: DisclosureRecord
    report_definition: str  # the query text that was agreed
    governing_pla: str  # owner-readable PLA text, or a note if none
    derivability_trail: tuple[str, ...]
    reidentified_subjects: tuple[str, ...] = ()

    def describe(self) -> str:
        lines = [
            f"DISPUTE CASE — disclosure #{self.disclosure.sequence} of "
            f"{self.disclosure.report!r} to {self.disclosure.consumer!r}",
            f"finding: {self.violation}",
            f"agreed report: {self.report_definition}",
            f"governing PLA: {self.governing_pla}",
        ]
        if self.derivability_trail:
            lines.append("derivability trail:")
            lines.extend(f"  {step}" for step in self.derivability_trail)
        if self.reidentified_subjects:
            lines.append(
                "subjects involved (escrow re-identification): "
                + ", ".join(self.reidentified_subjects)
            )
        return "\n".join(lines)


@dataclass
class DisputeResolver:
    """Builds evidence bundles from the audit trail and the agreements."""

    checker: ComplianceChecker
    reports: ReportCatalog
    pseudonymizer: Pseudonymizer | None = None
    _cases: list[EvidenceBundle] = field(default_factory=list)

    def build_case(
        self,
        violation: Violation,
        log: AuditLog,
        *,
        disputed_tokens: tuple[str, ...] = (),
    ) -> EvidenceBundle:
        """Assemble the case for one audit finding.

        ``disputed_tokens`` are pseudonyms from the delivered artifact the
        complaining party presents; the resolver re-identifies them through
        the escrow (auditor-only capability).
        """
        disclosure = self._disclosure_for(violation, log)
        definition_text = "(report version not in catalog)"
        pla_text = "(no covering meta-report PLA)"
        trail: tuple[str, ...] = ()
        try:
            definition = next(
                d
                for d in self.reports.history(violation.report)
                if d.version == disclosure.version
            )
            definition_text = definition.query.describe()
            verdict = self.checker.check_report(definition)
            trail = tuple(
                f"{attempt.metareport}: "
                + ("derivable" if attempt else "; ".join(attempt.reasons))
                for attempt in verdict.derivability_attempts
            )
            if verdict.covering_metareport is not None:
                covering = self.checker.metareports.get(verdict.covering_metareport)
                if covering.pla is not None:
                    pla_text = covering.pla.describe()
        except (ReproError, StopIteration):
            pass
        bundle = EvidenceBundle(
            violation=violation,
            disclosure=disclosure,
            report_definition=definition_text,
            governing_pla=pla_text,
            derivability_trail=trail,
            reidentified_subjects=self._reidentify(disputed_tokens),
        )
        self._cases.append(bundle)
        return bundle

    def _disclosure_for(self, violation: Violation, log: AuditLog) -> DisclosureRecord:
        for record in log.records:
            if record.sequence == violation.sequence:
                return record
        raise ReproError(
            f"violation references disclosure #{violation.sequence}, "
            "which is not in the log"
        )

    def _reidentify(self, tokens: tuple[str, ...]) -> tuple[str, ...]:
        """Escrow lookups for the disputed pseudonyms.

        Only possible for the party holding the pseudonymizer instance —
        exactly the controlled re-identification path the escrow models.
        Unknown tokens are reported as such rather than dropped (a token
        the escrow never issued is itself evidence).
        """
        if self.pseudonymizer is None or not tokens:
            return ()
        subjects = []
        for token in tokens:
            try:
                subjects.append(self.pseudonymizer.reidentify(token))
            except ReproError:
                subjects.append(f"<unknown token {token}>")
        return tuple(subjects)

    def cases(self) -> tuple[EvidenceBundle, ...]:
        return tuple(self._cases)
