"""Auditing: tamper-evident disclosure log, violations, third-party auditor,
retention enforcement, and dispute resolution."""

from repro.audit.auditor import AuditReport, Auditor
from repro.audit.disputes import DisputeResolver, EvidenceBundle
from repro.audit.log import AuditLog, DisclosureRecord
from repro.audit.retention import (
    RetentionFinding,
    purge_expired,
    retention_violations,
)
from repro.audit.subject import (
    SubjectAccessReport,
    SubjectInvolvement,
    subject_access_report,
    subject_row_ids,
)
from repro.audit.violations import Severity, Violation

__all__ = [
    "AuditLog",
    "AuditReport",
    "Auditor",
    "DisclosureRecord",
    "DisputeResolver",
    "EvidenceBundle",
    "RetentionFinding",
    "Severity",
    "SubjectAccessReport",
    "SubjectInvolvement",
    "Violation",
    "purge_expired",
    "retention_violations",
    "subject_access_report",
    "subject_row_ids",
]
