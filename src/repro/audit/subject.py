"""Data-subject access: which deliveries involved a given patient's data?

The paper's scenario starts with the patient ("any information provided by
or related to a patient is ... sensitive personal information"), and
European law (Directive 95/46/EC, cited as [23]) gives the subject a right
of access. Because every delivered row carries lineage, the question "which
reports used my records, and how" is answerable exactly — per delivery, per
row, per cell.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.table import RowId, Table
from repro.reports.definition import ReportInstance
from repro.sources.provider import DataProvider

__all__ = ["SubjectInvolvement", "SubjectAccessReport", "subject_row_ids", "subject_access_report"]


@dataclass(frozen=True)
class SubjectInvolvement:
    """One delivered report instance that used the subject's records."""

    report: str
    version: int
    consumer: str
    rows_involving_subject: tuple[int, ...]  # indices in the delivered table
    records_used: int  # how many of the subject's base records contributed

    def describe(self) -> str:
        return (
            f"{self.report} v{self.version} -> {self.consumer}: "
            f"{len(self.rows_involving_subject)} delivered row(s) computed "
            f"from {self.records_used} of the subject's record(s)"
        )


@dataclass(frozen=True)
class SubjectAccessReport:
    """The full answer to one subject-access request."""

    subject: str
    base_records: int
    involvements: tuple[SubjectInvolvement, ...]

    @property
    def involved_anywhere(self) -> bool:
        return bool(self.involvements)

    def describe(self) -> str:
        lines = [
            f"Subject-access report for {self.subject!r}: "
            f"{self.base_records} source record(s), "
            f"{len(self.involvements)} delivery(ies) involved"
        ]
        lines.extend(f"  - {inv.describe()}" for inv in self.involvements)
        return "\n".join(lines)


def subject_row_ids(
    providers: list[DataProvider],
    subject: str,
    *,
    subject_column: str = "patient",
) -> frozenset[RowId]:
    """All base RowIds holding the subject's records across the providers."""
    out: set[RowId] = set()
    for provider in providers:
        for table_name in provider.table_names():
            table = provider.table(table_name)
            if subject_column not in table.schema:
                continue
            idx = table.schema.index_of(subject_column)
            for i, row in enumerate(table.rows):
                if row[idx] == subject:
                    out.add(RowId(provider.name, table_name, i))
    return frozenset(out)


def _rows_involving(table: Table, row_ids: frozenset[RowId]) -> tuple[tuple[int, ...], int]:
    indices = []
    used: set[RowId] = set()
    for i in range(len(table)):
        overlap = table.lineage_of(i) & row_ids
        if overlap:
            indices.append(i)
            used.update(overlap)
    return tuple(indices), len(used)


def subject_access_report(
    subject: str,
    providers: list[DataProvider],
    deliveries: list[ReportInstance],
    *,
    subject_column: str = "patient",
) -> SubjectAccessReport:
    """Answer a subject-access request over a set of delivered instances.

    Works on the *instances* (which carry lineage), not the audit log —
    the log proves *that* something was disclosed, the instances prove
    *whose data* it contained. Production deployments retain delivered
    instances for exactly this duty.
    """
    row_ids = subject_row_ids(providers, subject, subject_column=subject_column)
    involvements = []
    for instance in deliveries:
        indices, used = _rows_involving(instance.table, row_ids)
        if indices:
            involvements.append(
                SubjectInvolvement(
                    report=instance.definition.name,
                    version=instance.definition.version,
                    consumer=instance.consumer,
                    rows_involving_subject=indices,
                    records_used=used,
                )
            )
    return SubjectAccessReport(
        subject=subject,
        base_records=len(row_ids),
        involvements=tuple(involvements),
    )
