"""Violation records produced by auditing."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Severity", "Violation"]


class Severity(enum.Enum):
    """How bad a detected violation is."""

    INFO = "info"  # irregularity worth a note (e.g. missing obligation tag)
    WARNING = "warning"  # policy drift, no confirmed disclosure
    CRITICAL = "critical"  # sensitive data reached an unauthorized party


@dataclass(frozen=True)
class Violation:
    """One audit finding."""

    severity: Severity
    kind: str  # e.g. "attribute_access", "aggregation_threshold", "audience"
    report: str
    sequence: int  # disclosure-log sequence number, -1 for static findings
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.severity.value.upper()}] {self.kind} in {self.report!r} "
            f"(disclosure #{self.sequence}): {self.detail}"
        )
