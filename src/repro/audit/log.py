"""Append-only, hash-chained disclosure log.

Every delivered report instance is recorded with what auditing needs:
who received which columns, under which purpose, with how many contributors
per cell, descending from which source relations. The chain hash makes the
log tamper-evident — the property a third-party auditing agency (§2) relies
on when the BI provider is the party under audit.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReproError
from repro.obs.trace import TRACER
from repro.policy.subjects import AccessContext
from repro.reports.definition import ReportInstance

__all__ = ["DisclosureRecord", "AuditLog"]


@dataclass(frozen=True)
class DisclosureRecord:
    """One delivered report instance, as the audit trail sees it."""

    sequence: int
    report: str
    version: int
    consumer: str
    roles: tuple[str, ...]
    purpose: str
    columns: tuple[str, ...]
    row_count: int
    min_contributors: int  # smallest lineage set over delivered rows
    source_footprint: tuple[str, ...]  # provider/table identities
    obligations_applied: tuple[str, ...]
    suppressed_rows: int
    trace_id: str = ""  # repro.obs trace of the delivery ("" when obs off)
    degraded: bool = False  # delivered in fail-closed degraded form
    fault_cause: str = ""  # which source(s) were down, and how
    chain_hash: str = ""

    def payload(self) -> str:
        """Canonical serialization (hashed into the chain).

        The trace ID and degradation marker are appended only when present,
        so logs written with observability disabled against healthy sources
        are byte-identical (fields *and* chain hashes) to the
        pre-observability format.
        """
        fields = [
            str(self.sequence),
            self.report,
            str(self.version),
            self.consumer,
            ",".join(self.roles),
            self.purpose,
            ",".join(self.columns),
            str(self.row_count),
            str(self.min_contributors),
            ",".join(self.source_footprint),
            ",".join(self.obligations_applied),
            str(self.suppressed_rows),
        ]
        if self.trace_id:
            fields.append(self.trace_id)
        if self.degraded:
            fields.append(f"DEGRADED:{self.fault_cause}")
        return "|".join(fields)


@dataclass
class AuditLog:
    """The tamper-evident ledger of all disclosures.

    Appends are serialized on an internal lock: the sequence number, the
    previous chain hash, and the append itself form one atomic step, so
    concurrent delivery workers can never fork the chain or duplicate a
    sequence number. The commit order of concurrent deliveries *is* the
    chain order — which is what the service layer's linearizability replay
    keys on, via the :attr:`on_record` hook (called under the same lock,
    atomically with the append).
    """

    records: list[DisclosureRecord] = field(default_factory=list)
    #: Called as ``on_record(record, instance)`` immediately after each
    #: append, still under the append lock — a subscriber observing commit
    #: order sees exactly the chain order.
    on_record: Callable[[DisclosureRecord, ReportInstance], None] | None = field(
        default=None, repr=False, compare=False
    )
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    GENESIS = "0" * 64

    def record_instance(
        self, instance: ReportInstance, context: AccessContext
    ) -> DisclosureRecord:
        """Append one delivered instance to the log."""
        table = instance.table
        if len(table):
            min_contributors = min(
                len(table.lineage_of(i)) for i in range(len(table))
            )
        else:
            min_contributors = 0
        footprint = tuple(
            sorted(
                {
                    f"{rid.provider}/{rid.table}"
                    for rid in table.all_lineage()
                }
            )
        )
        trace_id = TRACER.current_trace_id() or "" if TRACER.active() else ""
        with self._lock:
            record = DisclosureRecord(
                sequence=len(self.records),
                report=instance.definition.name,
                version=instance.definition.version,
                consumer=context.user.name,
                roles=tuple(sorted(r.name for r in context.user.roles)),
                purpose=context.purpose.name,
                columns=table.schema.names,
                row_count=len(table),
                min_contributors=min_contributors,
                source_footprint=footprint,
                obligations_applied=instance.obligations_applied,
                suppressed_rows=instance.suppressed_rows,
                trace_id=trace_id,
                degraded=instance.degraded,
                fault_cause=instance.fault_cause,
            )
            chained = DisclosureRecord(
                **{**record.__dict__, "chain_hash": self._hash(record)}
            )
            self.records.append(chained)
            if self.on_record is not None:
                self.on_record(chained, instance)
        return chained

    def _hash(self, record: DisclosureRecord) -> str:
        previous = self.records[-1].chain_hash if self.records else self.GENESIS
        return hashlib.sha256(
            (previous + record.payload()).encode()
        ).hexdigest()

    def verify_chain(self) -> bool:
        """Recompute the chain; False means the log was tampered with."""
        with self._lock:
            snapshot = tuple(self.records)
        previous = self.GENESIS
        for record in snapshot:
            expected = hashlib.sha256(
                (previous + record.payload()).encode()
            ).hexdigest()
            if record.chain_hash != expected:
                return False
            previous = record.chain_hash
        return True

    def for_report(self, report: str) -> tuple[DisclosureRecord, ...]:
        return tuple(r for r in self.records if r.report == report)

    def for_consumer(self, consumer: str) -> tuple[DisclosureRecord, ...]:
        return tuple(r for r in self.records if r.consumer == consumer)

    def __len__(self) -> int:
        return len(self.records)

    def last(self) -> DisclosureRecord:
        if not self.records:
            raise ReproError("audit log is empty")
        return self.records[-1]

    def as_table(self, *, name: str = "audit_log") -> "Table":
        """The log as a relational table — auditors query it with the engine.

        Multi-valued fields (roles, columns, footprint) are joined with
        commas; the chain hash is included so SQL-level integrity spot
        checks are possible.
        """
        from repro.relational.schema import Column, Schema
        from repro.relational.table import Table
        from repro.relational.types import ColumnType

        schema = Schema(
            [
                Column("sequence", ColumnType.INT, nullable=False),
                Column("report", ColumnType.STRING, nullable=False),
                Column("version", ColumnType.INT, nullable=False),
                Column("consumer", ColumnType.STRING, nullable=False),
                Column("roles", ColumnType.STRING, nullable=False),
                Column("purpose", ColumnType.STRING, nullable=False),
                Column("columns", ColumnType.STRING, nullable=False),
                Column("row_count", ColumnType.INT, nullable=False),
                Column("min_contributors", ColumnType.INT, nullable=False),
                Column("suppressed_rows", ColumnType.INT, nullable=False),
                Column("source_footprint", ColumnType.STRING, nullable=False),
                Column("trace_id", ColumnType.STRING, nullable=True),
                Column("degraded", ColumnType.INT, nullable=False),
                Column("fault_cause", ColumnType.STRING, nullable=True),
                Column("chain_hash", ColumnType.STRING, nullable=False),
            ]
        )
        table = Table(name, schema, provider="auditor")
        for r in self.records:
            table.insert(
                (
                    r.sequence,
                    r.report,
                    r.version,
                    r.consumer,
                    ",".join(r.roles),
                    r.purpose,
                    ",".join(r.columns),
                    r.row_count,
                    r.min_contributors,
                    r.suppressed_rows,
                    ",".join(r.source_footprint),
                    r.trace_id or None,
                    int(r.degraded),
                    r.fault_cause or None,
                    r.chain_hash,
                )
            )
        return table
