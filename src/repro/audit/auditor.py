"""The third-party auditor: replaying the disclosure log against the PLAs.

§2: the BI solution must be auditable "by third-party auditing agencies";
§6: "we are not aware of systems in the BI arena where privacy policies are
tested before they are put in operation". The auditor closes the loop: given
the disclosure log, the meta-report PLAs, and the report catalog, it
re-derives what *should* have been allowed and flags every divergence.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.audit.log import AuditLog, DisclosureRecord
from repro.audit.violations import Severity, Violation
from repro.core.annotations import (
    AggregationThreshold,
    AttributeAccess,
    JoinPermission,
)
from repro.core.compliance import ComplianceChecker
from repro.errors import ReportNotFoundError
from repro.obs import instrument
from repro.obs.trace import TRACER
from repro.reports.catalog import ReportCatalog

__all__ = ["AuditReport", "Auditor"]


@dataclass
class AuditReport:
    """Everything one audit pass found."""

    violations: list[Violation] = field(default_factory=list)
    disclosures_checked: int = 0
    chain_intact: bool = True

    @property
    def clean(self) -> bool:
        return self.chain_intact and not self.violations

    def by_severity(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for violation in self.violations:
            key = violation.severity.value
            out[key] = out.get(key, 0) + 1
        return dict(sorted(out.items()))

    def summary(self) -> str:
        status = "CLEAN" if self.clean else "FINDINGS"
        chain = "intact" if self.chain_intact else "BROKEN"
        return (
            f"audit: {status}; {self.disclosures_checked} disclosures checked, "
            f"chain {chain}, {len(self.violations)} violation(s) {self.by_severity()}"
        )


@dataclass
class Auditor:
    """Replays disclosures against the agreed PLAs."""

    checker: ComplianceChecker
    reports: ReportCatalog

    def audit(self, log: AuditLog) -> AuditReport:
        """Full audit pass over the disclosure log."""
        report = AuditReport(chain_intact=log.verify_chain())
        for record in log.records:
            report.disclosures_checked += 1
            report.violations.extend(self._audit_record(record))
        return report

    def _audit_record(self, record: DisclosureRecord) -> list[Violation]:
        findings: list[Violation] = []
        try:
            definition = self._definition_for(record)
        except ReportNotFoundError as exc:
            # Only "this version is not in the catalog" is an audit finding;
            # any other failure is a genuine bug and must propagate.
            if TRACER.active():
                instrument.AUDIT_ANOMALIES.inc(1, ("unknown_report",))
            warnings.warn(
                f"audit: disclosure #{record.sequence} references unknown "
                f"report {record.report!r} v{record.version}: {exc}",
                stacklevel=2,
            )
            findings.append(
                Violation(
                    severity=Severity.WARNING,
                    kind="unknown_report",
                    report=record.report,
                    sequence=record.sequence,
                    detail=(
                        f"disclosure references report version v{record.version} "
                        "absent from the catalog history"
                    ),
                )
            )
            return findings

        # Audience: the consumer's roles must intersect the report audience.
        if not set(record.roles) & set(definition.audience):
            findings.append(
                Violation(
                    severity=Severity.CRITICAL,
                    kind="audience",
                    report=record.report,
                    sequence=record.sequence,
                    detail=(
                        f"consumer {record.consumer!r} with roles "
                        f"{list(record.roles)} is outside the audience "
                        f"{sorted(definition.audience)}"
                    ),
                )
            )

        # Re-derive the static verdict the deployment should have obtained.
        verdict = self.checker.check_report(definition)
        if not verdict.compliant:
            findings.append(
                Violation(
                    severity=Severity.CRITICAL,
                    kind="static_compliance",
                    report=record.report,
                    sequence=record.sequence,
                    detail=(
                        "a non-compliant report was disclosed: "
                        + "; ".join(str(v) for v in verdict.violations)
                    ),
                )
            )
            return findings

        covering = (
            self.checker.metareports.get(verdict.covering_metareport)
            if verdict.covering_metareport
            else None
        )
        if covering is None or covering.pla is None:
            return findings

        for annotation in covering.pla.annotations:
            if isinstance(annotation, AggregationThreshold):
                if record.row_count and not annotation.satisfied_by(
                    record.min_contributors
                ):
                    findings.append(
                        Violation(
                            severity=Severity.CRITICAL,
                            kind="aggregation_threshold",
                            report=record.report,
                            sequence=record.sequence,
                            detail=(
                                f"a delivered cell aggregates only "
                                f"{record.min_contributors} base record(s); "
                                f"PLA requires ≥ {annotation.min_group_size}"
                            ),
                        )
                    )
            elif isinstance(annotation, AttributeAccess):
                if annotation.attribute in record.columns and not annotation.permits(
                    set(record.roles)
                ):
                    findings.append(
                        Violation(
                            severity=Severity.CRITICAL,
                            kind="attribute_access",
                            report=record.report,
                            sequence=record.sequence,
                            detail=(
                                f"attribute {annotation.attribute!r} was "
                                f"delivered to roles {list(record.roles)}; "
                                f"allowed: {sorted(annotation.allowed_roles)}"
                            ),
                        )
                    )
            elif isinstance(annotation, JoinPermission) and not annotation.allowed:
                footprint = set(record.source_footprint)
                if annotation.left in footprint and annotation.right in footprint:
                    findings.append(
                        Violation(
                            severity=Severity.CRITICAL,
                            kind="join_permission",
                            report=record.report,
                            sequence=record.sequence,
                            detail=(
                                f"delivered data combines {annotation.left} "
                                f"with {annotation.right}"
                            ),
                        )
                    )

        # Obligation bookkeeping: every runtime obligation of the verdict
        # should appear in the record's applied list.
        applied = set(record.obligations_applied)
        for obligation in verdict.obligations:
            if obligation.kind == "etl_integration":
                continue  # enforced (and logged) at the ETL layer
            if str(obligation) not in applied:
                findings.append(
                    Violation(
                        severity=Severity.WARNING,
                        kind="missing_obligation",
                        report=record.report,
                        sequence=record.sequence,
                        detail=f"obligation not recorded as applied: {obligation}",
                    )
                )
        return findings

    def _definition_for(self, record: DisclosureRecord):
        for definition in self.reports.history(record.report):
            if definition.version == record.version:
                return definition
        raise ReportNotFoundError(
            f"report {record.report!r} has no version {record.version}"
        )
