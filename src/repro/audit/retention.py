"""Retention enforcement: consents bound how long the BI provider may hold data.

"Policies on usage and retention of patient data may also be regulated by
local and national laws" (§2, citing the Italian Data Protection Code and
Directive 95/46/EC). A :class:`ConsentAgreement` may carry
``retention_days``; this module finds and purges rows the provider is no
longer allowed to store, and reports what an audit would flag.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.errors import PolicyError
from repro.relational.table import Table
from repro.sources.consent import ConsentRegistry

__all__ = ["RetentionFinding", "retention_violations", "purge_expired"]


@dataclass(frozen=True)
class RetentionFinding:
    """One row held past its subject's retention limit."""

    row_index: int
    subject: str
    recorded: datetime.date
    limit_days: int
    overdue_days: int

    def describe(self) -> str:
        return (
            f"row {self.row_index}: {self.subject!r} recorded {self.recorded} "
            f"exceeds {self.limit_days}-day retention by {self.overdue_days} day(s)"
        )


def _limit_for(
    consents: ConsentRegistry, subject: str, default_days: int | None
) -> int | None:
    consent = consents.for_patient(subject)
    if consent.retention_days is not None:
        return consent.retention_days
    return default_days


def retention_violations(
    table: Table,
    consents: ConsentRegistry,
    *,
    subject_column: str,
    date_column: str,
    as_of: datetime.date,
    default_days: int | None = None,
) -> list[RetentionFinding]:
    """Rows of ``table`` held longer than their subject's retention limit.

    ``default_days`` applies to subjects whose consent sets no limit
    (``None`` = unlimited by default). Rows with NULL subject or date are
    conservatively flagged when a default limit exists (unattributable data
    cannot prove it is still allowed).
    """
    subject_idx = table.schema.index_of(subject_column)
    date_idx = table.schema.index_of(date_column)
    findings: list[RetentionFinding] = []
    for i, row in enumerate(table.rows):
        subject = row[subject_idx]
        recorded = row[date_idx]
        if subject is None or recorded is None:
            if default_days is not None:
                findings.append(
                    RetentionFinding(
                        row_index=i,
                        subject=str(subject),
                        recorded=recorded or as_of,
                        limit_days=default_days,
                        overdue_days=0,
                    )
                )
            continue
        limit = _limit_for(consents, str(subject), default_days)
        if limit is None:
            continue
        age = (as_of - recorded).days
        if age > limit:
            findings.append(
                RetentionFinding(
                    row_index=i,
                    subject=str(subject),
                    recorded=recorded,
                    limit_days=limit,
                    overdue_days=age - limit,
                )
            )
    return findings


def purge_expired(
    table: Table,
    consents: ConsentRegistry,
    *,
    subject_column: str,
    date_column: str,
    as_of: datetime.date,
    default_days: int | None = None,
) -> tuple[Table, int]:
    """A copy of ``table`` without expired rows, plus the purge count."""
    if as_of is None:
        raise PolicyError("purge requires an explicit as_of date")
    expired = {
        f.row_index
        for f in retention_violations(
            table,
            consents,
            subject_column=subject_column,
            date_column=date_column,
            as_of=as_of,
            default_days=default_days,
        )
    }
    keep = [i for i in range(len(table)) if i not in expired]
    purged = Table.derived(
        table.name,
        table.schema,
        [table.rows[i] for i in keep],
        [table.provenance[i] for i in keep],
        provider=table.provider,
    )
    return purged, len(expired)
