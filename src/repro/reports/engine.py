"""Report generation with pluggable enforcement hooks.

The engine itself is policy-free: it runs the report query and packages the
instance. Enforcement points plug in as:

* **pre-checks** — called before execution with ``(definition, context)``;
  raising :class:`ComplianceError` blocks generation (this is where
  report-level PLA compliance verdicts attach);
* **row filters** — called per output row with ``(definition, row_dict,
  contributor_count)``; returning False suppresses the row (aggregation
  thresholds, intensional cell conditions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ComplianceError
from repro.obs import instrument
from repro.obs.trace import TRACER
from repro.policy.subjects import AccessContext
from repro.relational.catalog import Catalog
from repro.relational.engine import execute
from repro.relational.execconfig import ExecutionConfig
from repro.relational.table import Table
from repro.reports.definition import ReportDefinition, ReportInstance

__all__ = ["ReportEngine"]

PreCheck = Callable[[ReportDefinition, AccessContext], None]
RowFilter = Callable[[ReportDefinition, dict[str, Any], int], bool]


@dataclass
class ReportEngine:
    """Generates report instances from definitions over a catalog."""

    catalog: Catalog
    pre_checks: list[PreCheck] = field(default_factory=list)
    row_filters: list[RowFilter] = field(default_factory=list)
    config: ExecutionConfig | None = None  # None = process default

    def add_pre_check(self, check: PreCheck) -> None:
        self.pre_checks.append(check)

    def add_row_filter(self, row_filter: RowFilter) -> None:
        self.row_filters.append(row_filter)

    def generate(
        self, definition: ReportDefinition, context: AccessContext
    ) -> ReportInstance:
        """Generate a report for ``context``; audience is always enforced.

        When observability is on, emits a ``report.generate`` span and
        counts rows suppressed by row filters as report-level decisions.
        """
        if not TRACER.active():
            return self._generate(definition, context)
        with TRACER.span(
            "report.generate",
            {"report": definition.name, "consumer": context.user.name},
        ) as span:
            try:
                instance = self._generate(definition, context)
            except ComplianceError:
                instrument.record_decision(
                    instrument.LEVEL_REPORT, "deny", "audience"
                )
                raise
            instrument.record_decision(
                instrument.LEVEL_REPORT,
                "suppress_row",
                "row_filter",
                count=instance.suppressed_rows,
            )
            span.set_tag("suppressed_rows", instance.suppressed_rows)
            return instance

    def _generate(
        self, definition: ReportDefinition, context: AccessContext
    ) -> ReportInstance:
        if not any(context.user.has_role(role) for role in definition.audience):
            raise ComplianceError(
                f"user {context.user.name!r} is not in the audience of "
                f"report {definition.name!r} ({sorted(definition.audience)})"
            )
        for check in self.pre_checks:
            check(definition, context)
        table = execute(
            definition.query, self.catalog, name=definition.name, config=self.config
        )
        table, suppressed = self._apply_row_filters(definition, table)
        return ReportInstance(
            definition=definition,
            table=table,
            consumer=context.user.name,
            suppressed_rows=suppressed,
        )

    def _apply_row_filters(
        self, definition: ReportDefinition, table: Table
    ) -> tuple[Table, int]:
        if not self.row_filters:
            return table, 0
        keep: list[int] = []
        for i in range(len(table)):
            row = table.row_dict(i)
            contributors = len(table.lineage_of(i))
            if all(f(definition, row, contributors) for f in self.row_filters):
                keep.append(i)
        suppressed = len(table) - len(keep)
        if not suppressed:
            return table, 0
        filtered = Table.derived(
            table.name,
            table.schema,
            [table.rows[i] for i in keep],
            [table.provenance[i] for i in keep],
            provider=table.provider,
        )
        return filtered, suppressed
