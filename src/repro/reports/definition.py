"""Report definitions and generated report instances.

A report is a named query over the warehouse (or over a meta-report view)
plus its *audience* (roles allowed to receive it) and declared purpose —
the unit on which §5's PLAs are elicited and checked.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ReproError
from repro.relational.query import Query
from repro.relational.table import Table

__all__ = ["ReportDefinition", "ReportInstance"]


@dataclass(frozen=True)
class ReportDefinition:
    """One report: query, audience, purpose, and version bookkeeping."""

    name: str
    title: str
    query: Query
    audience: frozenset[str]  # role names
    purpose: str
    description: str = ""
    version: int = 1
    #: Where this definition came from, for ingested reports: the suite
    #: file and 1-based line of the defining statement (``"reports.sql:12"``),
    #: empty for reports authored in-process. Diagnostics about ingested
    #: reports cite this so findings map back to the SQL the author owns.
    origin: str = ""
    #: The original SQL text of the defining statement, when ingested.
    #: Kept verbatim (pre-normalization) so audits can show exactly what
    #: was submitted, not our reconstruction of it.
    source_sql: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("report name must be non-empty")
        if not self.audience:
            raise ReproError(f"report {self.name!r} has an empty audience")

    def columns(self) -> tuple[str, ...] | None:
        """Output column names, if statically known."""
        return self.query.output_names()

    def with_query(self, query: Query) -> "ReportDefinition":
        """A new version of this report with a different query."""
        return replace(self, query=query, version=self.version + 1)

    def with_audience(self, audience: frozenset[str]) -> "ReportDefinition":
        """A new version with a different audience."""
        if not audience:
            raise ReproError(f"report {self.name!r} audience cannot become empty")
        return replace(self, audience=audience, version=self.version + 1)

    def describe(self) -> str:
        cols = self.columns()
        shown = ", ".join(cols) if cols else "*"
        return (
            f"{self.name} v{self.version} [{', '.join(sorted(self.audience))} / "
            f"{self.purpose}]: {shown}"
        )


@dataclass(frozen=True)
class ReportInstance:
    """A generated report: the definition that produced it plus its data.

    A *degraded* instance is the fail-closed answer to an unavailable
    source: the affected source's rows were dropped entirely (``degraded``
    set, the sources and fault cause recorded) — degradation only ever
    removes data, it never substitutes stale or unfiltered rows.
    """

    definition: ReportDefinition
    table: Table
    consumer: str  # user name of the information consumer
    suppressed_rows: int = 0  # rows removed by enforcement before delivery
    obligations_applied: tuple[str, ...] = ()  # runtime enforcements discharged
    degraded: bool = False
    degraded_sources: tuple[str, ...] = ()  # provider/table identities dropped
    fault_cause: str = ""  # why delivery was degraded ("" when healthy)

    def __len__(self) -> int:
        return len(self.table)

    def summary(self) -> str:
        out = (
            f"{self.definition.name} v{self.definition.version} -> "
            f"{self.consumer}: {len(self.table)} rows"
            + (f" ({self.suppressed_rows} suppressed)" if self.suppressed_rows else "")
        )
        if self.degraded:
            out += f" DEGRADED[{', '.join(self.degraded_sources)}]"
        return out
