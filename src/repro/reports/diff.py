"""Report-version diffing: show the owner only what changed.

Re-elicitation cost is driven by what the owner must re-review; when a
report evolves, the honest unit of discussion is the *delta* — the columns
that appeared or vanished, the predicate that moved, the audience that
widened. §6's "methodologies for interacting with the source owners in
order to quickly converge" starts with not re-reading the unchanged parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.reports.definition import ReportDefinition

__all__ = ["ReportDiff", "diff_definitions"]


@dataclass(frozen=True)
class ReportDiff:
    """The changes between two versions of one report."""

    report: str
    old_version: int
    new_version: int
    columns_added: tuple[str, ...] = ()
    columns_removed: tuple[str, ...] = ()
    predicate_changed: bool = False
    old_predicate: str = ""
    new_predicate: str = ""
    grouping_added: tuple[str, ...] = ()
    grouping_removed: tuple[str, ...] = ()
    audience_added: tuple[str, ...] = ()
    audience_removed: tuple[str, ...] = ()
    purpose_changed: bool = False

    @property
    def is_empty(self) -> bool:
        """True when nothing owner-visible changed."""
        return not (
            self.columns_added
            or self.columns_removed
            or self.predicate_changed
            or self.grouping_added
            or self.grouping_removed
            or self.audience_added
            or self.audience_removed
            or self.purpose_changed
        )

    @property
    def elements_touched(self) -> int:
        """Size of the delta — what a re-elicitation session must cover."""
        return (
            len(self.columns_added)
            + len(self.columns_removed)
            + (1 if self.predicate_changed else 0)
            + len(self.grouping_added)
            + len(self.grouping_removed)
            + len(self.audience_added)
            + len(self.audience_removed)
            + (1 if self.purpose_changed else 0)
        )

    def describe(self) -> str:
        if self.is_empty:
            return f"{self.report}: no owner-visible change"
        parts = []
        if self.columns_added:
            parts.append(f"+cols {list(self.columns_added)}")
        if self.columns_removed:
            parts.append(f"-cols {list(self.columns_removed)}")
        if self.predicate_changed:
            parts.append(
                f"filter: {self.old_predicate or '(none)'} -> "
                f"{self.new_predicate or '(none)'}"
            )
        if self.grouping_added:
            parts.append(f"+group {list(self.grouping_added)}")
        if self.grouping_removed:
            parts.append(f"-group {list(self.grouping_removed)}")
        if self.audience_added:
            parts.append(f"+audience {list(self.audience_added)}")
        if self.audience_removed:
            parts.append(f"-audience {list(self.audience_removed)}")
        if self.purpose_changed:
            parts.append("purpose changed")
        return (
            f"{self.report} v{self.old_version} -> v{self.new_version}: "
            + "; ".join(parts)
        )


def diff_definitions(old: ReportDefinition, new: ReportDefinition) -> ReportDiff:
    """The owner-facing delta between two versions of one report."""
    if old.name != new.name:
        raise ReproError(
            f"diffing different reports ({old.name!r} vs {new.name!r})"
        )
    old_columns = set(old.columns() or ())
    new_columns = set(new.columns() or ())
    old_predicate = str(old.query.where) if old.query.where is not None else ""
    new_predicate = str(new.query.where) if new.query.where is not None else ""
    return ReportDiff(
        report=old.name,
        old_version=old.version,
        new_version=new.version,
        columns_added=tuple(sorted(new_columns - old_columns)),
        columns_removed=tuple(sorted(old_columns - new_columns)),
        predicate_changed=old_predicate != new_predicate,
        old_predicate=old_predicate,
        new_predicate=new_predicate,
        grouping_added=tuple(
            sorted(set(new.query.group_by) - set(old.query.group_by))
        ),
        grouping_removed=tuple(
            sorted(set(old.query.group_by) - set(new.query.group_by))
        ),
        audience_added=tuple(sorted(new.audience - old.audience)),
        audience_removed=tuple(sorted(old.audience - new.audience)),
        purpose_changed=old.purpose != new.purpose,
    )
