"""Textual rendering of delivered report instances.

Reports go to "managers and officials" (§1), not engineers: the rendering
carries the title, audience/purpose header, the data, and an enforcement
footer so a consumer (or an auditor reading the artifact later) can see what
was applied — the transparency the paper's testability argument rests on.
"""

from __future__ import annotations

from repro.reports.definition import ReportInstance

__all__ = ["render_text"]


def render_text(instance: ReportInstance, *, max_rows: int = 25) -> str:
    """Human-facing text artifact of one delivered report."""
    definition = instance.definition
    header = [
        definition.title,
        "=" * len(definition.title),
        f"report: {definition.name} v{definition.version}  "
        f"audience: {', '.join(sorted(definition.audience))}  "
        f"purpose: {definition.purpose}",
        f"delivered to: {instance.consumer}",
        "",
    ]
    body = instance.table.pretty(limit=max_rows)
    footer = ["", f"{len(instance.table)} row(s)"]
    if instance.suppressed_rows:
        footer.append(
            f"{instance.suppressed_rows} row(s) suppressed by privacy enforcement"
        )
    if instance.obligations_applied:
        footer.append("privacy enforcement applied:")
        footer.extend(f"  - {o}" for o in instance.obligations_applied)
    return "\n".join(header) + body + "\n".join(footer)
