"""Report evolution events: the change stream robustness is measured against.

Each event mutates the report catalog the way real BI maintenance does:
new reports, new columns, changed filters, changed grouping, audience
changes, and retirements. Events are data, so an evolution stream can be
generated once and replayed against every PLA-engineering level (FIG5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError
from repro.relational.expressions import Expr
from repro.relational.query import Query
from repro.reports.catalog import ReportCatalog
from repro.reports.definition import ReportDefinition

__all__ = ["EvolutionKind", "EvolutionEvent", "apply_event"]


class EvolutionKind(enum.Enum):
    """The change taxonomy of §2's robustness challenge."""

    ADD_REPORT = "add_report"
    ADD_COLUMN = "add_column"
    REMOVE_COLUMN = "remove_column"
    CHANGE_FILTER = "change_filter"
    CHANGE_GROUPING = "change_grouping"
    CHANGE_AUDIENCE = "change_audience"
    DROP_REPORT = "drop_report"


@dataclass(frozen=True)
class EvolutionEvent:
    """One catalog change.

    Payload by kind:
      ADD_REPORT       definition=ReportDefinition
      ADD_COLUMN       column=str (a warehouse/meta-report column)
      REMOVE_COLUMN    column=str
      CHANGE_FILTER    predicate=Expr (replaces the WHERE clause)
      CHANGE_GROUPING  column=str (added to GROUP BY)
      CHANGE_AUDIENCE  audience=frozenset[str]
      DROP_REPORT      (no payload)
    """

    kind: EvolutionKind
    report: str
    definition: ReportDefinition | None = None
    column: str | None = None
    predicate: Expr | None = None
    audience: frozenset[str] | None = None

    def describe(self) -> str:
        detail: Any = ""
        if self.kind is EvolutionKind.ADD_REPORT and self.definition is not None:
            detail = self.definition.describe()
        elif self.column is not None:
            detail = self.column
        elif self.predicate is not None:
            detail = str(self.predicate)
        elif self.audience is not None:
            detail = sorted(self.audience)
        return f"{self.kind.value}({self.report}{', ' + str(detail) if detail else ''})"


def apply_event(catalog: ReportCatalog, event: EvolutionEvent) -> ReportDefinition | None:
    """Apply ``event`` to ``catalog``; returns the new definition (None on drop)."""
    if event.kind is EvolutionKind.ADD_REPORT:
        if event.definition is None:
            raise ReproError("ADD_REPORT event carries no definition")
        return catalog.add(event.definition)
    if event.kind is EvolutionKind.DROP_REPORT:
        catalog.drop(event.report)
        return None

    current = catalog.current(event.report)
    if event.kind is EvolutionKind.ADD_COLUMN:
        if event.column is None:
            raise ReproError("ADD_COLUMN event carries no column")
        updated = current.with_query(_add_column(current.query, event.column))
    elif event.kind is EvolutionKind.REMOVE_COLUMN:
        if event.column is None:
            raise ReproError("REMOVE_COLUMN event carries no column")
        updated = current.with_query(_remove_column(current.query, event.column))
    elif event.kind is EvolutionKind.CHANGE_FILTER:
        if event.predicate is None:
            raise ReproError("CHANGE_FILTER event carries no predicate")
        updated = current.with_query(_replace_filter(current.query, event.predicate))
    elif event.kind is EvolutionKind.CHANGE_GROUPING:
        if event.column is None:
            raise ReproError("CHANGE_GROUPING event carries no column")
        updated = current.with_query(_add_grouping(current.query, event.column))
    elif event.kind is EvolutionKind.CHANGE_AUDIENCE:
        if event.audience is None:
            raise ReproError("CHANGE_AUDIENCE event carries no audience")
        updated = current.with_audience(event.audience)
    else:  # pragma: no cover - exhaustive over the enum
        raise ReproError(f"unhandled evolution kind {event.kind!r}")
    return catalog.update(updated)


def _add_column(query: Query, column: str) -> Query:
    from dataclasses import replace

    if query.is_aggregate:
        # Adding a column to an aggregate report means grouping by it too.
        if column in query.group_by:
            return query
        grouped = replace(query, group_by=query.group_by + (column,))
        if grouped.select:
            return grouped.project(column, *grouped.select)
        return grouped
    if query.select and column not in query.output_names():
        return query.project(*query.select, column)
    return query


def _remove_column(query: Query, column: str) -> Query:
    from dataclasses import replace

    if query.is_aggregate and column in query.group_by:
        reduced = replace(
            query, group_by=tuple(g for g in query.group_by if g != column)
        )
        if reduced.select:
            kept = tuple(
                item
                for item in reduced.select
                if (item if isinstance(item, str) else item[0]) != column
            )
            reduced = replace(reduced, select=kept)
        return reduced
    if query.select:
        kept = tuple(
            item
            for item in query.select
            if (item if isinstance(item, str) else item[0]) != column
        )
        if not kept:
            raise ReproError("cannot remove the last column of a report")
        return replace(query, select=kept)
    raise ReproError(f"query has no explicit column {column!r} to remove")


def _replace_filter(query: Query, predicate: Expr) -> Query:
    from dataclasses import replace

    return replace(query, where=predicate)


def _add_grouping(query: Query, column: str) -> Query:
    from dataclasses import replace

    if not query.is_aggregate:
        raise ReproError("CHANGE_GROUPING applies only to aggregate reports")
    if column in query.group_by:
        return query
    grouped = replace(query, group_by=query.group_by + (column,))
    if grouped.select:
        return grouped.project(column, *grouped.select)
    return grouped
