"""The report catalog: current versions plus full history.

"BI reports are in constant evolution. It is very common to add new reports
or modify existing ones" (§2). The catalog keeps every version so the
stability analysis (FIG5) can replay evolution streams and ask, per change,
whether existing PLA approvals still cover the new version.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReportNotFoundError, ReproError
from repro.reports.definition import ReportDefinition

__all__ = ["ReportCatalog"]


@dataclass
class ReportCatalog:
    """Versioned registry of report definitions."""

    _history: dict[str, list[ReportDefinition]] = field(default_factory=dict)
    _dropped: set[str] = field(default_factory=set)

    def add(self, definition: ReportDefinition) -> ReportDefinition:
        """Register a brand-new report (version 1)."""
        if definition.name in self._history and definition.name not in self._dropped:
            raise ReproError(f"report {definition.name!r} already exists")
        self._dropped.discard(definition.name)
        self._history.setdefault(definition.name, []).append(definition)
        return definition

    def update(self, definition: ReportDefinition) -> ReportDefinition:
        """Register a new version of an existing report."""
        history = self._history.get(definition.name)
        if not history or definition.name in self._dropped:
            raise ReportNotFoundError(f"report {definition.name!r} does not exist")
        if definition.version <= history[-1].version:
            raise ReproError(
                f"new version {definition.version} must exceed "
                f"{history[-1].version} for report {definition.name!r}"
            )
        history.append(definition)
        return definition

    def drop(self, name: str) -> None:
        """Retire a report (history is kept for auditing)."""
        if name not in self._history or name in self._dropped:
            raise ReportNotFoundError(f"report {name!r} does not exist")
        self._dropped.add(name)

    def current(self, name: str) -> ReportDefinition:
        """The live version of ``name``."""
        if name in self._dropped or name not in self._history:
            raise ReportNotFoundError(f"report {name!r} does not exist")
        return self._history[name][-1]

    def history(self, name: str) -> tuple[ReportDefinition, ...]:
        """Every version ever registered under ``name`` (dropped included)."""
        if name not in self._history:
            raise ReportNotFoundError(f"report {name!r} was never registered")
        return tuple(self._history[name])

    def __contains__(self, name: str) -> bool:
        return name in self._history and name not in self._dropped

    def __len__(self) -> int:
        return len(self.names())

    def names(self) -> tuple[str, ...]:
        """Names of live reports, sorted."""
        return tuple(
            sorted(name for name in self._history if name not in self._dropped)
        )

    def all_names_ever(self) -> tuple[str, ...]:
        """Every name with history, dropped included (for audit/persistence)."""
        return tuple(sorted(self._history))

    def dropped_names(self) -> tuple[str, ...]:
        """Names currently retired."""
        return tuple(sorted(self._dropped))

    def all_current(self) -> tuple[ReportDefinition, ...]:
        """Live definitions, sorted by name."""
        return tuple(self.current(name) for name in self.names())

    def total_versions(self) -> int:
        """Total definitions across all histories — an evolution-volume metric."""
        return sum(len(h) for h in self._history.values())
