"""Reports: definitions, generation engine, versioned catalog, evolution."""

from repro.reports.catalog import ReportCatalog
from repro.reports.definition import ReportDefinition, ReportInstance
from repro.reports.delivery import DeliveryService, RefusalRecord
from repro.reports.diff import ReportDiff, diff_definitions
from repro.reports.engine import ReportEngine
from repro.reports.evolution import EvolutionEvent, EvolutionKind, apply_event
from repro.reports.rendering import render_text

__all__ = [
    "DeliveryService",
    "EvolutionEvent",
    "EvolutionKind",
    "RefusalRecord",
    "ReportCatalog",
    "ReportDefinition",
    "ReportDiff",
    "ReportEngine",
    "ReportInstance",
    "apply_event",
    "diff_definitions",
    "render_text",
]
