"""The BI provider's serving layer: check → enforce → deliver → log.

One object ties the lifecycle together so applications (and the CLI) cannot
accidentally skip a step: every delivery re-checks compliance against the
current meta-report PLAs, runs the enforcer, and appends to the audit log.
Rejected requests are logged too (as refusals) — §2's monitoring
requirement covers attempts, not just successes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ComplianceError
from repro.core.compliance import ComplianceChecker
from repro.core.translation import ReportLevelEnforcer
from repro.obs import instrument
from repro.obs.trace import TRACER
from repro.policy.subjects import AccessContext, SubjectRegistry
from repro.reports.catalog import ReportCatalog
from repro.reports.definition import ReportInstance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (audit → reports)
    from repro.audit.log import AuditLog


def _new_audit_log() -> "AuditLog":
    from repro.audit.log import AuditLog

    return AuditLog()

__all__ = ["RefusalRecord", "DeliveryService"]


@dataclass(frozen=True)
class RefusalRecord:
    """A delivery request that was refused, and why."""

    report: str
    consumer: str
    purpose: str
    reason: str


@dataclass
class DeliveryService:
    """Checked, enforced, audited report delivery."""

    reports: ReportCatalog
    checker: ComplianceChecker
    enforcer: ReportLevelEnforcer
    subjects: SubjectRegistry
    audit_log: "AuditLog" = field(default_factory=_new_audit_log)
    refusals: list[RefusalRecord] = field(default_factory=list)

    def deliver(
        self, report_name: str, *, user: str, purpose: str
    ) -> ReportInstance:
        """Deliver the current version of ``report_name`` to ``user``.

        Raises :class:`ComplianceError` on any refusal; the refusal is
        recorded either way. When observability is on, the whole delivery
        runs under a ``report.deliver`` root span — the compliance check,
        enforcement, and query execution it causes become child spans, and
        the audit record written at the end carries this trace's ID.
        """
        if not TRACER.active():
            return self._deliver(report_name, user=user, purpose=purpose)
        with TRACER.span(
            "report.deliver",
            {"report": report_name, "user": user, "purpose": purpose},
        ) as span:
            try:
                instance = self._deliver(report_name, user=user, purpose=purpose)
            except ComplianceError:
                instrument.DELIVERIES.inc(1, ("refused",))
                span.set_tag("outcome", "refused")
                raise
            instrument.DELIVERIES.inc(1, ("delivered",))
            span.set_tag("outcome", "delivered")
            return instance

    def _deliver(
        self, report_name: str, *, user: str, purpose: str
    ) -> ReportInstance:
        context = self.subjects.context(user, purpose)
        try:
            definition = self.reports.current(report_name)
        except Exception as exc:
            self._refuse(report_name, context, f"unknown report: {exc}")
            raise ComplianceError(f"unknown report {report_name!r}") from exc
        verdict = self.checker.check_report(definition)
        if not verdict.compliant:
            reason = "; ".join(str(v) for v in verdict.violations)
            self._refuse(report_name, context, reason)
            raise ComplianceError(
                f"report {report_name!r} is not compliant: {reason}"
            )
        try:
            instance = self.enforcer.generate(definition, context, verdict)
        except ComplianceError as exc:
            self._refuse(report_name, context, str(exc))
            raise
        self.audit_log.record_instance(instance, context)
        return instance

    def deliver_all_compliant(
        self, role_to_user: dict[str, str]
    ) -> tuple[list[ReportInstance], list[RefusalRecord]]:
        """Deliver every live report to its audience's first role's user.

        Returns delivered instances and the refusals accumulated during the
        sweep (non-compliant reports do not raise here).
        """
        delivered: list[ReportInstance] = []
        before = len(self.refusals)
        for definition in self.reports.all_current():
            role = sorted(definition.audience)[0]
            user = role_to_user.get(role)
            if user is None:
                self.refusals.append(
                    RefusalRecord(
                        report=definition.name,
                        consumer=f"<no user for role {role}>",
                        purpose=definition.purpose,
                        reason="no deliverable consumer for the audience",
                    )
                )
                continue
            try:
                delivered.append(
                    self.deliver(definition.name, user=user, purpose=definition.purpose)
                )
            except ComplianceError:
                continue  # refusal already recorded
        return delivered, self.refusals[before:]

    def _refuse(self, report: str, context: AccessContext, reason: str) -> None:
        self.refusals.append(
            RefusalRecord(
                report=report,
                consumer=context.user.name,
                purpose=context.purpose.name,
                reason=reason,
            )
        )
