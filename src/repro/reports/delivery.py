"""The BI provider's serving layer: check → enforce → deliver → log.

One object ties the lifecycle together so applications (and the CLI) cannot
accidentally skip a step: every delivery re-checks compliance against the
current meta-report PLAs, runs the enforcer, and appends to the audit log.
Rejected requests are logged too (as refusals) — §2's monitoring
requirement covers attempts, not just successes.

With a :class:`~repro.resilience.DeliveryResilience` attached (explicitly,
or via the ``REPRO_FAULTS`` process default), every source in the
delivered data's lineage footprint is probed through the
injector→retry→breaker path before release. An unavailable source **fails
closed**: the delivery is either refused with a typed
:class:`~repro.errors.SourceUnavailableError` or — in ``degrade`` mode —
released with that source's rows dropped entirely, the instance explicitly
marked degraded, and the fault cause written into the audit record. Stale
or unfiltered data that skipped source-level PLA filtering is never
substituted.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.errors import ComplianceError, ReportNotFoundError, SourceUnavailableError
from repro.core.compliance import ComplianceChecker
from repro.core.translation import ReportLevelEnforcer
from repro.obs import instrument
from repro.obs.trace import TRACER
from repro.policy.subjects import AccessContext, SubjectRegistry
from repro.reports.catalog import ReportCatalog
from repro.reports.definition import ReportInstance
from repro.resilience.runtime import (
    DeliveryResilience,
    default_delivery_resilience,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (audit → reports)
    from repro.audit.log import AuditLog


def _new_audit_log() -> "AuditLog":
    from repro.audit.log import AuditLog

    return AuditLog()

__all__ = ["RefusalRecord", "DeliveryService"]


@dataclass(frozen=True)
class RefusalRecord:
    """A delivery request that was refused, and why."""

    report: str
    consumer: str
    purpose: str
    reason: str


@dataclass
class DeliveryService:
    """Checked, enforced, audited report delivery."""

    reports: ReportCatalog
    checker: ComplianceChecker
    enforcer: ReportLevelEnforcer
    subjects: SubjectRegistry
    audit_log: "AuditLog" = field(default_factory=_new_audit_log)
    refusals: list[RefusalRecord] = field(default_factory=list)
    resilience: DeliveryResilience | None = field(
        default_factory=default_delivery_resilience
    )

    def deliver(
        self, report_name: str, *, user: str, purpose: str
    ) -> ReportInstance:
        """Deliver the current version of ``report_name`` to ``user``.

        Raises :class:`ComplianceError` on any refusal and
        :class:`SourceUnavailableError` when a source is down and the
        resilience mode is ``refuse``; the refusal is recorded either way.
        When observability is on, the whole delivery runs under a
        ``report.deliver`` root span — the compliance check, enforcement,
        and query execution it causes become child spans, and the audit
        record written at the end carries this trace's ID.
        """
        if not TRACER.active():
            return self._deliver(report_name, user=user, purpose=purpose)
        with TRACER.span(
            "report.deliver",
            {"report": report_name, "user": user, "purpose": purpose},
        ) as span:
            try:
                instance = self._deliver(report_name, user=user, purpose=purpose)
            except SourceUnavailableError:
                instrument.DELIVERIES.inc(1, ("unavailable",))
                span.set_tag("outcome", "unavailable")
                raise
            except ComplianceError:
                instrument.DELIVERIES.inc(1, ("refused",))
                span.set_tag("outcome", "refused")
                raise
            outcome = "degraded" if instance.degraded else "delivered"
            instrument.DELIVERIES.inc(1, (outcome,))
            span.set_tag("outcome", outcome)
            return instance

    def _deliver(
        self, report_name: str, *, user: str, purpose: str
    ) -> ReportInstance:
        context = self.subjects.context(user, purpose)
        try:
            definition = self.reports.current(report_name)
        except ReportNotFoundError as exc:
            self._refuse(report_name, context, f"unknown report: {exc}")
            raise ComplianceError(f"unknown report {report_name!r}") from exc
        verdict = self.checker.check_report(definition)
        if not verdict.compliant:
            reason = "; ".join(str(v) for v in verdict.violations)
            self._refuse(report_name, context, reason)
            raise ComplianceError(
                f"report {report_name!r} is not compliant: {reason}"
            )
        try:
            instance = self.enforcer.generate(definition, context, verdict)
        except ComplianceError as exc:
            self._refuse(report_name, context, str(exc))
            raise
        if self.resilience is not None:
            instance = self._apply_resilience(report_name, instance, context)
        self.audit_log.record_instance(instance, context)
        return instance

    # -- degraded delivery ---------------------------------------------------

    def _apply_resilience(
        self,
        report_name: str,
        instance: ReportInstance,
        context: AccessContext,
    ) -> ReportInstance:
        """Probe every source feeding this instance; fail closed on outages."""
        res = self.resilience
        assert res is not None
        deadline = res.new_deadline()
        # Unique (provider, table) pairs first — the lineage set has one
        # entry per contributing row, the footprint only a handful.
        pairs = {
            (rid.provider, rid.table) for rid in instance.table.all_lineage()
        }
        footprint = sorted(f"{provider}/{table}" for provider, table in pairs)
        down: dict[str, Exception] = {}
        for source in footprint:
            try:
                res.check_source(source, deadline=deadline)
            except SourceUnavailableError as exc:
                down[source] = exc
        if not down:
            return instance
        cause = "; ".join(f"{s}: {e}" for s, e in sorted(down.items()))
        if res.mode == "refuse":
            self._refuse(report_name, context, f"source unavailable: {cause}")
            raise SourceUnavailableError(
                f"report {report_name!r} refused, source(s) unavailable: {cause}"
            ) from next(iter(down.values()))
        degraded = self._drop_sources(instance, frozenset(down), cause)
        if TRACER.active():
            for exc in down.values():
                instrument.DEGRADED_DELIVERIES.inc(1, (type(exc).__name__,))
        return degraded

    @staticmethod
    def _drop_sources(
        instance: ReportInstance, down: frozenset[str], cause: str
    ) -> ReportInstance:
        """The fail-closed degradation: remove every row a down source fed.

        Degradation is strictly subtractive — the surviving rows are a
        subset of the healthy delivery, each one untouched, so every PLA
        filter already applied to them still holds.
        """
        from repro.relational.table import Table

        table = instance.table
        rows, provs = [], []
        for i, row in enumerate(table.rows):
            lineage = {
                f"{rid.provider}/{rid.table}" for rid in table.lineage_of(i)
            }
            if lineage & down:
                continue
            rows.append(row)
            provs.append(table.provenance[i])
        dropped = len(table) - len(rows)
        degraded_table = Table.derived(
            table.name, table.schema, rows, provs, provider=table.provider
        )
        return replace(
            instance,
            table=degraded_table,
            suppressed_rows=instance.suppressed_rows + dropped,
            degraded=True,
            degraded_sources=tuple(sorted(down)),
            fault_cause=cause,
        )

    def deliver_all_compliant(
        self, role_to_user: dict[str, str]
    ) -> tuple[list[ReportInstance], list[RefusalRecord]]:
        """Deliver every live report to its audience's first role's user.

        Returns delivered instances and the refusals accumulated during the
        sweep (non-compliant reports and unavailable sources do not raise
        here).
        """
        delivered: list[ReportInstance] = []
        before = len(self.refusals)
        for definition in self.reports.all_current():
            role = sorted(definition.audience)[0]
            user = role_to_user.get(role)
            if user is None:
                self.refusals.append(
                    RefusalRecord(
                        report=definition.name,
                        consumer=f"<no user for role {role}>",
                        purpose=definition.purpose,
                        reason="no deliverable consumer for the audience",
                    )
                )
                continue
            try:
                delivered.append(
                    self.deliver(definition.name, user=user, purpose=definition.purpose)
                )
            except (ComplianceError, SourceUnavailableError):
                continue  # refusal already recorded
        return delivered, self.refusals[before:]

    def _refuse(self, report: str, context: AccessContext, reason: str) -> None:
        self.refusals.append(
            RefusalRecord(
                report=report,
                consumer=context.user.name,
                purpose=context.purpose.name,
                reason=reason,
            )
        )
