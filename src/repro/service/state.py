"""The shared deployment one daemon serves, and its concurrency contract.

:class:`ServiceState` wraps one :class:`~repro.simulation.scenario.Scenario`
plus its :class:`~repro.reports.delivery.DeliveryService` behind a
write-preferring :class:`~repro.concurrency.RWLock`:

* a **delivery** holds the read lock across compliance check → enforcement
  → audit append, so every record it writes was computed against one
  consistent catalog/PLA/report state — the state of one *epoch*;
* a **mutation** holds the write lock, applies one
  :class:`MutationSpec`, and bumps the epoch. The mutations themselves bump
  the version counters (table ``data_version``, catalog ``ddl_version``,
  PLA/report versions) that the plan/containment/verdict cache keys embed,
  so post-mutation deliveries can never hit pre-mutation cache entries.

The **commit log** is the serial order the concurrent run is equivalent
to. Delivery entries are appended by the audit log's ``on_record`` hook —
under the audit lock, atomically with the hash-chain append — so commit
order and chain order cannot diverge. Mutation entries are appended under
the write lock, which the RWLock orders against every reader. Refused
deliveries (which write no audit record) land in a separate epoch-tagged
refusal log; a refusal is a pure function of the epoch's state, so replay
checks them per epoch.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from repro.concurrency import RWLock
from repro.core.annotations import AggregationThreshold
from repro.errors import ServiceError
from repro.obs import instrument

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.audit.log import DisclosureRecord
    from repro.reports.definition import ReportInstance
    from repro.simulation.scenario import Scenario

__all__ = [
    "MUTATION_KINDS",
    "MutationSpec",
    "CommitEntry",
    "RefusalEntry",
    "ServiceState",
    "apply_mutation_to",
]

#: The catalog mutations a writer can apply to a live deployment.
MUTATION_KINDS = ("insert_rows", "revise_pla", "redefine_report")


@dataclass(frozen=True)
class MutationSpec:
    """One deterministic mutation of the shared deployment.

    ``seed`` selects *which* fact row / meta-report / report is touched and
    how — as a pure function of the seed and the deployment state at apply
    time, so replaying the same mutation sequence from a fresh scenario
    reproduces the same state evolution bit for bit.
    """

    kind: str  # one of MUTATION_KINDS
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in MUTATION_KINDS:
            raise ServiceError(
                f"unknown mutation kind {self.kind!r}; expected one of "
                f"{MUTATION_KINDS}"
            )


@dataclass(frozen=True)
class CommitEntry:
    """One event in the serial order: a delivery or a mutation."""

    kind: str  # "deliver" | "mutate"
    epoch: int  # deployment epoch the event observed (mutations: created)
    # delivery fields
    report: str = ""
    user: str = ""
    purpose: str = ""
    outcome: str = ""  # "delivered" | "degraded"
    payload_hash: str = ""
    #: Trace-independent audit chain digest (``linearize.chain_digest``);
    #: equals the audit log's own chain hash when observability is off.
    chain_hash: str = ""
    sequence: int = -1
    # mutation field
    mutation: MutationSpec | None = None


@dataclass(frozen=True)
class RefusalEntry:
    """A delivery refused at some epoch (no audit record was written)."""

    epoch: int
    report: str
    user: str
    purpose: str
    kind: str  # "refused" (compliance) | "unavailable" (source down)


class ServiceState:
    """One deployment + RWLock + epoch + commit/refusal logs."""

    def __init__(
        self,
        scenario: "Scenario",
        *,
        factory: Callable[[], "Scenario"] | None = None,
    ) -> None:
        self.scenario = scenario
        #: Rebuilds an identical fresh deployment — what the serial replay
        #: of :mod:`repro.service.linearize` starts from.
        self.factory = factory
        self.service = scenario.delivery_service()
        self.lock = RWLock()
        self.epoch = 0
        self.commit_log: list[CommitEntry] = []
        self.refusal_log: list[RefusalEntry] = []
        # Guards the two logs. Delivery commits already serialize on the
        # audit lock and mutation commits on the write lock; this lock makes
        # the append itself safe against cross-log readers (stats, replay).
        self._log_lock = threading.Lock()
        # Running trace-independent chain over audit records; advanced in
        # the audit hook (under the audit lock, so strictly in chain order).
        self._norm_chain = "0" * 64
        self.service.audit_log.on_record = self._on_audit_record
        instrument.SERVICE_EPOCH.set(0)

    # -- commit-log hooks -----------------------------------------------------

    def _on_audit_record(
        self, record: "DisclosureRecord", instance: "ReportInstance"
    ) -> None:
        """Audit-append hook: runs under the audit lock, in chain order."""
        from repro.service.linearize import chain_digest, payload_hash

        self._norm_chain = chain_digest(self._norm_chain, record)
        entry = CommitEntry(
            kind="deliver",
            epoch=self.epoch,
            report=record.report,
            user=record.consumer,
            purpose=record.purpose,
            outcome="degraded" if record.degraded else "delivered",
            payload_hash=payload_hash(instance),
            chain_hash=self._norm_chain,
            sequence=record.sequence,
        )
        with self._log_lock:
            self.commit_log.append(entry)

    def record_refusal(
        self, report: str, user: str, purpose: str, kind: str
    ) -> RefusalEntry:
        """Log a refused delivery (caller holds the read lock)."""
        entry = RefusalEntry(
            epoch=self.epoch, report=report, user=user, purpose=purpose, kind=kind
        )
        with self._log_lock:
            self.refusal_log.append(entry)
        return entry

    # -- mutations ------------------------------------------------------------

    def apply_mutation(self, spec: MutationSpec) -> CommitEntry:
        """Apply ``spec`` and advance the epoch (caller holds the write lock)."""
        apply_mutation_to(self.scenario, spec)
        self.epoch += 1
        entry = CommitEntry(kind="mutate", epoch=self.epoch, mutation=spec)
        with self._log_lock:
            self.commit_log.append(entry)
        instrument.SERVICE_EPOCH.set(self.epoch)
        return entry

    # -- snapshots ------------------------------------------------------------

    def logs_snapshot(self) -> tuple[tuple[CommitEntry, ...], tuple[RefusalEntry, ...]]:
        """Consistent copies of the commit and refusal logs."""
        with self._log_lock:
            return tuple(self.commit_log), tuple(self.refusal_log)


def apply_mutation_to(scenario: "Scenario", spec: MutationSpec) -> str:
    """Apply one mutation to ``scenario``; returns a short description.

    Used both by the live daemon (under the write lock) and by the serial
    replay (single-threaded, same order) — determinism of this function is
    what makes the replay reproduce the concurrent run's state evolution.
    """
    if spec.kind == "insert_rows":
        return _insert_rows(scenario, spec.seed)
    if spec.kind == "revise_pla":
        return _revise_pla(scenario, spec.seed)
    if spec.kind == "redefine_report":
        return _redefine_report(scenario, spec.seed)
    raise ServiceError(f"unknown mutation kind {spec.kind!r}")


def _insert_rows(scenario: "Scenario", seed: int) -> str:
    """Duplicate one fact row with a nudged cost — a data-refresh insert.

    Bumps the fact table's ``data_version`` and row count, so every plan
    cache state token over the wide view changes.
    """
    fact = scenario.bi_catalog.table(scenario.star.fact.name)
    if not fact.rows:
        raise ServiceError(f"fact table {fact.name!r} is empty; nothing to clone")
    row = fact.rows[seed % len(fact.rows)]
    cost_idx = fact.schema.index_of("cost")
    values = list(row)
    base = values[cost_idx] or 0.0
    values[cost_idx] = round(float(base) + 1.0 + (seed % 7), 2)
    fact.insert(tuple(values))
    return f"insert_rows: cloned fact row {seed % len(fact.rows)} into {fact.name}"


def _revise_pla(scenario: "Scenario", seed: int) -> str:
    """Re-elicit one meta-report's PLA with a shifted aggregation floor.

    Revise → approve → attach: the meta-report set's fingerprint (PLA
    version + annotations) changes, so every cached compliance verdict
    keys out.
    """
    metas = list(scenario.metareports)
    meta = metas[seed % len(metas)]
    if meta.pla is None:
        raise ServiceError(f"meta-report {meta.name!r} has no PLA to revise")
    new_floor = 2 + (seed % 5)
    annotations = []
    changed = False
    for annotation in meta.pla.annotations:
        if isinstance(annotation, AggregationThreshold):
            if annotation.min_group_size == new_floor:
                new_floor += 1
            annotations.append(replace(annotation, min_group_size=new_floor))
            changed = True
        else:
            annotations.append(annotation)
    if not changed:
        annotations.append(
            AggregationThreshold(min_group_size=new_floor, scope="patient")
        )
    scenario.pla_registry.revise(meta.pla.name, annotations)
    approved = scenario.pla_registry.approve(meta.pla.name)
    meta.attach_pla(approved)
    return (
        f"revise_pla: {approved.name} v{approved.version} "
        f"(aggregation floor → {new_floor})"
    )


def _redefine_report(scenario: "Scenario", seed: int) -> str:
    """Evolve one report definition (new LIMIT ⇒ new version).

    ``with_query`` bumps the report version, which is part of the verdict
    cache key and is stamped into every audit record — redefinitions are
    visible in the chain.
    """
    definitions = scenario.report_catalog.all_current()
    if not definitions:
        raise ServiceError("report catalog is empty; nothing to redefine")
    definition = definitions[seed % len(definitions)]
    new_limit = 5 + (seed % 13)
    if definition.query.limit_n == new_limit:
        new_limit += 1
    revised = definition.with_query(replace(definition.query, limit_n=new_limit))
    scenario.report_catalog.update(revised)
    return (
        f"redefine_report: {revised.name} v{revised.version} "
        f"(LIMIT → {new_limit})"
    )
