"""repro.service — the long-running concurrent delivery daemon.

The paper's outsourced-BI model assumes reports flow continuously to many
consumers under live PLAs; this package turns the batch pipeline into that
serving layer:

* :mod:`repro.service.state` — one shared deployment behind a
  write-preferring readers–writer lock. Deliveries run concurrently under
  the read lock; mutations (fact inserts, PLA revisions, report
  redefinitions) take the write lock, bump the mutation *epoch*, and
  thereby the state tokens every cache keys on. A commit log — appended
  atomically with the audit hash chain — records the serial order the
  concurrent run is equivalent to.
* :mod:`repro.service.daemon` — a thread-pool worker daemon with a bounded
  job queue (overflow is a typed :class:`~repro.errors.ServiceOverloadedError`,
  never a hang), per-consumer sessions, and unconditional operational
  metrics (``repro_service_*``).
* :mod:`repro.service.linearize` — the serial-equivalence checker: replays
  the commit log against a fresh deployment and verifies payload hashes,
  audit chain hashes, and refusal decisions are byte-identical.
* :mod:`repro.service.loadgen` — the deterministic load harness behind
  ``repro loadgen`` and ``benchmarks/bench_service.py``.
* :mod:`repro.service.httpd` — a zero-dependency HTTP face
  (``/metrics``, ``/healthz``, ``/stats``, ``POST /deliver``) so
  ``repro metrics --url`` can scrape a live daemon.

See ``docs/SERVICE.md`` for the worker model and the linearizability
argument.
"""

from __future__ import annotations

from repro.service.daemon import DeliveryDaemon, RequestResult, Session
from repro.service.httpd import start_http_server
from repro.service.linearize import (
    LinearizabilityReport,
    chain_digest,
    check_linearizable,
    payload_hash,
)
from repro.service.loadgen import (
    LOAD_MIXES,
    LoadResult,
    LoadSpec,
    build_schedule,
    percentile,
    run_load,
    run_mix,
)
from repro.service.state import (
    CommitEntry,
    MUTATION_KINDS,
    MutationSpec,
    RefusalEntry,
    ServiceState,
    apply_mutation_to,
)

__all__ = [
    "ServiceState",
    "MutationSpec",
    "MUTATION_KINDS",
    "CommitEntry",
    "RefusalEntry",
    "apply_mutation_to",
    "DeliveryDaemon",
    "Session",
    "RequestResult",
    "LinearizabilityReport",
    "check_linearizable",
    "payload_hash",
    "chain_digest",
    "LoadSpec",
    "LoadResult",
    "LOAD_MIXES",
    "build_schedule",
    "percentile",
    "run_load",
    "run_mix",
    "start_http_server",
]
