"""Deterministic load generation against a running delivery daemon.

The harness behind ``repro loadgen`` and ``benchmarks/bench_service.py``:
N concurrent consumers each submit a seeded, pre-built schedule of
requests — mostly deliveries, with catalog/PLA/report mutations mixed in
at the mix's rate — and the run reports throughput plus nearest-rank
p50/p95/p99 latency. Schedules are pure functions of ``(scenario, spec)``,
so two runs with the same seed submit byte-identical request streams (the
*interleaving* stays up to the scheduler — that is what the
linearizability check is for).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ServiceError
from repro.service.daemon import DeliveryDaemon
from repro.service.linearize import check_linearizable
from repro.service.state import MUTATION_KINDS, MutationSpec, ServiceState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.scenario import Scenario

__all__ = [
    "LOAD_MIXES",
    "LoadSpec",
    "LoadResult",
    "build_schedule",
    "percentile",
    "run_load",
    "run_mix",
]

#: Mix name -> probability that any one request is a mutation.
LOAD_MIXES = {"read_heavy": 0.03, "mutation_heavy": 0.30}

#: The standard scenario's consumers, one per role.
ROLE_TO_USER = {
    "analyst": "ann",
    "auditor": "aldo",
    "health_director": "dora",
    "municipality_official": "mara",
}


@dataclass(frozen=True)
class LoadSpec:
    """One load run: who submits how much of what."""

    consumers: int = 32
    requests_per_consumer: int = 20
    mix: str = "read_heavy"
    seed: int = 11
    #: Probability a delivery targets a user/purpose the report's audience
    #: actually admits (the rest exercise the refusal path).
    compliant_bias: float = 0.8

    def __post_init__(self) -> None:
        if self.mix not in LOAD_MIXES:
            raise ServiceError(
                f"unknown load mix {self.mix!r}; expected one of "
                f"{sorted(LOAD_MIXES)}"
            )
        if self.consumers < 1 or self.requests_per_consumer < 1:
            raise ServiceError("consumers and requests_per_consumer must be >= 1")


def build_schedule(
    scenario: "Scenario", spec: LoadSpec
) -> list[list[tuple[Any, ...]]]:
    """One deterministic op list per consumer thread.

    Ops are ``("mutate", MutationSpec)`` or
    ``("deliver", report, user, purpose)``. Each consumer derives its own
    RNG from ``spec.seed`` and its index, so schedules are stable under
    any thread interleaving and independent of consumer count changes
    elsewhere.
    """
    import random

    from repro.simulation.scenario import PURPOSES

    definitions = list(scenario.workload)
    if not definitions:
        raise ServiceError("scenario has an empty report workload")
    users = sorted(ROLE_TO_USER.values())
    mutation_rate = LOAD_MIXES[spec.mix]

    schedules: list[list[tuple[Any, ...]]] = []
    for i in range(spec.consumers):
        rng = random.Random(spec.seed * 1000 + i)
        ops: list[tuple[Any, ...]] = []
        for _ in range(spec.requests_per_consumer):
            if rng.random() < mutation_rate:
                kind = MUTATION_KINDS[rng.randrange(len(MUTATION_KINDS))]
                ops.append(("mutate", MutationSpec(kind, seed=rng.randrange(10_000))))
                continue
            definition = definitions[rng.randrange(len(definitions))]
            if rng.random() < spec.compliant_bias:
                role = sorted(definition.audience)[0]
                user = ROLE_TO_USER[role]
                purpose = definition.purpose
            else:
                user = users[rng.randrange(len(users))]
                purpose = PURPOSES[rng.randrange(len(PURPOSES))]
            ops.append(("deliver", definition.name, user, purpose))
        schedules.append(ops)
    return schedules


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * q // 100))  # ceil without math
    return sorted_values[int(rank) - 1]


@dataclass
class LoadResult:
    """Measured outcome of one load run."""

    mix: str
    consumers: int
    requests: int
    wall_s: float
    throughput_rps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    outcomes: dict[str, int] = field(default_factory=dict)
    epoch: int = 0
    linearizability: dict[str, Any] | None = None

    def as_dict(self) -> dict[str, Any]:
        out = {
            "mix": self.mix,
            "consumers": self.consumers,
            "requests": self.requests,
            "wall_s": round(self.wall_s, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "outcomes": dict(self.outcomes),
            "epoch": self.epoch,
        }
        if self.linearizability is not None:
            out["linearizability"] = self.linearizability
        return out


def run_load(
    daemon: DeliveryDaemon, scenario: "Scenario", spec: LoadSpec
) -> LoadResult:
    """Drive ``daemon`` with ``spec``'s schedule and measure it.

    One thread per consumer; each op blocks on its future (submit →
    result is the measured latency), so a consumer models a synchronous
    client and the daemon's bounded queue provides the backpressure.
    """
    schedules = build_schedule(scenario, spec)
    latencies: list[list[float]] = [[] for _ in schedules]
    outcomes: dict[str, int] = {}
    outcomes_lock = threading.Lock()

    def consumer(index: int, ops: list[tuple[Any, ...]]) -> None:
        for op in ops:
            t0 = time.perf_counter()
            if op[0] == "mutate":
                result = daemon.submit_mutation(op[1]).result(timeout=120.0)
            else:
                _, report, user, purpose = op
                result = daemon.submit_delivery(
                    report, user=user, purpose=purpose
                ).result(timeout=120.0)
            latencies[index].append(time.perf_counter() - t0)
            with outcomes_lock:
                outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1

    threads = [
        threading.Thread(target=consumer, args=(i, ops), name=f"loadgen-{i}")
        for i, ops in enumerate(schedules)
    ]
    t_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - t_start

    flat = sorted(lat for per_consumer in latencies for lat in per_consumer)
    requests = len(flat)
    return LoadResult(
        mix=spec.mix,
        consumers=spec.consumers,
        requests=requests,
        wall_s=wall_s,
        throughput_rps=requests / wall_s if wall_s > 0 else 0.0,
        p50_ms=percentile(flat, 50) * 1000,
        p95_ms=percentile(flat, 95) * 1000,
        p99_ms=percentile(flat, 99) * 1000,
        outcomes=outcomes,
        epoch=daemon.state.epoch,
    )


def run_mix(
    mix: str,
    *,
    consumers: int = 32,
    requests_per_consumer: int = 12,
    seed: int = 11,
    workers: int = 8,
    check: bool = False,
    fault_plan: str | None = None,
    scenario_factory: Callable[[], "Scenario"] | None = None,
) -> LoadResult:
    """Build a fresh deployment, run one mix against it, tear down.

    With ``check=True`` the commit log is replayed serially afterwards and
    the linearizability verdict lands in ``result.linearizability``
    (fault-free runs only — ``check`` and ``fault_plan`` are mutually
    exclusive because injected faults are order-dependent).

    ``fault_plan`` names a built-in plan (``smoke``, ``flaky``, …) to
    install as a degrade-mode resilience policy on the live daemon.
    """
    if check and fault_plan:
        raise ServiceError(
            "linearizability checking requires a fault-free run; "
            "drop --check or the fault plan"
        )
    if scenario_factory is None:
        from repro.simulation.scenario import build_scenario

        scenario_factory = build_scenario
    scenario = scenario_factory()
    state = ServiceState(scenario, factory=scenario_factory)
    daemon = DeliveryDaemon(
        state, workers=workers, queue_size=max(64, 2 * consumers)
    )
    if check:
        # Serial equivalence demands a fault-free run: strip any
        # process-default resilience a REPRO_FAULTS environment installed.
        state.service.resilience = None
    if fault_plan:
        daemon.state.service.resilience = _fault_resilience(fault_plan)
    spec = LoadSpec(
        consumers=consumers,
        requests_per_consumer=requests_per_consumer,
        mix=mix,
        seed=seed,
    )
    with daemon:
        result = run_load(daemon, scenario, spec)
    if check:
        commit_log, refusal_log = state.logs_snapshot()
        report = check_linearizable(scenario_factory, commit_log, refusal_log)
        result.linearizability = report.as_dict()
    return result


def _fault_resilience(plan_name: str):
    """A degrade-mode resilience policy over a named fault plan.

    Backoff sleeps are disabled — the plan's faults are simulated, so
    waiting on them would only slow the load run without measuring
    anything real.
    """
    from repro.resilience import (
        BreakerRegistry,
        DeliveryResilience,
        FaultInjector,
        ResiliencePolicy,
        named_plan,
    )

    no_sleep = lambda _s: None  # noqa: E731
    policy = ResiliencePolicy(
        injector=FaultInjector(named_plan(plan_name), sleep=no_sleep),
        breakers=BreakerRegistry(),
        sleep=no_sleep,
    )
    return DeliveryResilience(policy=policy, mode="degrade")
