"""Serial-equivalence checking for the concurrent delivery daemon.

The claim being verified: a concurrent run of N deliveries interleaved
with catalog/PLA/report mutations is **linearizable** — equivalent to
*some* serial order of the same operations. The daemon's design makes that
order observable instead of hypothetical:

* every delivery holds the deployment's read lock across compute → audit
  append, so its audit record commits within the epoch it observed;
* every mutation holds the write lock, so its commit-log entry sits after
  all deliveries of the epoch it closes and before all deliveries of the
  epoch it opens;
* delivery commit entries are appended by the audit log's ``on_record``
  hook — under the audit lock, atomically with the hash-chain append — so
  commit-log order *is* audit-chain order.

:func:`check_linearizable` therefore replays the commit log, in order, on
a **fresh single-threaded deployment** built by the same factory, and
demands byte-equivalence: payload hashes, audit chain hashes, and record
sequences must all match, and every refusal must refuse again at the same
epoch. Any divergence is a reported violation.

Scope: replay assumes a fault-free run — injected faults are
order-dependent inputs that legitimately perturb record contents (degraded
runs are exercised by the fault tests instead), so the replay deployment
runs with ``resilience`` disabled. Tracing is fine: the chain compared is
:func:`chain_digest`, which strips the execution-local trace ID from each
record before hashing, so the check is observability-independent.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable

from repro.errors import ComplianceError, ServiceError
from repro.service.state import CommitEntry, RefusalEntry, apply_mutation_to

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.audit.log import DisclosureRecord
    from repro.reports.definition import ReportInstance
    from repro.simulation.scenario import Scenario

__all__ = [
    "GENESIS",
    "payload_hash",
    "chain_digest",
    "LinearizabilityReport",
    "check_linearizable",
]

#: Seed of the trace-independent chain (same as the audit log's own).
GENESIS = "0" * 64


def payload_hash(instance: "ReportInstance") -> str:
    """A sha256 digest of everything a consumer can observe in a delivery.

    Covers the definition identity (name + version), the consumer, the full
    table (schema names and every row), and the enforcement outcome
    (suppressed rows, obligations, degradation state) — two deliveries hash
    equal iff they are observably identical.
    """
    h = hashlib.sha256()

    def feed(part: object) -> None:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")

    feed(instance.definition.name)
    feed(instance.definition.version)
    feed(instance.consumer)
    feed(instance.table.schema.names)
    for row in instance.table.rows:
        feed(row)
    feed(instance.suppressed_rows)
    feed(instance.obligations_applied)
    feed(instance.degraded)
    feed(instance.degraded_sources)
    feed(instance.fault_cause)
    return h.hexdigest()


def chain_digest(previous: str, record: "DisclosureRecord") -> str:
    """Trace-independent audit chain: hash the record with its trace ID
    stripped, chained over ``previous``.

    Trace IDs are execution-local observability metadata — a live run and
    its serial replay can never share them, so the raw audit chain is only
    byte-comparable across runs with tracing off. This digest is what the
    linearizability check compares instead; with observability disabled it
    is bit-identical to the audit log's own chain.
    """
    stripped = replace(record, trace_id="", chain_hash="")
    return hashlib.sha256((previous + stripped.payload()).encode()).hexdigest()


@dataclass
class LinearizabilityReport:
    """Outcome of one commit-log replay."""

    deliveries_checked: int = 0
    mutations_checked: int = 0
    refusals_checked: int = 0
    #: "unavailable" refusals — fault-dependent, not replayable serially.
    skipped: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "deliveries_checked": self.deliveries_checked,
            "mutations_checked": self.mutations_checked,
            "refusals_checked": self.refusals_checked,
            "skipped": self.skipped,
            "violations": list(self.violations),
        }


def check_linearizable(
    factory: Callable[[], "Scenario"],
    commit_log: Iterable[CommitEntry],
    refusal_log: Iterable[RefusalEntry] = (),
) -> LinearizabilityReport:
    """Replay ``commit_log`` serially on a fresh deployment and compare.

    ``factory`` must rebuild a deployment identical to the one the
    concurrent run started from (same config, same seeds). The replay:

    1. walks the commit log in order, delivering / mutating exactly as
       logged on a single thread;
    2. for each delivery, compares the payload hash, the trace-independent
       audit chain digest, and the record's sequence number against the
       logged values;
    3. just before each mutation closes an epoch (and once more at the
       end), re-attempts every delivery *refused* in that epoch and demands
       it refuse again — a refusal that now succeeds means the concurrent
       run denied something the serial order would have delivered.
    """
    report = LinearizabilityReport()
    scenario = factory()
    service = scenario.delivery_service()
    # Fault machinery is order-dependent; the serial oracle runs bare.
    service.resilience = None

    refusals_by_epoch: dict[int, list[RefusalEntry]] = {}
    for refusal in refusal_log:
        if refusal.kind == "unavailable":
            report.skipped += 1
            continue
        refusals_by_epoch.setdefault(refusal.epoch, []).append(refusal)

    epoch = 0
    chain = GENESIS
    for entry in commit_log:
        if entry.kind == "mutate":
            _replay_refusals(service, refusals_by_epoch.pop(epoch, []), report)
            if entry.mutation is None:
                report.violations.append(
                    f"mutate entry at epoch {entry.epoch} carries no MutationSpec"
                )
                continue
            apply_mutation_to(scenario, entry.mutation)
            epoch += 1
            report.mutations_checked += 1
            if entry.epoch != epoch:
                report.violations.append(
                    f"mutation {entry.mutation.kind}(seed={entry.mutation.seed}) "
                    f"logged at epoch {entry.epoch}, replay reached epoch {epoch}"
                )
        elif entry.kind == "deliver":
            chain = _replay_delivery(service, entry, epoch, chain, report)
        else:
            raise ServiceError(f"unknown commit-log entry kind {entry.kind!r}")
    _replay_refusals(service, refusals_by_epoch.pop(epoch, []), report)

    # Refusals logged at an epoch the commit log never reached.
    for orphan_epoch, entries in sorted(refusals_by_epoch.items()):
        for refusal in entries:
            report.violations.append(
                f"refusal of {refusal.report} for {refusal.user} logged at "
                f"epoch {orphan_epoch}, which the commit log never reached"
            )
    return report


def _replay_delivery(
    service,
    entry: CommitEntry,
    epoch: int,
    chain: str,
    report: LinearizabilityReport,
) -> str:
    """Replay one delivery; returns the advanced trace-independent chain."""
    where = f"{entry.report} -> {entry.user} (seq {entry.sequence})"
    if entry.epoch != epoch:
        report.violations.append(
            f"{where}: committed at epoch {entry.epoch}, replay is at {epoch}"
        )
    try:
        instance = service.deliver(
            entry.report, user=entry.user, purpose=entry.purpose
        )
    except ComplianceError as exc:
        report.violations.append(
            f"{where}: delivered concurrently but refused serially ({exc})"
        )
        return chain
    report.deliveries_checked += 1
    replay_hash = payload_hash(instance)
    if replay_hash != entry.payload_hash:
        report.violations.append(
            f"{where}: payload hash diverged "
            f"(concurrent {entry.payload_hash[:12]}…, serial {replay_hash[:12]}…)"
        )
    record = service.audit_log.records[-1]
    if record.sequence != entry.sequence:
        report.violations.append(
            f"{where}: audit sequence diverged "
            f"(concurrent {entry.sequence}, serial {record.sequence})"
        )
    chain = chain_digest(chain, record)
    if chain != entry.chain_hash:
        report.violations.append(
            f"{where}: audit chain hash diverged at sequence {entry.sequence} "
            f"(concurrent {entry.chain_hash[:12]}…, serial {chain[:12]}…)"
        )
    return chain


def _replay_refusals(
    service, refusals: list[RefusalEntry], report: LinearizabilityReport
) -> None:
    for refusal in refusals:
        try:
            service.deliver(
                refusal.report, user=refusal.user, purpose=refusal.purpose
            )
        except ComplianceError:
            report.refusals_checked += 1
        else:
            report.violations.append(
                f"{refusal.report} -> {refusal.user} ({refusal.purpose}): "
                f"refused concurrently at epoch {refusal.epoch} but delivered "
                f"serially"
            )
