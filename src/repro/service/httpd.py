"""A zero-dependency HTTP face for a running delivery daemon.

Endpoints (loopback only, stdlib ``http.server``):

* ``GET /metrics`` — the live Prometheus exposition
  (:func:`repro.obs.render_prometheus`), so ``repro metrics --url`` can
  scrape a serving process.
* ``GET /healthz`` — liveness plus the current mutation epoch.
* ``GET /stats`` — the daemon's operational snapshot
  (:meth:`~repro.service.daemon.DeliveryDaemon.stats`).
* ``POST /deliver`` — submit one delivery (JSON body
  ``{"report", "user", "purpose"}``). Non-blocking: a full queue answers
  ``503`` with the typed shed error, mirroring
  :class:`~repro.errors.ServiceOverloadedError`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ServiceOverloadedError
from repro.service.daemon import DeliveryDaemon

__all__ = ["ServiceHTTPServer", "start_http_server"]


class ServiceHTTPServer(ThreadingHTTPServer):
    """Loopback HTTP server bound to one daemon."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], handler, daemon: DeliveryDaemon):
        super().__init__(address, handler)
        self.delivery_daemon = daemon


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    # -- plumbing -------------------------------------------------------------

    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        pass  # the daemon's metrics are its access log

    def _respond(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _json(self, status: int, obj: object) -> None:
        self._respond(status, json.dumps(obj, indent=2), "application/json")

    # -- routes ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        daemon = self.server.delivery_daemon
        if self.path == "/metrics":
            from repro.obs import get_registry, render_prometheus

            self._respond(
                200, render_prometheus(get_registry()), "text/plain; version=0.0.4"
            )
        elif self.path == "/healthz":
            self._json(
                200,
                {
                    "ok": daemon.running,
                    "epoch": daemon.state.epoch,
                    "queue_depth": daemon.stats()["queue_depth"],
                },
            )
        elif self.path == "/stats":
            self._json(200, daemon.stats())
        else:
            self._json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        if self.path != "/deliver":
            self._json(404, {"error": f"unknown path {self.path!r}"})
            return
        daemon = self.server.delivery_daemon
        try:
            length = int(self.headers.get("Content-Length", "0"))
            body = json.loads(self.rfile.read(length) or b"{}")
            report = body["report"]
            user = body["user"]
            purpose = body["purpose"]
        except (ValueError, KeyError) as exc:
            self._json(
                400,
                {"error": f"body must be JSON with report/user/purpose ({exc})"},
            )
            return
        try:
            future = daemon.submit_delivery(
                report, user=user, purpose=purpose, wait=False
            )
        except ServiceOverloadedError as exc:
            self._json(503, {"error": str(exc), "outcome": "shed"})
            return
        result = future.result(timeout=60.0)
        self._json(
            200,
            {
                "outcome": result.outcome,
                "epoch": result.epoch,
                "detail": result.detail,
                "rows": len(result.instance) if result.instance is not None else 0,
            },
        )


def start_http_server(
    daemon: DeliveryDaemon, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Serve ``daemon`` over HTTP in a background thread.

    ``port=0`` binds an ephemeral port; read it back from
    ``server.server_address``. Call ``server.shutdown()`` to stop.
    """
    server = ServiceHTTPServer((host, port), _Handler, daemon)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    thread.start()
    return server
