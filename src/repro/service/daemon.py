"""The delivery daemon: a bounded queue drained by a worker pool.

Request lifecycle::

    submit() ──▶ bounded queue ──▶ worker thread
                                     ├─ deliver: state.lock.read_locked()
                                     │    service.deliver(...) → audit append
                                     └─ mutate:  state.lock.write_locked()
                                          state.apply_mutation(...) → epoch+1

Design points:

* **Bounded queue, typed shedding.** ``submit(wait=False)`` raises
  :class:`~repro.errors.ServiceOverloadedError` when the queue is full
  (counted as ``outcome="shed"``); ``wait=True`` blocks for backpressure.
  The daemon never hangs a caller silently and never drops a job it
  accepted.
* **Refusals are results, not crashes.** A compliance refusal or a
  source outage is a *typed outcome* (:class:`RequestResult`), recorded in
  the state's epoch-tagged refusal log for the linearizability replay;
  only unexpected errors propagate as exceptions through the future.
* **Unconditional telemetry.** ``repro_service_*`` metrics are the
  daemon's own operational counters — recorded regardless of whether
  tracing is enabled, so a live ``/metrics`` scrape always has data.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    ComplianceError,
    ServiceError,
    ServiceOverloadedError,
    ServiceStoppedError,
    SourceUnavailableError,
)
from repro.obs import instrument
from repro.service.state import MutationSpec, ServiceState

__all__ = ["Session", "RequestResult", "DeliveryDaemon"]

_STOP = object()


@dataclass
class Session:
    """Per-consumer delivery bookkeeping (one per registered user)."""

    consumer: str
    submitted: int = 0
    delivered: int = 0
    refused: int = 0
    errors: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def _count(self, outcome: str) -> None:
        with self._lock:
            if outcome in ("delivered", "degraded"):
                self.delivered += 1
            elif outcome in ("refused", "unavailable"):
                self.refused += 1
            else:
                self.errors += 1

    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "consumer": self.consumer,
                "submitted": self.submitted,
                "delivered": self.delivered,
                "refused": self.refused,
                "errors": self.errors,
            }


@dataclass(frozen=True)
class RequestResult:
    """What one daemon request came to.

    ``outcome`` ∈ {``delivered``, ``degraded``, ``refused``,
    ``unavailable``, ``applied``}; ``epoch`` is the deployment epoch the
    request observed (for mutations: the epoch it created). The delivered
    instance itself is in ``instance`` when the request was a successful
    delivery.
    """

    kind: str  # "deliver" | "mutate"
    outcome: str
    epoch: int
    detail: str = ""
    instance: Any = None  # ReportInstance | None


class DeliveryDaemon:
    """Thread-pool worker daemon over one :class:`ServiceState`."""

    def __init__(
        self,
        state: ServiceState,
        *,
        workers: int = 4,
        queue_size: int = 64,
    ) -> None:
        if workers < 1:
            raise ServiceError("daemon needs at least one worker")
        if queue_size < 1:
            raise ServiceError("queue size must be >= 1")
        self.state = state
        self.workers = workers
        self.queue_size = queue_size
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._threads: list[threading.Thread] = []
        self._sessions: dict[str, Session] = {}
        self._sessions_lock = threading.Lock()
        self._running = False
        self._started_at = 0.0
        self._counts: dict[str, int] = {}
        self._counts_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "DeliveryDaemon":
        if self._running:
            raise ServiceError("daemon is already running")
        self._running = True
        self._started_at = time.monotonic()
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker, name=f"repro-delivery-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, *, timeout: float | None = 10.0) -> None:
        """Drain accepted jobs, then stop every worker."""
        if not self._running:
            return
        self._running = False
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()

    def __enter__(self) -> "DeliveryDaemon":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._running

    # -- sessions -------------------------------------------------------------

    def session(self, consumer: str) -> Session:
        """The consumer's session, created on first use."""
        with self._sessions_lock:
            session = self._sessions.get(consumer)
            if session is None:
                session = self._sessions[consumer] = Session(consumer)
                instrument.SERVICE_SESSIONS.set(len(self._sessions))
            return session

    def sessions(self) -> tuple[Session, ...]:
        with self._sessions_lock:
            return tuple(self._sessions.values())

    # -- submission -----------------------------------------------------------

    def submit_delivery(
        self,
        report: str,
        *,
        user: str,
        purpose: str,
        wait: bool = True,
        timeout: float | None = None,
    ) -> "Future[RequestResult]":
        """Enqueue one delivery; returns a future resolving to its result."""
        session = self.session(user)
        with session._lock:
            session.submitted += 1
        return self._submit(
            "deliver", {"report": report, "user": user, "purpose": purpose},
            wait=wait, timeout=timeout,
        )

    def submit_mutation(
        self,
        spec: MutationSpec,
        *,
        wait: bool = True,
        timeout: float | None = None,
    ) -> "Future[RequestResult]":
        """Enqueue one catalog/PLA/report mutation."""
        return self._submit("mutate", {"spec": spec}, wait=wait, timeout=timeout)

    def deliver(
        self, report: str, *, user: str, purpose: str, timeout: float | None = 30.0
    ) -> RequestResult:
        """Blocking convenience: submit a delivery and await its result."""
        future = self.submit_delivery(report, user=user, purpose=purpose)
        return future.result(timeout=timeout)

    def mutate(self, spec: MutationSpec, *, timeout: float | None = 30.0) -> RequestResult:
        """Blocking convenience: submit a mutation and await its result."""
        return self.submit_mutation(spec).result(timeout=timeout)

    def _submit(
        self,
        kind: str,
        payload: dict[str, Any],
        *,
        wait: bool,
        timeout: float | None,
    ) -> "Future[RequestResult]":
        if not self._running:
            raise ServiceStoppedError("daemon is not running; call start() first")
        future: Future[RequestResult] = Future()
        job = (kind, payload, future, time.perf_counter())
        try:
            if wait:
                self._queue.put(job, timeout=timeout)
            else:
                self._queue.put_nowait(job)
        except queue.Full:
            self._count(kind, "shed")
            raise ServiceOverloadedError(
                f"job queue is full ({self.queue_size} pending); request shed"
            ) from None
        instrument.SERVICE_QUEUE_DEPTH.set(self._queue.qsize())
        return future

    # -- worker loop ----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                self._queue.task_done()
                return
            kind, payload, future, t_enqueued = job
            instrument.SERVICE_QUEUE_DEPTH.set(self._queue.qsize())
            try:
                result = self._execute(kind, payload)
            except BaseException as exc:  # noqa: BLE001 - relayed via the future
                self._count(kind, "error")
                if kind == "deliver":
                    self.session(payload["user"])._count("error")
                future.set_exception(exc)
            else:
                self._count(kind, result.outcome)
                if kind == "deliver":
                    self.session(payload["user"])._count(result.outcome)
                future.set_result(result)
            finally:
                instrument.SERVICE_LATENCY.observe(
                    time.perf_counter() - t_enqueued, (kind,)
                )
                self._queue.task_done()

    def _execute(self, kind: str, payload: dict[str, Any]) -> RequestResult:
        state = self.state
        if kind == "mutate":
            spec: MutationSpec = payload["spec"]
            with state.lock.write_locked():
                entry = state.apply_mutation(spec)
            return RequestResult(
                kind="mutate",
                outcome="applied",
                epoch=entry.epoch,
                detail=f"{spec.kind}(seed={spec.seed})",
            )
        report, user, purpose = (
            payload["report"], payload["user"], payload["purpose"],
        )
        # The read lock is held across check → enforce → audit append, so
        # this delivery observes exactly one epoch and its audit record
        # commits before any mutation that would supersede that epoch.
        with state.lock.read_locked():
            epoch = state.epoch
            try:
                instance = state.service.deliver(report, user=user, purpose=purpose)
            except SourceUnavailableError as exc:
                state.record_refusal(report, user, purpose, "unavailable")
                return RequestResult(
                    kind="deliver", outcome="unavailable", epoch=epoch,
                    detail=str(exc),
                )
            except ComplianceError as exc:
                state.record_refusal(report, user, purpose, "refused")
                return RequestResult(
                    kind="deliver", outcome="refused", epoch=epoch,
                    detail=str(exc),
                )
        outcome = "degraded" if instance.degraded else "delivered"
        return RequestResult(
            kind="deliver", outcome=outcome, epoch=epoch, instance=instance,
        )

    # -- observability --------------------------------------------------------

    def _count(self, kind: str, outcome: str) -> None:
        instrument.SERVICE_REQUESTS.inc(1, (kind, outcome))
        with self._counts_lock:
            key = f"{kind}:{outcome}"
            self._counts[key] = self._counts.get(key, 0) + 1

    def counts(self) -> dict[str, int]:
        """``{"kind:outcome": n}`` counters since start."""
        with self._counts_lock:
            return dict(self._counts)

    def stats(self) -> dict[str, Any]:
        """JSON-friendly operational snapshot (served at ``/stats``)."""
        with self.state._log_lock:
            commits = len(self.state.commit_log)
            refusals = len(self.state.refusal_log)
        return {
            "running": self._running,
            "uptime_s": round(time.monotonic() - self._started_at, 3)
            if self._running
            else 0.0,
            "workers": self.workers,
            "queue_depth": self._queue.qsize(),
            "queue_size": self.queue_size,
            "epoch": self.state.epoch,
            "commits": commits,
            "refusals": refusals,
            "audit_records": len(self.state.service.audit_log),
            "outcomes": self.counts(),
            "sessions": [s.as_dict() for s in self.sessions()],
            "lock": self.state.lock.snapshot(),
        }

    # -- reconfiguration ------------------------------------------------------

    def set_resilience(self, resilience) -> None:
        """Swap the delivery resilience policy (e.g. inject a fault plan).

        Taken under the write lock so no in-flight delivery sees the swap
        mid-request — the fault plan applies from a clean epoch boundary.
        """
        with self.state.lock.write_locked():
            self.state.service.resilience = resilience
