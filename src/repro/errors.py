"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Subsystems raise the most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed, or an operation references unknown columns."""


class TypeMismatchError(SchemaError):
    """A value does not conform to its column's declared type."""


class QueryError(ReproError):
    """A query is malformed or cannot be executed against the catalog."""


class ParseError(QueryError):
    """The mini SQL parser rejected its input.

    Carries the byte offset of the offending token and, when the source
    text is known, a caret-annotated snippet so CLI users see *where* a
    statement broke, not just why. ``str()`` renders message + snippet.
    """

    def __init__(
        self,
        message: str,
        *,
        source: str | None = None,
        offset: int | None = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.source = source
        self.offset = offset

    def snippet(self, *, width: int = 60) -> str | None:
        """A one-line excerpt around the error with a caret underneath."""
        if self.source is None or self.offset is None:
            return None
        offset = min(max(self.offset, 0), len(self.source))
        line_start = self.source.rfind("\n", 0, offset) + 1
        line_end = self.source.find("\n", offset)
        if line_end == -1:
            line_end = len(self.source)
        line = self.source[line_start:line_end]
        # Tabs occupy several visual columns; expand them (and compute the
        # caret position on the expanded line) so the caret lines up with
        # the offending token on screen instead of drifting left.
        column = len(line[: offset - line_start].expandtabs())
        line = line.expandtabs()
        start = max(0, column - width // 2)
        shown = line[start : start + width]
        caret = " " * (column - start) + "^"
        return f"{shown}\n{caret}"

    @property
    def line(self) -> int | None:
        """1-based line number of the error, when the source is known."""
        if self.source is None or self.offset is None:
            return None
        return self.source.count("\n", 0, self.offset) + 1

    def __str__(self) -> str:
        snippet = self.snippet()
        if snippet is None:
            return self.message
        return f"{self.message}\n{snippet}"


class UnsupportedConstructError(ParseError):
    """The input uses SQL the grammar recognizes but cannot model.

    Distinct from a generic :class:`ParseError` so ingestion can fail
    closed with a *typed* "unsupported construct" diagnostic (ING004)
    instead of a bare syntax failure. ``construct`` names the feature
    (e.g. ``"UNION"``, ``"RIGHT JOIN"``, ``"EXISTS"``).
    """

    def __init__(
        self,
        construct: str,
        message: str | None = None,
        *,
        source: str | None = None,
        offset: int | None = None,
    ) -> None:
        super().__init__(
            message or f"unsupported construct: {construct}",
            source=source,
            offset=offset,
        )
        self.construct = construct


class IngestError(ReproError):
    """A SQL suite could not be ingested (I/O, duplicate names, bad directives)."""


class CatalogError(ReproError):
    """A named table or view is missing, duplicated, or invalid."""


class ReportNotFoundError(CatalogError):
    """A report name (or a specific version of it) is absent from the catalog."""


class PolicyError(ReproError):
    """A policy, PLA, or annotation is malformed."""


class ComplianceError(ReproError):
    """A report or operation violates an agreed PLA.

    Raised by enforcement points when ``fail_hard`` behaviour is requested;
    auditing paths record :class:`~repro.audit.violations.Violation` records
    instead of raising.
    """


class EnforcementError(ReproError):
    """An enforcement adapter could not apply a PLA (not a violation)."""


class AnonymizationError(ReproError):
    """An anonymization routine received unusable input or parameters."""


class ElicitationError(ReproError):
    """An elicitation session was driven into an invalid state."""


class EtlError(ReproError):
    """An ETL flow is malformed or an operator failed."""


class WarehouseError(ReproError):
    """A star schema, cube, or warehouse load is invalid."""


class ProvenanceError(ReproError):
    """Provenance information is missing or inconsistent."""


class WorkloadError(ReproError):
    """A synthetic workload generator received invalid parameters."""


class AnalysisError(ReproError):
    """The static analyzer could not model an artifact it was given."""


class FaultError(ReproError):
    """Base class for source/ETL availability failures (real or injected).

    The subclass tells the retry machinery whether another attempt can
    succeed: :class:`TransientSourceError` and :class:`SourceTimeoutError`
    are retryable, :class:`SourceUnavailableError` (and its subclasses) is
    the terminal "this source is down" verdict enforcement must fail closed
    on.
    """


class TransientSourceError(FaultError):
    """A source call failed in a way a retry can plausibly fix."""


class SourceTimeoutError(FaultError):
    """A source call exceeded its per-call time budget."""


class SourceUnavailableError(FaultError):
    """A source is down: permanently failed, exhausted, or circuit-broken."""


class RetryExhaustedError(SourceUnavailableError):
    """Every allowed attempt failed; the last cause is chained."""


class CircuitOpenError(SourceUnavailableError):
    """A circuit breaker is open; the call was rejected without being made."""


class DeadlineExceededError(FaultError):
    """The operation's deadline expired before it could complete."""


class ServiceError(ReproError):
    """The delivery daemon is misconfigured or in an unusable state."""


class ServiceOverloadedError(ServiceError):
    """The daemon's bounded job queue is full; the request was shed.

    A typed refusal: load-shedding is an explicit, observable outcome
    (``repro_service_requests_total{outcome="shed"}``), never a hang or a
    silent drop.
    """


class ServiceStoppedError(ServiceError):
    """A request was submitted to a daemon that is not running."""
