"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Subsystems raise the most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed, or an operation references unknown columns."""


class TypeMismatchError(SchemaError):
    """A value does not conform to its column's declared type."""


class QueryError(ReproError):
    """A query is malformed or cannot be executed against the catalog."""


class ParseError(QueryError):
    """The mini SQL parser rejected its input."""


class CatalogError(ReproError):
    """A named table or view is missing, duplicated, or invalid."""


class ReportNotFoundError(CatalogError):
    """A report name (or a specific version of it) is absent from the catalog."""


class PolicyError(ReproError):
    """A policy, PLA, or annotation is malformed."""


class ComplianceError(ReproError):
    """A report or operation violates an agreed PLA.

    Raised by enforcement points when ``fail_hard`` behaviour is requested;
    auditing paths record :class:`~repro.audit.violations.Violation` records
    instead of raising.
    """


class EnforcementError(ReproError):
    """An enforcement adapter could not apply a PLA (not a violation)."""


class AnonymizationError(ReproError):
    """An anonymization routine received unusable input or parameters."""


class ElicitationError(ReproError):
    """An elicitation session was driven into an invalid state."""


class EtlError(ReproError):
    """An ETL flow is malformed or an operator failed."""


class WarehouseError(ReproError):
    """A star schema, cube, or warehouse load is invalid."""


class ProvenanceError(ReproError):
    """Provenance information is missing or inconsistent."""


class WorkloadError(ReproError):
    """A synthetic workload generator received invalid parameters."""


class AnalysisError(ReproError):
    """The static analyzer could not model an artifact it was given."""


class FaultError(ReproError):
    """Base class for source/ETL availability failures (real or injected).

    The subclass tells the retry machinery whether another attempt can
    succeed: :class:`TransientSourceError` and :class:`SourceTimeoutError`
    are retryable, :class:`SourceUnavailableError` (and its subclasses) is
    the terminal "this source is down" verdict enforcement must fail closed
    on.
    """


class TransientSourceError(FaultError):
    """A source call failed in a way a retry can plausibly fix."""


class SourceTimeoutError(FaultError):
    """A source call exceeded its per-call time budget."""


class SourceUnavailableError(FaultError):
    """A source is down: permanently failed, exhausted, or circuit-broken."""


class RetryExhaustedError(SourceUnavailableError):
    """Every allowed attempt failed; the last cause is chained."""


class CircuitOpenError(SourceUnavailableError):
    """A circuit breaker is open; the call was rejected without being made."""


class DeadlineExceededError(FaultError):
    """The operation's deadline expired before it could complete."""
