"""Patient consent agreements (the innermost PLA ring of Fig 1).

"As patients visit a health-care center, they sign a consent agreement
specifying how their personal information can be treated." Consents are the
ground truth the Policies metadata table of Fig 2(b) encodes; this module
models them as objects and converts between the two forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PolicyError
from repro.relational.table import Table
from repro.workloads.healthcare import POLICIES_SCHEMA

__all__ = ["ConsentAgreement", "ConsentRegistry"]


@dataclass(frozen=True)
class ConsentAgreement:
    """One patient's signed consent.

    ``show_name``/``show_disease`` mirror the paper's Policies columns;
    ``allowed_purposes`` restricts downstream use (empty = any declared
    purpose); ``retention_days`` bounds storage at the BI provider.
    """

    patient: str
    show_name: bool
    show_disease: bool
    allowed_purposes: frozenset[str] = frozenset()
    retention_days: int | None = None

    def permits_purpose(self, purpose: str) -> bool:
        """True if the consent covers ``purpose`` (prefix semantics)."""
        if not self.allowed_purposes:
            return True
        return any(
            purpose == granted or purpose.startswith(granted + "/")
            for granted in self.allowed_purposes
        )


@dataclass
class ConsentRegistry:
    """All consents a provider holds, with a default for unknown patients.

    The safe default is deny-everything: a patient with no recorded consent
    discloses nothing — sources "going for the first option" (§3) enforce
    conservatively.
    """

    agreements: dict[str, ConsentAgreement] = field(default_factory=dict)
    default: ConsentAgreement = ConsentAgreement(
        patient="<default>", show_name=False, show_disease=False
    )

    def add(self, agreement: ConsentAgreement) -> ConsentAgreement:
        if agreement.patient in self.agreements:
            raise PolicyError(f"consent for {agreement.patient!r} already recorded")
        self.agreements[agreement.patient] = agreement
        return agreement

    def for_patient(self, patient: str) -> ConsentAgreement:
        return self.agreements.get(patient, self.default)

    def __len__(self) -> int:
        return len(self.agreements)

    # -- conversions to/from the Fig 2(b) Policies metadata table ----------

    @classmethod
    def from_policies_table(cls, policies: Table) -> "ConsentRegistry":
        """Build a registry from a ``policies(patient, show_name, show_disease)`` table."""
        registry = cls()
        for row in policies.iter_dicts():
            registry.add(
                ConsentAgreement(
                    patient=row["patient"],
                    show_name=bool(row["show_name"]),
                    show_disease=bool(row["show_disease"]),
                )
            )
        return registry

    def to_policies_table(self, *, provider: str = "consent_registry") -> Table:
        """Materialize the registry as the paper's Policies metadata table."""
        table = Table("policies", POLICIES_SCHEMA, provider=provider)
        for patient in sorted(self.agreements):
            consent = self.agreements[patient]
            table.insert((patient, consent.show_name, consent.show_disease))
        return table
