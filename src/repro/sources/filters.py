"""The source-side data filter / anonymization gateway of Fig 2(a).

When a provider's posture is SOURCE_ENFORCES, every table it exports to the
BI provider passes through this gateway, which applies — in order:

1. **consent purpose check** — rows of subjects whose consent does not cover
   the requesting purpose are dropped;
2. **cell policies** driven by the consent flags (the Fig 2(b) Policies
   metadata): pseudonymize or suppress individual cells;
3. **intensional restrictions** from the provider's
   :class:`~repro.policy.intensional.MetadataStore` (e.g. "rows where
   disease = 'HIV' must not leave with identity attached");
4. an optional **k-anonymization** pass over declared quasi-identifiers.

The gateway reports exactly what it did, which the audit layer replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import EnforcementError
from repro.anonymize.kanonymity import QuasiIdentifier, mondrian_anonymize
from repro.obs import instrument
from repro.obs.trace import TRACER
from repro.anonymize.pseudonym import Pseudonymizer
from repro.policy.subjects import AccessContext
from repro.relational.table import RowProvenance, Table
from repro.sources.provider import DataProvider

__all__ = ["CellPolicy", "GatewayReport", "SourceGateway"]

_ACTIONS = ("pseudonymize", "suppress")


@dataclass(frozen=True)
class CellPolicy:
    """Cell-level rule bound to a consent flag.

    When the subject's consent flag named ``consent_flag`` is false, the
    value in ``column`` is pseudonymized or suppressed (set to NULL). The
    subject is identified by ``subject_column``.
    """

    column: str
    consent_flag: str  # attribute of ConsentAgreement, e.g. "show_name"
    action: str = "pseudonymize"
    subject_column: str = "patient"

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise EnforcementError(
                f"unknown cell action {self.action!r}; expected one of {_ACTIONS}"
            )


@dataclass
class GatewayReport:
    """What one export did — input to auditing and the FIG2 benchmark."""

    table: str
    rows_in: int = 0
    rows_out: int = 0
    rows_dropped_purpose: int = 0
    rows_dropped_intensional: int = 0
    cells_pseudonymized: int = 0
    cells_suppressed: int = 0
    k_anonymized: bool = False

    def summary(self) -> str:
        return (
            f"{self.table}: {self.rows_in}->{self.rows_out} rows "
            f"(purpose-dropped {self.rows_dropped_purpose}, "
            f"intensionally-dropped {self.rows_dropped_intensional}); "
            f"cells pseudonymized {self.cells_pseudonymized}, "
            f"suppressed {self.cells_suppressed}"
            + ("; k-anonymized" if self.k_anonymized else "")
        )


@dataclass
class SourceGateway:
    """Fig 2(a)'s "data filter / anonymization" box for one provider."""

    provider: DataProvider
    cell_policies: list[CellPolicy] = field(default_factory=list)
    pseudonymizer: Pseudonymizer | None = None
    k_anonymity: tuple[tuple[QuasiIdentifier, ...], int] | None = None
    l_diversity: tuple[str, int] | None = None  # (sensitive column, l)
    enforce_purpose: bool = True

    def add_cell_policy(self, policy: CellPolicy) -> CellPolicy:
        self.cell_policies.append(policy)
        return policy

    def require_k_anonymity(
        self, quasi_identifiers: Sequence[QuasiIdentifier], k: int
    ) -> None:
        """Enable the final k-anonymization pass on exported tables."""
        self.k_anonymity = (tuple(quasi_identifiers), k)

    def require_l_diversity(self, sensitive: str, l: int) -> None:
        """Also require distinct l-diversity on the sensitive column.

        Applied on top of the k-anonymization pass (it suppresses whole
        equivalence classes, so the k guarantee is preserved). Requires
        :meth:`require_k_anonymity` to be configured too.
        """
        if self.k_anonymity is None:
            raise EnforcementError(
                "l-diversity at the gateway requires a k-anonymity pass; "
                "call require_k_anonymity first"
            )
        self.l_diversity = (sensitive, l)

    # -- export ---------------------------------------------------------------

    def export_table(
        self, table_name: str, context: AccessContext
    ) -> tuple[Table, GatewayReport]:
        """Export one table to the BI provider under ``context``.

        When observability is on, the export emits a ``source.export`` span
        and counts source-level enforcement decisions (rows dropped by
        consent/intensional rules, cells anonymized, rows allowed out).
        """
        if not TRACER.active():
            return self._export(table_name, context)
        with TRACER.span(
            "source.export",
            {"provider": self.provider.name, "table": table_name,
             "purpose": context.purpose.name},
        ) as span:
            exported, report = self._export(table_name, context)
            level = instrument.LEVEL_SOURCE
            instrument.record_decision(level, "allow", count=report.rows_out)
            instrument.record_decision(
                level, "deny_row", "consent_purpose",
                count=report.rows_dropped_purpose,
            )
            instrument.record_decision(
                level, "deny_row", "intensional",
                count=report.rows_dropped_intensional,
            )
            instrument.record_decision(
                level, "anonymize", "cell_policy.pseudonymize",
                count=report.cells_pseudonymized,
            )
            instrument.record_decision(
                level, "anonymize", "cell_policy.suppress",
                count=report.cells_suppressed,
            )
            if report.k_anonymized:
                instrument.record_decision(level, "anonymize", "k_anonymity")
            span.set_tag("rows_in", report.rows_in)
            span.set_tag("rows_out", report.rows_out)
            return exported, report

    def _export(
        self, table_name: str, context: AccessContext
    ) -> tuple[Table, GatewayReport]:
        table = self.provider.table(table_name)
        report = GatewayReport(table=table_name, rows_in=len(table))
        policies = [p for p in self.cell_policies if p.column in table.schema]

        rows: list[tuple] = []
        provs: list[RowProvenance] = []
        for i in range(len(table)):
            row_dict = table.row_dict(i)
            # 1. purpose check against the subject's consent
            subject = self._subject_of(row_dict, policies)
            if self.enforce_purpose and subject is not None:
                consent = self.provider.consents.for_patient(subject)
                if not consent.permits_purpose(context.purpose.name):
                    report.rows_dropped_purpose += 1
                    continue
            # 3 (checked early so dropped rows skip cell work):
            # intensional restrictions
            metadata = self.provider.metadata.metadata_for_row(table_name, row_dict)
            if metadata.get("deny_row"):
                report.rows_dropped_intensional += 1
                continue
            # 2. consent-flag cell policies
            mutated = list(table.rows[i])
            for policy in policies:
                if subject is None:
                    continue
                consent = self.provider.consents.for_patient(
                    row_dict.get(policy.subject_column, subject)
                )
                if getattr(consent, policy.consent_flag, False):
                    continue
                idx = table.schema.index_of(policy.column)
                if mutated[idx] is None:
                    continue
                mutated[idx] = self._apply_action(policy.action, mutated[idx], report)
            # intensional column masks
            for column in metadata.get("mask_columns", ()):  # type: ignore[union-attr]
                if column in table.schema:
                    idx = table.schema.index_of(column)
                    if mutated[idx] is not None:
                        mutated[idx] = None
                        report.cells_suppressed += 1
            rows.append(tuple(mutated))
            provs.append(table.provenance[i])

        exported = self._retype_for_policies(table, policies, rows, provs)
        # 4. k-anonymization (and optional l-diversity) pass
        if self.k_anonymity is not None:
            qis, k = self.k_anonymity
            applicable = [qi for qi in qis if qi.column in exported.schema]
            if applicable and len(exported):
                result = mondrian_anonymize(exported, applicable, k)
                if self.l_diversity is not None:
                    sensitive, l = self.l_diversity
                    if sensitive in result.table.schema:
                        from repro.anonymize.ldiversity import enforce_l_diversity

                        result = enforce_l_diversity(result, sensitive, l)
                exported = result.table
                report.k_anonymized = True
        report.rows_out = len(exported)
        return exported, report

    def _subject_of(self, row: dict, policies: list[CellPolicy]) -> str | None:
        for policy in policies:
            subject = row.get(policy.subject_column)
            if subject is not None:
                return str(subject)
        return str(row["patient"]) if "patient" in row and row["patient"] else None

    def _apply_action(self, action: str, value: object, report: GatewayReport) -> object:
        if action == "pseudonymize":
            if self.pseudonymizer is None:
                raise EnforcementError(
                    "cell policy requires pseudonymization but the gateway "
                    "has no Pseudonymizer"
                )
            report.cells_pseudonymized += 1
            return self.pseudonymizer.pseudonym(value)
        report.cells_suppressed += 1
        return None

    @staticmethod
    def _retype_for_policies(
        table: Table,
        policies: list[CellPolicy],
        rows: list[tuple],
        provs: list[RowProvenance],
    ) -> Table:
        """Suppression makes policy columns nullable in the exported schema."""
        from repro.relational.schema import Column, Schema

        suppressible = {p.column for p in policies if p.action == "suppress"}
        schema = Schema(
            Column(c.name, c.ctype, True) if c.name in suppressible else c
            for c in table.schema
        )
        return Table.derived(
            table.name, schema, rows, provs, provider=table.provider
        )
