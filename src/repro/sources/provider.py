"""Data providers: the institutions of Fig 1 and their trust posture.

A provider owns tables, consents, and a source-level PLA. Section 3
distinguishes two postures: the source enforces its own PLA before releasing
anything (``SOURCE_ENFORCES``, "smaller organizations always going for the
first option"), or it releases everything along with the PLA and trusts the
BI provider to enforce (``BI_ENFORCES``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import CatalogError, PolicyError
from repro.policy.intensional import MetadataStore
from repro.relational.catalog import Catalog
from repro.relational.table import Table
from repro.sources.consent import ConsentRegistry

__all__ = ["TrustPosture", "ProviderKind", "DataProvider"]


class TrustPosture(enum.Enum):
    """Who enforces the source's PLA on exported data."""

    SOURCE_ENFORCES = "source_enforces"
    BI_ENFORCES = "bi_enforces"


class ProviderKind(enum.Enum):
    """The institution types of the paper's Fig 1 scenario."""

    HOSPITAL = "hospital"
    LABORATORY = "laboratory"
    FAMILY_DOCTOR = "family_doctor"
    MUNICIPALITY = "municipality"
    HEALTH_AGENCY = "health_agency"


@dataclass
class DataProvider:
    """One data source: its tables, consents, and privacy metadata."""

    name: str
    kind: ProviderKind
    posture: TrustPosture = TrustPosture.SOURCE_ENFORCES
    catalog: Catalog = field(default_factory=Catalog)
    consents: ConsentRegistry = field(default_factory=ConsentRegistry)
    metadata: MetadataStore = field(default_factory=MetadataStore)
    it_skill: float = 0.5  # drives posture choice in scenario builders (§3)

    def __post_init__(self) -> None:
        if not self.name:
            raise PolicyError("provider name must be non-empty")
        if not 0.0 <= self.it_skill <= 1.0:
            raise PolicyError("it_skill must be in [0, 1]")

    def add_table(self, table: Table) -> Table:
        """Register a table; its provider tag must match this provider."""
        if table.provider != self.name:
            raise CatalogError(
                f"table {table.name!r} is tagged provider={table.provider!r}, "
                f"expected {self.name!r}"
            )
        return self.catalog.add_table(table)

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def table_names(self) -> tuple[str, ...]:
        return self.catalog.table_names()

    @classmethod
    def posture_for_skill(cls, it_skill: float) -> TrustPosture:
        """The paper's observed rule: low-IT-skill sources self-enforce."""
        return (
            TrustPosture.BI_ENFORCES if it_skill >= 0.7 else TrustPosture.SOURCE_ENFORCES
        )

    def describe(self) -> str:
        tables = ", ".join(self.table_names()) or "(no tables)"
        return (
            f"{self.name} ({self.kind.value}, {self.posture.value}, "
            f"{len(self.consents)} consents): {tables}"
        )
