"""Data sources: providers, patient consents, and the source-side gateway."""

from repro.sources.consent import ConsentAgreement, ConsentRegistry
from repro.sources.filters import CellPolicy, GatewayReport, SourceGateway
from repro.sources.provider import DataProvider, ProviderKind, TrustPosture

__all__ = [
    "CellPolicy",
    "ConsentAgreement",
    "ConsentRegistry",
    "DataProvider",
    "GatewayReport",
    "ProviderKind",
    "SourceGateway",
    "TrustPosture",
]
