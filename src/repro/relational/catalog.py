"""Catalog: the namespace of base tables and views a query runs against."""

from __future__ import annotations

import itertools
import threading
from typing import Callable, Iterable

from repro.errors import CatalogError
from repro.relational.query import Query
from repro.relational.table import Table

__all__ = ["View", "Catalog"]


class View:
    """A named, stored query definition.

    Views are the paper's §3 source-level access-control mechanism ("disallow
    access to the base tables but define views on top of them") and the
    representation of meta-reports over the warehouse.
    """

    def __init__(self, name: str, query: Query, *, description: str = "") -> None:
        if not name:
            raise CatalogError("view name must be non-empty")
        self.name = name
        self.query = query
        self.description = description

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"View({self.name!r}, {self.query.describe()!r})"


class Catalog:
    """A flat namespace of base tables and views.

    Tables and views share the namespace (a query's FROM may name either).
    The catalog detects view-definition cycles at registration time.
    """

    # Process-unique identity for cache keys. ``id(self)`` is unusable here:
    # CPython recycles addresses, so a catalog allocated after another died
    # can collide with the dead one's cache entries (same address, same
    # ddl_version, same table versions — but different view definitions).
    _serial = itertools.count(1)

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._views: dict[str, View] = {}
        self.ddl_version = 0
        self.uid = next(Catalog._serial)
        self._mutation_hooks: list[Callable[["Catalog", str], None]] = []
        # Serializes DDL mutations and hook registration against each other.
        # Reentrant because mutation hooks may re-enter the catalog (e.g. to
        # recompute state tokens while invalidating). Concurrent *readers*
        # during a mutation are the serving layer's problem — the delivery
        # daemon wraps deliveries/mutations in an RWLock; this lock only
        # guarantees the catalog itself never corrupts its namespace or
        # skips a hook when two writers collide.
        self._lock = threading.RLock()

    # -- mutation notification ----------------------------------------------

    def add_mutation_hook(self, hook: Callable[["Catalog", str], None]) -> None:
        """Call ``hook(catalog, name)`` after every add/replace/drop.

        This is the cache-invalidation seam: the plan cache and containment
        proof cache subscribe so catalog DDL immediately evicts entries
        derived from the old definitions (version-stamped keys make stale
        hits impossible regardless; the hook reclaims the memory eagerly).
        """
        with self._lock:
            if hook not in self._mutation_hooks:
                self._mutation_hooks.append(hook)

    def _mutated(self, name: str) -> None:
        # Caller holds self._lock; hooks run under it so a concurrent writer
        # cannot interleave between the version bump and the invalidations.
        self.ddl_version += 1
        for hook in tuple(self._mutation_hooks):
            hook(self, name)

    # -- registration -------------------------------------------------------

    def add_table(self, table: Table, *, replace: bool = False) -> Table:
        """Register a base table under its own name."""
        with self._lock:
            self._check_name_free(table.name, replace=replace)
            self._views.pop(table.name, None)
            self._tables[table.name] = table
            self._mutated(table.name)
            return table

    def add_view(self, view: View, *, replace: bool = False) -> View:
        """Register a view; rejects definitions that would cycle."""
        with self._lock:
            self._check_name_free(view.name, replace=replace)
            self._check_acyclic(view)
            self._tables.pop(view.name, None)
            self._views[view.name] = view
            self._mutated(view.name)
            return view

    def drop(self, name: str) -> None:
        """Remove a table or view; missing names raise :class:`CatalogError`."""
        with self._lock:
            if name in self._tables:
                del self._tables[name]
            elif name in self._views:
                del self._views[name]
            else:
                raise CatalogError(f"no table or view named {name!r}")
            self._mutated(name)

    def _check_name_free(self, name: str, *, replace: bool) -> None:
        if not replace and (name in self._tables or name in self._views):
            raise CatalogError(f"name {name!r} already registered")

    def _check_acyclic(self, view: View) -> None:
        seen = {view.name}
        frontier = list(view.query.referenced_relations())
        while frontier:
            name = frontier.pop()
            if name in seen and name == view.name:
                raise CatalogError(f"view {view.name!r} would reference itself")
            if name in seen:
                continue
            seen.add(name)
            nested = self._views.get(name)
            if nested is not None:
                frontier.extend(nested.query.referenced_relations())

    # -- lookup -------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._tables or name in self._views

    def table(self, name: str) -> Table:
        """The base table named ``name``."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no base table named {name!r}") from None

    def view(self, name: str) -> View:
        """The view named ``name``."""
        try:
            return self._views[name]
        except KeyError:
            raise CatalogError(f"no view named {name!r}") from None

    def is_view(self, name: str) -> bool:
        return name in self._views

    def is_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._tables))

    def view_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._views))

    def tables(self) -> Iterable[Table]:
        return self._tables.values()

    # -- analysis -------------------------------------------------------------

    def base_relations(self, name: str) -> frozenset[str]:
        """Transitive closure of base tables a table/view name resolves to."""
        if name in self._tables:
            return frozenset([name])
        if name not in self._views:
            raise CatalogError(f"no table or view named {name!r}")
        out: set[str] = set()
        frontier = [name]
        visited: set[str] = set()
        while frontier:
            current = frontier.pop()
            if current in visited:
                continue
            visited.add(current)
            if current in self._tables:
                out.add(current)
            elif current in self._views:
                frontier.extend(self._views[current].query.referenced_relations())
            else:
                raise CatalogError(
                    f"view chain references unknown relation {current!r}"
                )
        return frozenset(out)

    def base_relations_of_query(self, query: Query) -> frozenset[str]:
        """Transitive base tables referenced anywhere in ``query``."""
        out: set[str] = set()
        for name in query.referenced_relations():
            out.update(self.base_relations(name))
        return frozenset(out)

    def state_token(self, query: Query) -> tuple:
        """Hashable snapshot of everything ``query``'s result depends on.

        Combines the DDL generation (table/view definitions) with the data
        version and row count of every base table the query transitively
        reads. Two executions with equal tokens are guaranteed to see the
        same catalog state, which is what makes result caching sound.

        Taken under the catalog lock so a token is never computed halfway
        through another thread's DDL mutation.
        """
        with self._lock:
            parts = tuple(
                (name, self._tables[name].data_version, len(self._tables[name].rows))
                for name in sorted(self.base_relations_of_query(query))
            )
            return (self.uid, self.ddl_version, parts)
