"""In-memory tables with per-row why-provenance and per-cell where-provenance.

Every base-table row carries a stable :class:`RowId` naming its owner
(provider), table, and ordinal. Relational operators propagate:

* **why-provenance** (*lineage*): the set of base ``RowId`` s a derived row
  depends on — exactly what aggregation-threshold PLAs and third-party
  auditing need (Cui & Widom style lineage);
* **where-provenance**: for each output cell, the set of base cells it was
  *copied* from (Buneman/Tan style), which powers the elicitation tool's
  "where does this report value come from" display.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError, TypeMismatchError
from repro.relational.schema import Column, Schema
from repro.relational.types import ColumnType, coerce_value

__all__ = ["RowId", "CellRef", "RowProvenance", "Table", "EMPTY_LINEAGE"]


@dataclass(frozen=True, order=True)
class RowId:
    """Globally unique identity of a base-table row."""

    provider: str
    table: str
    ordinal: int

    def __str__(self) -> str:
        return f"{self.provider}/{self.table}#{self.ordinal}"


@dataclass(frozen=True, order=True)
class CellRef:
    """A single base cell: a row identity plus a column name."""

    row: RowId
    column: str

    def __str__(self) -> str:
        return f"{self.row}.{self.column}"


EMPTY_LINEAGE: frozenset[RowId] = frozenset()
_EMPTY_WHERE: Mapping[str, frozenset[CellRef]] = {}


@dataclass(frozen=True)
class RowProvenance:
    """Provenance carried by one (derived) row."""

    lineage: frozenset[RowId] = EMPTY_LINEAGE
    where: Mapping[str, frozenset[CellRef]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.where is None:
            object.__setattr__(self, "where", _EMPTY_WHERE)

    @classmethod
    def for_base_row(cls, row_id: RowId, schema: Schema) -> "RowProvenance":
        """Provenance of a freshly inserted base row: itself, cell by cell."""
        where = {
            col.name: frozenset([CellRef(row_id, col.name)]) for col in schema
        }
        return cls(lineage=frozenset([row_id]), where=where)

    @classmethod
    def make(
        cls,
        lineage: frozenset[RowId],
        where: Mapping[str, frozenset[CellRef]],
    ) -> "RowProvenance":
        """Fast-path constructor for hot loops (columnar operators).

        Skips the frozen-dataclass ``__init__``/``__post_init__`` machinery;
        ``where`` must already be a concrete mapping (never ``None``). The
        result is value-equal to ``RowProvenance(lineage=..., where=...)``.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "lineage", lineage)
        object.__setattr__(self, "where", where)
        return self

    def where_of(self, column: str) -> frozenset[CellRef]:
        """Base cells the value in ``column`` was copied from (may be empty)."""
        return self.where.get(column, frozenset())

    def merged(self, other: "RowProvenance") -> "RowProvenance":
        """Combine provenance of two rows joined into one output row."""
        where = dict(self.where)
        where.update(other.where)
        return RowProvenance(lineage=self.lineage | other.lineage, where=where)

    def projected(self, mapping: Mapping[str, str]) -> "RowProvenance":
        """Provenance after projecting/renaming: ``mapping`` is new→old name."""
        where = {
            new: self.where[old]
            for new, old in mapping.items()
            if old in self.where
        }
        return RowProvenance(lineage=self.lineage, where=where)


class Table:
    """A schema-typed bag of rows with parallel provenance.

    Rows are stored as tuples in schema order. ``provenance[i]`` is the
    :class:`RowProvenance` of ``rows[i]``. Tables are mutable only through
    :meth:`insert`; relational operators construct new tables.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        *,
        provider: str = "local",
    ) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self.provider = provider
        self.rows: list[tuple[Any, ...]] = []
        self.provenance: list[RowProvenance] = []
        # Bumped on every insert; cache keys pair it with the row count so
        # result/columnar caches never serve data from a mutated table.
        self.data_version = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        name: str,
        schema: Schema,
        rows: Iterable[Sequence[Any] | Mapping[str, Any]],
        *,
        provider: str = "local",
    ) -> "Table":
        """Build a base table, assigning fresh :class:`RowId` s to every row."""
        table = cls(name, schema, provider=provider)
        for row in rows:
            table.insert(row)
        return table

    @classmethod
    def derived(
        cls,
        name: str,
        schema: Schema,
        rows: Sequence[tuple[Any, ...]],
        provenance: Sequence[RowProvenance],
        *,
        provider: str = "derived",
    ) -> "Table":
        """Build a derived table from pre-computed rows and provenance.

        Lazily-decoded provenance sequences (anything exposing a truthy
        ``lazy_provenance`` marker, e.g. the vector path's bitset-mask
        provenance) are adopted as-is instead of being materialized, so a
        fused execution stays free of per-row provenance objects until a
        consumer actually indexes into them.
        """
        if len(rows) != len(provenance):
            raise SchemaError("rows and provenance lists must have equal length")
        table = cls(name, schema, provider=provider)
        table.rows = list(rows)
        if getattr(provenance, "lazy_provenance", False):
            table.provenance = provenance  # type: ignore[assignment]
        else:
            table.provenance = list(provenance)
        return table

    def insert(self, row: Sequence[Any] | Mapping[str, Any]) -> RowId:
        """Insert one row (sequence in schema order, or a name→value mapping).

        Values are coerced to the column types; a fresh :class:`RowId` is
        assigned and returned.
        """
        if isinstance(row, Mapping):
            values = [row.get(col.name) for col in self.schema]
        else:
            if len(row) != len(self.schema):
                raise SchemaError(
                    f"row has {len(row)} values, schema has {len(self.schema)}"
                )
            values = list(row)
        coerced = []
        for value, col in zip(values, self.schema):
            coerced_value = coerce_value(value, col.ctype)
            if coerced_value is None and not col.nullable:
                raise TypeMismatchError(
                    f"NULL in non-nullable column {col.name!r} of {self.name!r}"
                )
            coerced.append(coerced_value)
        row_id = RowId(self.provider, self.name, len(self.rows))
        self.rows.append(tuple(coerced))
        if not isinstance(self.provenance, list):
            # Derived tables may carry an immutable lazy provenance sequence;
            # the first insert materializes it so appends are possible.
            self.provenance = list(self.provenance)
        self.provenance.append(RowProvenance.for_base_row(row_id, self.schema))
        self.data_version += 1
        return row_id

    def insert_many(self, rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> list[RowId]:
        """Insert several rows; returns their :class:`RowId` s."""
        return [self.insert(row) for row in rows]

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)

    def row_dict(self, i: int) -> dict[str, Any]:
        """Row ``i`` as a column-name→value dict."""
        return dict(zip(self.schema.names, self.rows[i]))

    def iter_dicts(self) -> Iterator[dict[str, Any]]:
        """Iterate rows as dicts (handy for tests and report rendering)."""
        names = self.schema.names
        for row in self.rows:
            yield dict(zip(names, row))

    def column_values(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        idx = self.schema.index_of(name)
        return [row[idx] for row in self.rows]

    def lineage_of(self, i: int) -> frozenset[RowId]:
        """Why-provenance (contributing base rows) of row ``i``."""
        return self.provenance[i].lineage

    def all_lineage(self) -> frozenset[RowId]:
        """Union of the lineage of every row (the table's base footprint)."""
        out: set[RowId] = set()
        for prov in self.provenance:
            out.update(prov.lineage)
        return frozenset(out)

    def distinct_values(self, name: str) -> set[Any]:
        """Set of distinct non-NULL values in ``name``."""
        return {v for v in self.column_values(name) if v is not None}

    # -- convenience ---------------------------------------------------------

    def filter_rows(self, keep: Callable[[dict[str, Any]], bool], *, name: str | None = None) -> "Table":
        """A derived table keeping rows where ``keep(row_dict)`` is true."""
        rows: list[tuple[Any, ...]] = []
        provs: list[RowProvenance] = []
        names = self.schema.names
        for row, prov in zip(self.rows, self.provenance):
            if keep(dict(zip(names, row))):
                rows.append(row)
                provs.append(prov)
        return Table.derived(name or self.name, self.schema, rows, provs)

    def head(self, n: int = 5) -> list[dict[str, Any]]:
        """First ``n`` rows as dicts, for display."""
        return [self.row_dict(i) for i in range(min(n, len(self.rows)))]

    def pretty(self, limit: int = 10) -> str:
        """ASCII rendering of up to ``limit`` rows (for examples and docs)."""
        names = self.schema.names
        shown = [tuple(str(v) if v is not None else "NULL" for v in row) for row in self.rows[:limit]]
        widths = [
            max(len(names[i]), *(len(row[i]) for row in shown)) if shown else len(names[i])
            for i in range(len(names))
        ]
        header = " | ".join(name.ljust(w) for name, w in zip(names, widths))
        sep = "-+-".join("-" * w for w in widths)
        lines = [header, sep]
        lines.extend(
            " | ".join(val.ljust(w) for val, w in zip(row, widths)) for row in shown
        )
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name!r}, {len(self.rows)} rows, schema={self.schema.describe()})"


def make_schema(*specs: tuple[str, ColumnType] | tuple[str, ColumnType, bool]) -> Schema:
    """Shorthand schema constructor: ``make_schema(("a", INT), ("b", STRING, False))``."""
    cols = []
    for spec in specs:
        if len(spec) == 2:
            name, ctype = spec  # type: ignore[misc]
            cols.append(Column(name, ctype))
        else:
            name, ctype, nullable = spec  # type: ignore[misc]
            cols.append(Column(name, ctype, nullable))
    return Schema(cols)
