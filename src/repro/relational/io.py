"""CSV import/export for tables — the wire format providers exchange.

The paper's premise is data "gathered and exchanged electronically" between
institutions; flat files are how that exchange actually happens. Export
writes an optional typed header (``name:type``) so re-import recovers the
schema exactly; import without a typed header infers column types from the
data.
"""

from __future__ import annotations

import csv
import datetime
import io
from pathlib import Path
from typing import Any, TextIO

from repro.errors import SchemaError
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import ColumnType, parse_date

__all__ = ["write_csv", "read_csv", "dumps_csv", "loads_csv"]

_NULL = ""


def _serialize(value: Any) -> str:
    if value is None:
        return _NULL
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)


def write_csv(table: Table, target: str | Path | TextIO, *, typed_header: bool = True) -> None:
    """Write ``table`` as CSV; NULL becomes the empty field."""
    close = False
    if isinstance(target, (str, Path)):
        handle: TextIO = open(target, "w", newline="")
        close = True
    else:
        handle = target
    try:
        writer = csv.writer(handle)
        if typed_header:
            writer.writerow(
                f"{c.name}:{c.ctype.value}{'' if c.nullable else '!'}"
                for c in table.schema
            )
        else:
            writer.writerow(table.schema.names)
        for row in table.rows:
            writer.writerow(_serialize(v) for v in row)
    finally:
        if close:
            handle.close()


def dumps_csv(table: Table, *, typed_header: bool = True) -> str:
    """The CSV text of ``table``."""
    buffer = io.StringIO()
    write_csv(table, buffer, typed_header=typed_header)
    return buffer.getvalue()


def _parse_header(cells: list[str]) -> Schema | None:
    """A schema if the header is typed (every cell is ``name:type[!]``)."""
    columns = []
    type_names = {t.value for t in ColumnType}
    for cell in cells:
        if ":" not in cell:
            return None
        name, _, type_part = cell.rpartition(":")
        nullable = not type_part.endswith("!")
        type_name = type_part.rstrip("!")
        if type_name not in type_names or not name:
            return None
        columns.append(Column(name, ColumnType(type_name), nullable))
    return Schema(columns)


def _infer_type(values: list[str]) -> ColumnType:
    """Best-fitting type for a column's non-empty string values."""
    from repro.errors import TypeMismatchError

    present = [v for v in values if v != _NULL]
    if not present:
        return ColumnType.STRING
    if all(v in ("true", "false") for v in present):
        return ColumnType.BOOL
    try:
        for v in present:
            int(v)
        return ColumnType.INT
    except ValueError:
        pass
    try:
        for v in present:
            float(v)
        return ColumnType.FLOAT
    except ValueError:
        pass
    try:
        for v in present:
            parse_date(v)
        return ColumnType.DATE
    except TypeMismatchError:
        pass
    return ColumnType.STRING


def _deserialize(cell: str, ctype: ColumnType) -> Any:
    if cell == _NULL:
        return None
    if ctype is ColumnType.BOOL:
        return cell == "true"
    if ctype is ColumnType.INT:
        return int(cell)
    if ctype is ColumnType.FLOAT:
        return float(cell)
    if ctype is ColumnType.DATE:
        return parse_date(cell)
    if ctype is ColumnType.DATETIME:
        return datetime.datetime.fromisoformat(cell)
    return cell


def read_csv(
    source: str | Path | TextIO,
    *,
    name: str,
    provider: str = "local",
    schema: Schema | None = None,
) -> Table:
    """Read a CSV into a fresh base table.

    Priority for the schema: explicit ``schema`` argument, then a typed
    header, then inference over the data rows.
    """
    close = False
    if isinstance(source, (str, Path)):
        handle: TextIO = open(source, newline="")
        close = True
    else:
        handle = source
    try:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError("CSV input is empty (no header row)") from None
        records = list(reader)
    finally:
        if close:
            handle.close()

    if schema is None:
        schema = _parse_header(header)
    if schema is None:
        names = header
        columns = []
        for i, column_name in enumerate(names):
            values = [row[i] if i < len(row) else _NULL for row in records]
            columns.append(Column(column_name, _infer_type(values)))
        schema = Schema(columns)
    if len(schema) != len(header):
        raise SchemaError(
            f"CSV has {len(header)} columns, schema expects {len(schema)}"
        )

    table = Table(name, schema, provider=provider)
    for row in records:
        if len(row) != len(schema):
            raise SchemaError(
                f"CSV row has {len(row)} fields, expected {len(schema)}: {row!r}"
            )
        table.insert(
            tuple(
                _deserialize(cell, column.ctype)
                for cell, column in zip(row, schema)
            )
        )
    return table


def loads_csv(
    text: str, *, name: str, provider: str = "local", schema: Schema | None = None
) -> Table:
    """Read a table from CSV text."""
    return read_csv(io.StringIO(text), name=name, provider=provider, schema=schema)
