"""Relational schemas: ordered, uniquely named, typed columns.

Schemas are immutable value objects. All structural operations (project,
rename, concatenation for joins) return new schemas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.types import ColumnType

__all__ = ["Column", "Schema"]


@dataclass(frozen=True)
class Column:
    """One column: a name, a scalar type, and a nullability flag."""

    name: str
    ctype: ColumnType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"invalid column name {self.name!r}")

    def renamed(self, name: str) -> "Column":
        """A copy of this column under a new name."""
        return Column(name, self.ctype, self.nullable)

    def as_nullable(self) -> "Column":
        """A copy of this column that accepts NULLs (for outer joins)."""
        return self if self.nullable else Column(self.name, self.ctype, True)


@dataclass(frozen=True)
class Schema:
    """An ordered sequence of uniquely named columns."""

    columns: tuple[Column, ...]
    _index: Mapping[str, int] = field(init=False, repr=False, compare=False, hash=False)

    def __init__(self, columns: Iterable[Column]) -> None:
        cols = tuple(columns)
        index: dict[str, int] = {}
        for i, col in enumerate(cols):
            if col.name in index:
                raise SchemaError(f"duplicate column name {col.name!r}")
            index[col.name] = i
        object.__setattr__(self, "columns", cols)
        object.__setattr__(self, "_index", index)

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    @property
    def names(self) -> tuple[str, ...]:
        """Column names in schema order."""
        return tuple(col.name for col in self.columns)

    def column(self, name: str) -> Column:
        """The column named ``name``; raises :class:`SchemaError` if absent."""
        try:
            return self.columns[self._index[name]]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; schema has {list(self.names)}"
            ) from None

    def index_of(self, name: str) -> int:
        """Positional index of column ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; schema has {list(self.names)}"
            ) from None

    def has_all(self, names: Iterable[str]) -> bool:
        """True if every name in ``names`` is a column of this schema."""
        return all(name in self._index for name in names)

    # -- structural operations --------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema restricted (and reordered) to ``names``."""
        return Schema(self.column(name) for name in names)

    def rename(self, mapping: Mapping[str, str]) -> "Schema":
        """Schema with columns renamed per ``mapping`` (others unchanged)."""
        for old in mapping:
            if old not in self._index:
                raise SchemaError(f"cannot rename unknown column {old!r}")
        return Schema(
            col.renamed(mapping.get(col.name, col.name)) for col in self.columns
        )

    def concat(self, other: "Schema", *, disambiguate: tuple[str, str] | None = None) -> "Schema":
        """Concatenate two schemas, as produced by a join.

        On a name collision, if ``disambiguate`` provides a ``(left, right)``
        prefix pair the colliding columns are qualified as ``prefix.name``;
        otherwise a :class:`SchemaError` is raised.
        """
        collisions = set(self.names) & set(other.names)
        if collisions and disambiguate is None:
            raise SchemaError(
                f"join would duplicate columns {sorted(collisions)}; "
                "provide qualifiers or project first"
            )
        left_cols = [
            col.renamed(f"{disambiguate[0]}.{col.name}")
            if disambiguate and col.name in collisions
            else col
            for col in self.columns
        ]
        right_cols = [
            col.renamed(f"{disambiguate[1]}.{col.name}")
            if disambiguate and col.name in collisions
            else col
            for col in other.columns
        ]
        return Schema(left_cols + right_cols)

    def describe(self) -> str:
        """Human-readable one-line description, for elicitation displays."""
        parts = ", ".join(
            f"{col.name}: {col.ctype}{'' if col.nullable else ' NOT NULL'}"
            for col in self.columns
        )
        return f"({parts})"
