"""Relational algebra operators with provenance propagation.

Each operator is a pure function ``Table → Table`` (or ``Table × Table →
Table``). Lineage (why-provenance) and where-provenance flow through every
operator per the rules of Cui–Widom lineage tracing:

* ``select``/``limit``/``order``/``distinct`` keep each surviving row's
  provenance (distinct unions the provenance of merged duplicates);
* ``project`` keeps lineage, remaps where-provenance through column aliases
  (computed expressions copy nothing, so their where set is the union of the
  inputs' where sets — they *derive from* but are not *copied from*);
* ``join`` merges the two sides' provenance per output row;
* ``aggregate`` gives each group the union of its members' lineage — the
  contributor set whose size an aggregation-threshold PLA constrains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import QueryError, SchemaError
from repro.relational.expressions import Col, Expr
from repro.relational.schema import Column, Schema
from repro.relational.table import RowProvenance, Table
from repro.relational.types import ColumnType

__all__ = [
    "select",
    "project",
    "extend",
    "join",
    "union",
    "distinct",
    "aggregate",
    "order_by",
    "limit",
    "rename",
    "AggSpec",
    "AGGREGATE_FUNCTIONS",
    "project_plan",
    "aggregate_output_schema",
    "join_frame",
]


def select(table: Table, predicate: Expr, *, name: str | None = None) -> Table:
    """Rows of ``table`` satisfying ``predicate``."""
    missing = predicate.columns() - set(table.schema.names)
    if missing:
        raise QueryError(f"predicate references unknown columns {sorted(missing)}")
    rows: list[tuple[Any, ...]] = []
    provs: list[RowProvenance] = []
    names = table.schema.names
    for row, prov in zip(table.rows, table.provenance):
        if predicate.evaluate(dict(zip(names, row))):
            rows.append(row)
            provs.append(prov)
    return Table.derived(name or table.name, table.schema, rows, provs)


def project_plan(
    in_schema: Schema, columns: Sequence[str | tuple[str, Expr]]
) -> tuple[Schema, list[tuple[str, Expr, bool]]]:
    """Resolve a projection list against ``in_schema``.

    Returns the output schema and ``(alias, expr, is_copy)`` extractors.
    Shared by the row-store and columnar executors so both validate and
    type-infer identically.
    """
    out_cols: list[Column] = []
    extractors: list[tuple[str, Expr, bool]] = []  # (alias, expr, is_copy)
    for spec in columns:
        if isinstance(spec, str):
            out_cols.append(in_schema.column(spec))
            extractors.append((spec, Col(spec), True))
        else:
            alias, expr = spec
            if isinstance(expr, Col):
                src = in_schema.column(expr.name)
                out_cols.append(Column(alias, src.ctype, src.nullable))
                extractors.append((alias, expr, True))
            else:
                out_cols.append(Column(alias, _infer_type(expr, in_schema)))
                extractors.append((alias, expr, False))
    return Schema(out_cols), extractors


def project(
    table: Table,
    columns: Sequence[str | tuple[str, Expr]],
    *,
    name: str | None = None,
) -> Table:
    """Project to plain columns and/or computed ``(alias, expr)`` columns."""
    schema, extractors = project_plan(table.schema, columns)
    rows: list[tuple[Any, ...]] = []
    provs: list[RowProvenance] = []
    names = table.schema.names
    for row, prov in zip(table.rows, table.provenance):
        row_dict = dict(zip(names, row))
        values = []
        where: dict[str, Any] = {}
        for alias, expr, is_copy in extractors:
            values.append(expr.evaluate(row_dict))
            if is_copy:
                assert isinstance(expr, Col)
                where[alias] = prov.where_of(expr.name)
            else:
                derived: set = set()
                for src_col in expr.columns():
                    derived.update(prov.where_of(src_col))
                where[alias] = frozenset(derived)
        rows.append(tuple(values))
        provs.append(RowProvenance(lineage=prov.lineage, where=where))
    return Table.derived(name or table.name, schema, rows, provs)


def extend(
    table: Table,
    additions: Sequence[tuple[str, Expr]],
    *,
    name: str | None = None,
) -> Table:
    """Append computed columns while keeping every existing column."""
    specs: list[str | tuple[str, Expr]] = list(table.schema.names)
    specs.extend(additions)
    return project(table, specs, name=name)


def rename(table: Table, mapping: dict[str, str], *, name: str | None = None) -> Table:
    """Rename columns per ``mapping`` (old→new)."""
    schema = table.schema.rename(mapping)
    provs = []
    new_to_old = {mapping.get(c, c): c for c in table.schema.names}
    for prov in table.provenance:
        provs.append(prov.projected(new_to_old))
    return Table.derived(name or table.name, schema, list(table.rows), provs)


def join_frame(
    left_schema: Schema,
    right_schema: Schema,
    left_name: str,
    right_name: str,
    on: Sequence[tuple[str, str]],
    how: str,
) -> tuple[Schema, set[str], list[int], list[int]]:
    """Validate a join and compute its output frame.

    Returns ``(schema, collisions, left_key_idx, right_key_idx)``. Shared by
    the row-store and columnar executors.
    """
    if how not in ("inner", "left", "right", "full", "cross"):
        raise QueryError(f"unsupported join type {how!r}")
    if how == "cross":
        if on:
            raise QueryError("CROSS JOIN takes no ON equality pairs")
    elif not on:
        raise QueryError("join requires at least one equality pair")
    for lcol, rcol in on:
        left_schema.column(lcol)
        right_schema.column(rcol)

    schema = left_schema.concat(right_schema, disambiguate=(left_name, right_name))
    n_left = len(left_schema)
    if how in ("left", "right", "full"):
        # Columns on the padded side(s) of an outer join become nullable:
        # the right side for LEFT, the left side for RIGHT, both for FULL.
        left_cols = list(schema.columns[:n_left])
        right_cols = list(schema.columns[n_left:])
        if how in ("left", "full"):
            right_cols = [c.as_nullable() for c in right_cols]
        if how in ("right", "full"):
            left_cols = [c.as_nullable() for c in left_cols]
        schema = Schema(left_cols + right_cols)
    collisions = set(left_schema.names) & set(right_schema.names)
    left_key_idx = [left_schema.index_of(lcol) for lcol, _ in on]
    right_key_idx = [right_schema.index_of(rcol) for _, rcol in on]
    return schema, collisions, left_key_idx, right_key_idx


def join(
    left: Table,
    right: Table,
    on: Sequence[tuple[str, str]],
    *,
    how: str = "inner",
    name: str | None = None,
) -> Table:
    """Hash equi-join of ``left`` and ``right`` on ``(left_col, right_col)`` pairs.

    ``how`` is ``"inner"``, ``"left"``, ``"right"``, or ``"full"``. Name
    collisions between the two sides are qualified as ``<table>.<column>``.

    Output order (mirrored exactly by the columnar executor): matched pairs
    in left-major order (left row order, then right insertion order per
    key), then — for LEFT/FULL — each unmatched left row in left order at
    its probe position, then — for RIGHT/FULL — the unmatched right rows in
    right order, padded with NULLs on the left.
    """
    schema, collisions, left_key_idx, right_key_idx = join_frame(
        left.schema, right.schema, left.name, right.name, on, how
    )
    buckets: dict[tuple[Any, ...], list[int]] = {}
    for i, row in enumerate(right.rows):
        key = tuple(row[k] for k in right_key_idx)
        if any(v is None for v in key):
            continue
        buckets.setdefault(key, []).append(i)

    null_left = (None,) * len(left.schema)
    null_right = (None,) * len(right.schema)
    rows: list[tuple[Any, ...]] = []
    provs: list[RowProvenance] = []

    def requalify(prov: RowProvenance, side: Table) -> RowProvenance:
        if not collisions:
            return prov
        where = {
            (f"{side.name}.{c}" if c in collisions else c): refs
            for c, refs in prov.where.items()
        }
        return RowProvenance(lineage=prov.lineage, where=where)

    matched_right: set[int] = set()
    for i, lrow in enumerate(left.rows):
        key = tuple(lrow[k] for k in left_key_idx)
        matches = [] if any(v is None for v in key) else buckets.get(key, [])
        lprov = requalify(left.provenance[i], left)
        if matches:
            matched_right.update(matches)
            for j in matches:
                rows.append(lrow + right.rows[j])
                provs.append(lprov.merged(requalify(right.provenance[j], right)))
        elif how in ("left", "full"):
            rows.append(lrow + null_right)
            provs.append(lprov)
    if how in ("right", "full"):
        for j, rrow in enumerate(right.rows):
            if j not in matched_right:
                rows.append(null_left + rrow)
                provs.append(requalify(right.provenance[j], right))
    return Table.derived(name or f"{left.name}_{right.name}", schema, rows, provs)


def union(first: Table, second: Table, *, name: str | None = None) -> Table:
    """Bag union; schemas must agree on names and types (order included)."""
    if first.schema.names != second.schema.names:
        raise SchemaError(
            f"union schema mismatch: {first.schema.names} vs {second.schema.names}"
        )
    for a, b in zip(first.schema, second.schema):
        if a.ctype is not b.ctype:
            raise SchemaError(f"union type mismatch on column {a.name!r}")
    return Table.derived(
        name or first.name,
        first.schema,
        list(first.rows) + list(second.rows),
        list(first.provenance) + list(second.provenance),
    )


def distinct(table: Table, *, name: str | None = None) -> Table:
    """Duplicate elimination; merged duplicates union their provenance."""
    seen: dict[tuple[Any, ...], int] = {}
    rows: list[tuple[Any, ...]] = []
    provs: list[RowProvenance] = []
    for row, prov in zip(table.rows, table.provenance):
        if row in seen:
            i = seen[row]
            provs[i] = RowProvenance(
                lineage=provs[i].lineage | prov.lineage,
                where={
                    c: provs[i].where_of(c) | prov.where_of(c)
                    for c in table.schema.names
                },
            )
        else:
            seen[row] = len(rows)
            rows.append(row)
            provs.append(prov)
    return Table.derived(name or table.name, table.schema, rows, provs)


# -- aggregation ------------------------------------------------------------


@dataclass(frozen=True)
class AggSpec:
    """One aggregate output: ``func(column) AS alias``.

    ``column`` is ``None`` for ``COUNT(*)``. ``distinct`` applies the
    aggregate over distinct values (``COUNT(DISTINCT col)``).
    """

    func: str
    column: str | None
    alias: str
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCTIONS:
            raise QueryError(f"unknown aggregate function {self.func!r}")
        if self.column is None and self.func != "count":
            raise QueryError(f"{self.func}(*) is not defined; only count(*)")

    def __str__(self) -> str:
        inner = "*" if self.column is None else self.column
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.func.upper()}({inner}) AS {self.alias}"


def _agg_count(values: list[Any]) -> int:
    return len(values)


def _agg_sum(values: list[Any]) -> Any:
    vals = [v for v in values if v is not None]
    return sum(vals) if vals else None


def _agg_avg(values: list[Any]) -> Any:
    vals = [v for v in values if v is not None]
    return sum(vals) / len(vals) if vals else None


def _agg_min(values: list[Any]) -> Any:
    vals = [v for v in values if v is not None]
    return min(vals) if vals else None


def _agg_max(values: list[Any]) -> Any:
    vals = [v for v in values if v is not None]
    return max(vals) if vals else None


AGGREGATE_FUNCTIONS: dict[str, Callable[[list[Any]], Any]] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
}

_AGG_RESULT_TYPE = {
    "count": ColumnType.INT,
    "avg": ColumnType.FLOAT,
}


def aggregate_output_schema(
    in_schema: Schema, group_by: Sequence[str], aggs: Sequence[AggSpec]
) -> Schema:
    """Validate a GROUP BY block and compute its output schema.

    Shared by the row-store and columnar executors.
    """
    for g in group_by:
        in_schema.column(g)
    for spec in aggs:
        if spec.column is not None:
            in_schema.column(spec.column)
    out_cols = [in_schema.column(g) for g in group_by]
    for spec in aggs:
        if spec.func in _AGG_RESULT_TYPE:
            ctype = _AGG_RESULT_TYPE[spec.func]
        elif spec.column is not None:
            ctype = in_schema.column(spec.column).ctype
        else:
            ctype = ColumnType.INT
        out_cols.append(Column(spec.alias, ctype))
    return Schema(out_cols)


def aggregate(
    table: Table,
    group_by: Sequence[str],
    aggs: Sequence[AggSpec],
    *,
    name: str | None = None,
) -> Table:
    """GROUP BY with lineage: each output row's lineage is the union over its group.

    With an empty ``group_by`` the whole input forms one group (even when the
    input is empty, matching SQL's scalar-aggregate semantics).
    """
    schema = aggregate_output_schema(table.schema, group_by, aggs)
    group_idx = [table.schema.index_of(g) for g in group_by]
    groups: dict[tuple[Any, ...], list[int]] = {}
    order: list[tuple[Any, ...]] = []
    for i, row in enumerate(table.rows):
        key = tuple(row[k] for k in group_idx)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(i)
    if not group_by and not groups:
        groups[()] = []
        order.append(())

    rows: list[tuple[Any, ...]] = []
    provs: list[RowProvenance] = []
    for key in order:
        members = groups[key]
        values = list(key)
        lineage: set = set()
        where: dict[str, frozenset] = {}
        for g in group_by:
            refs: set = set()
            for i in members:
                refs.update(table.provenance[i].where_of(g))
            where[g] = frozenset(refs)
        for i in members:
            lineage.update(table.provenance[i].lineage)
        for spec in aggs:
            if spec.column is None:
                col_values: list[Any] = [1] * len(members)
                agg_where: frozenset = frozenset()
            else:
                idx = table.schema.index_of(spec.column)
                col_values = [table.rows[i][idx] for i in members]
                refs = set()
                for i in members:
                    refs.update(table.provenance[i].where_of(spec.column))
                agg_where = frozenset(refs)
            if spec.distinct:
                seen_vals: list[Any] = []
                for v in col_values:
                    if v not in seen_vals:
                        seen_vals.append(v)
                col_values = seen_vals
            values.append(AGGREGATE_FUNCTIONS[spec.func](col_values))
            where[spec.alias] = agg_where
        rows.append(tuple(values))
        provs.append(RowProvenance(lineage=frozenset(lineage), where=where))
    return Table.derived(name or table.name, schema, rows, provs)


def order_by(
    table: Table,
    keys: Sequence[tuple[str, bool]],
    *,
    name: str | None = None,
) -> Table:
    """Stable sort by ``(column, descending)`` keys; NULLs sort last."""
    indices = list(range(len(table.rows)))
    for colname, descending in reversed(keys):
        idx = table.schema.index_of(colname)

        def sort_key(i: int, idx: int = idx) -> tuple[int, Any]:
            v = table.rows[i][idx]
            return (1, None) if v is None else (0, v)

        # NULLs must sort last in both directions, so sort non-NULLs only.
        nones = [i for i in indices if table.rows[i][idx] is None]
        rest = [i for i in indices if table.rows[i][idx] is not None]
        rest.sort(key=sort_key, reverse=descending)
        indices = rest + nones
    return Table.derived(
        name or table.name,
        table.schema,
        [table.rows[i] for i in indices],
        [table.provenance[i] for i in indices],
    )


def limit(table: Table, n: int, *, name: str | None = None) -> Table:
    """First ``n`` rows."""
    if n < 0:
        raise QueryError("limit must be non-negative")
    return Table.derived(
        name or table.name, table.schema, table.rows[:n], table.provenance[:n]
    )


def _infer_type(expr: Expr, schema: Schema) -> ColumnType:
    """Best-effort result type for a computed expression."""
    from repro.relational.expressions import (
        And,
        Arith,
        Case,
        Comparison,
        InList,
        IsNull,
        Lit,
        Not,
        Or,
    )

    if isinstance(expr, Col):
        return schema.column(expr.name).ctype
    if isinstance(expr, Lit):
        if isinstance(expr.value, bool):
            return ColumnType.BOOL
        if isinstance(expr.value, int):
            return ColumnType.INT
        if isinstance(expr.value, float):
            return ColumnType.FLOAT
        return ColumnType.STRING
    if isinstance(expr, (Comparison, And, Or, Not, InList, IsNull)):
        return ColumnType.BOOL
    if isinstance(expr, Arith):
        if expr.op == "/":
            return ColumnType.FLOAT
        left = _infer_type(expr.left, schema)
        right = _infer_type(expr.right, schema)
        if ColumnType.FLOAT in (left, right):
            return ColumnType.FLOAT
        return ColumnType.INT
    if isinstance(expr, Case):
        # Unify the result types of every THEN arm (and ELSE when present;
        # a missing ELSE contributes NULL, which constrains nothing).
        results = list(expr.thens)
        if expr.else_ is not None:
            results.append(expr.else_)
        branch_types = {
            _infer_type(e, schema)
            for e in results
            if not (isinstance(e, Lit) and e.value is None)
        }
        if len(branch_types) == 1:
            return branch_types.pop()
        if branch_types <= {ColumnType.INT, ColumnType.FLOAT}:
            return ColumnType.FLOAT
        return ColumnType.STRING
    return ColumnType.STRING
