"""Typed column vectors and fused single-pass kernels (the vector fast path).

This is the third execution tier, below the row-store reference engine and
the object-columnar batch path:

* **row** (:mod:`repro.relational.engine`) — the semantics oracle;
* **columnar** (:mod:`repro.relational.columnar`) — per-column Python lists,
  per-row :class:`RowProvenance` objects;
* **vector** (this module) — typed ``array`` column vectors with
  dictionary-encoded strings, selector ``bytes``, and **bitset provenance
  masks** (:mod:`repro.provenance.masks`) instead of per-row objects.

The fast path is a *planner*, not a separate engine: ``try_vector_core``
inspects one SELECT core and either executes it end to end — scan→filter→
project and join→filter→project→group-aggregate fused into single passes —
or returns ``None``, in which case ``columnar._run_core`` proceeds exactly
as before. Eligibility is conservative:

* every join is INNER and every referenced relation is a base table
  (view bodies get their own shot when the resolver recurses);
* the core ends in a projection or an aggregation (so the output
  where-provenance key set is the alias list, which the mask decoder
  rebuilds exactly);
* no HAVING without GROUP BY (the reference raises mid-pipeline there).

Everything observable — values, row order, schema, why-lineage, per-cell
where-provenance, and the exception type/message on malformed queries — is
identical to the reference engines; the differential suite enforces it.

Error-surfacing order mirrors ``columnar._run_core``: join frames validate
in join order, then the WHERE predicate (unknown-column check before
evaluation), then the aggregate schema, then HAVING, then the projection
list. Probe/gather phases cannot raise, so pre-validating all join frames
before probing surfaces the same exception the interleaved reference would.
"""

from __future__ import annotations

import os
import weakref
from array import array
from itertools import compress
from typing import Any, NamedTuple, Sequence

from repro.errors import QueryError
from repro.provenance.masks import (
    LeafContribution,
    MaskProvenance,
    mask_from_selector,
)
from repro.relational.algebra import (
    AGGREGATE_FUNCTIONS,
    aggregate_output_schema,
    join_frame,
    project_plan,
)
from repro.relational.catalog import Catalog
from repro.relational.expressions import Col, Expr
from repro.relational.query import Query
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import ColumnType

__all__ = [
    "VectorTable",
    "VectorResult",
    "try_vector_core",
    "vector_table",
    "set_vector_enabled",
]

#: Kill switch: ``REPRO_VECTOR=0`` (or :func:`set_vector_enabled`) forces the
#: object-columnar operators, isolating the tiers for benchmarks and for the
#: CI engine-mode matrix. On by default — the fast path is semantics-neutral.
_ENABLED = os.environ.get("REPRO_VECTOR", "1").lower() not in ("0", "off", "false")


def set_vector_enabled(enabled: bool) -> bool:
    """Toggle the vector fast path; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous

#: Dictionary-encoded columns with at most this many distinct values get a
#: one-byte code vector (code+1; NULL=0), unlocking the ``bytes.translate``
#: group-by kernel. 254 keeps code 255 free and 0 reserved for NULL.
MAX_BYTE_VOCAB = 254


class VectorResult(NamedTuple):
    """What a fused kernel hands back to ``columnar._run_core``.

    A plain bundle (not a ``ColumnarTable``) so this module never imports
    :mod:`repro.relational.columnar`, which imports it.
    """

    name: str
    schema: Schema
    columns: list[Sequence[Any]]
    provenance: MaskProvenance


# ---------------------------------------------------------------------------
# Typed column storage
# ---------------------------------------------------------------------------


class VectorTable:
    """A base table re-encoded as typed column vectors.

    Storage per column type:

    * INT → ``array('q')`` (falls back to an object list on NULLs or
      >64-bit values);
    * FLOAT → ``array('d')`` (object list on NULLs);
    * STRING → dictionary encoding: ``array('i')`` codes (−1 = NULL) plus a
      vocabulary list, and — for vocabularies of ≤ :data:`MAX_BYTE_VOCAB` —
      a cached one-byte code ``bytes`` used by the translate-based GROUP BY;
    * BOOL/DATE → object list (small domains, rarely hot).

    ``values(i)`` returns a sequence of *decoded* Python values, cached per
    column: kernels gather, probe, and evaluate predicates over it, while
    the typed vectors remain the canonical compact storage.
    """

    __slots__ = ("n", "schema", "kinds", "vectors", "_values", "_codes")

    def __init__(self, table: Table) -> None:
        self.n = len(table.rows)
        self.schema = table.schema
        if table.rows:
            cols: list[tuple[Any, ...]] = list(zip(*table.rows))
        else:
            cols = [() for _ in table.schema]
        self.kinds: list[str] = []
        self.vectors: list[Any] = []
        for col, spec in zip(cols, table.schema):
            kind, vec = _build_vector(col, spec.ctype)
            self.kinds.append(kind)
            self.vectors.append(vec)
        self._values: dict[int, Sequence[Any]] = {}
        self._codes: dict[int, tuple[bytes, list[str]] | None] = {}

    def values(self, i: int) -> Sequence[Any]:
        """Column ``i`` as a sequence of Python values (decoded, cached)."""
        v = self._values.get(i)
        if v is not None:
            return v
        kind = self.kinds[i]
        vec = self.vectors[i]
        if kind == "dict":
            codes, vocab = vec
            # codes use -1 for NULL; `vocab + [None]` makes -1 index None.
            lut = vocab + [None]
            v = list(map(lut.__getitem__, codes))
        else:  # "i64" / "f64" arrays and object lists are value sequences.
            v = vec
        self._values[i] = v
        return v

    def codes_bytes(self, i: int) -> tuple[bytes, list[str]] | None:
        """One-byte codes (code+1, NULL=0) + vocab, or None if inapplicable."""
        out = self._codes.get(i, _MISSING)
        if out is not _MISSING:
            return out
        if self.kinds[i] != "dict":
            self._codes[i] = None
            return None
        codes, vocab = self.vectors[i]
        if len(vocab) > MAX_BYTE_VOCAB:
            self._codes[i] = None
            return None
        cb = bytes(map((1).__add__, codes))
        self._codes[i] = result = (cb, vocab)
        return result


_MISSING: Any = object()


def _build_vector(col: Sequence[Any], ctype: ColumnType) -> tuple[str, Any]:
    if ctype is ColumnType.INT:
        try:
            return "i64", array("q", col)
        except (TypeError, OverflowError):
            return "obj", list(col)
    if ctype is ColumnType.FLOAT:
        try:
            return "f64", array("d", col)
        except TypeError:
            return "obj", list(col)
    if ctype is ColumnType.STRING:
        codes = array("i")
        append = codes.append
        vocab: list[str] = []
        lut: dict[str, int] = {}
        for v in col:
            if v is None:
                append(-1)
            else:
                c = lut.get(v)
                if c is None:
                    c = lut[v] = len(vocab)
                    vocab.append(v)
                append(c)
        return "dict", (codes, vocab)
    return "obj", list(col)


# Vectorized base tables are cached per (identity, data_version) exactly like
# columnar's transpose cache; values are token-checked so a mutated table
# re-encodes.
_vectorized: "weakref.WeakKeyDictionary[Table, tuple[int, int, VectorTable]]"
_vectorized = weakref.WeakKeyDictionary()


def vector_table(table: Table) -> VectorTable:
    """The cached :class:`VectorTable` encoding of a base table."""
    cached = _vectorized.get(table)
    token = (table.data_version, len(table.rows))
    if cached is not None and cached[:2] == token:
        return cached[2]
    vt = VectorTable(table)
    try:
        _vectorized[table] = (*token, vt)
    except TypeError:  # pragma: no cover - non-weakrefable Table subclass
        pass
    return vt


# ---------------------------------------------------------------------------
# Bit/byte helpers
# ---------------------------------------------------------------------------

_ONE_HOT: list[bytes | None] = [None] * 256


def _one_hot(code: int) -> bytes:
    """Translate table mapping byte ``code`` → 1 and every other byte → 0."""
    t = _ONE_HOT[code]
    if t is None:
        t = _ONE_HOT[code] = bytes(1 if b == code else 0 for b in range(256))
    return t


def _pack_ordinals(ordinals: Any, size: int) -> int:
    """Bitset of ``ordinals`` (each < ``size``), built bytewise."""
    ba = bytearray((size >> 3) + 1)
    for o in ordinals:
        ba[o >> 3] |= 1 << (o & 7)
    return int.from_bytes(ba, "little")


def _distinct_values(values: list[Any]) -> list[Any]:
    """First-occurrence dedup, value-equal to the reference list scan."""
    try:
        return list(dict.fromkeys(values))
    except TypeError:  # unhashable values: the reference O(n²) scan
        seen: list[Any] = []
        for v in values:
            if v not in seen:
                seen.append(v)
        return seen


# ---------------------------------------------------------------------------
# Execution frame
# ---------------------------------------------------------------------------


class _Frame:
    """Mutable state of one fused execution: which leaf rows are live.

    The relation is never materialized. It is represented as:

    * ``leaf_idx[i]`` — per leaf base table, either ``None`` (output row r
      IS leaf row r) or an ``array('q')`` mapping output row → leaf ordinal;
    * ``colmap`` — output column name → ``(leaf_index, source_column)``,
      collision-qualified the way :func:`join_frame` qualifies the schema;
    * a per-stage cache of gathered value vectors.
    """

    __slots__ = ("tables", "vts", "schema", "name", "n", "leaf_idx", "colmap", "_vcache")

    def __init__(self, table: Table) -> None:
        self.tables = [table]
        self.vts = [vector_table(table)]
        self.schema = table.schema
        self.name = table.name
        self.n = len(table.rows)
        self.leaf_idx: list[Any] = [None]
        self.colmap: dict[str, tuple[int, str]] = {
            c: (0, c) for c in table.schema.names
        }
        self._vcache: dict[str, Sequence[Any]] = {}

    # -- value access -------------------------------------------------------

    def values(self, out_name: str) -> Sequence[Any]:
        v = self._vcache.get(out_name)
        if v is None:
            leaf_i, src = self.colmap[out_name]
            vt = self.vts[leaf_i]
            base = vt.values(vt.schema.index_of(src))
            idx = self.leaf_idx[leaf_i]
            v = base if idx is None else list(map(base.__getitem__, idx))
            self._vcache[out_name] = v
        return v

    def group_bytes(self, out_name: str) -> tuple[bytes, list[str]] | None:
        """One-byte group codes of a column in current row space, if dict-
        encoded with a small vocabulary."""
        leaf_i, src = self.colmap[out_name]
        vt = self.vts[leaf_i]
        cb = vt.codes_bytes(vt.schema.index_of(src))
        if cb is None:
            return None
        codes, vocab = cb
        idx = self.leaf_idx[leaf_i]
        if idx is not None:
            codes = bytes(map(codes.__getitem__, idx))
        return codes, vocab

    # -- space transitions ----------------------------------------------------

    def apply_selector(self, selector: bytes) -> None:
        """Keep rows whose selector byte is 1 (a fused WHERE)."""
        n = self.n
        kept = selector.count(1)
        if kept == n:
            return
        for i, idx in enumerate(self.leaf_idx):
            if idx is None:
                self.leaf_idx[i] = array("q", compress(range(n), selector))
            else:
                self.leaf_idx[i] = array("q", compress(idx, selector))
        self._vcache = {
            k: list(compress(v, selector)) for k, v in self._vcache.items()
        }
        self.n = kept

    def apply_join(
        self,
        right: Table,
        out_li: list[int],
        out_rj: list[int],
        schema: Schema,
        collisions: set[str],
    ) -> None:
        """Adopt the probe result: gather left leaves, admit the right leaf."""
        for i, idx in enumerate(self.leaf_idx):
            if idx is None:
                self.leaf_idx[i] = array("q", out_li)
            else:
                self.leaf_idx[i] = array("q", map(idx.__getitem__, out_li))
        r = len(self.tables)
        self.tables.append(right)
        self.vts.append(vector_table(right))
        self.leaf_idx.append(array("q", out_rj))

        new_colmap: dict[str, tuple[int, str]] = {}
        for c in self.schema.names:
            out = f"{self.name}.{c}" if c in collisions else c
            new_colmap[out] = self.colmap[c]
        for c in right.schema.names:
            out = f"{right.name}.{c}" if c in collisions else c
            new_colmap[out] = (r, c)
        self.colmap = new_colmap
        self.schema = schema
        self.name = f"{self.name}_{right.name}"
        self.n = len(out_li)
        self._vcache = {}

    # -- provenance -----------------------------------------------------------

    def contributions(self) -> tuple[LeafContribution, ...]:
        return tuple(
            LeafContribution.identity()
            if idx is None
            else LeafContribution.from_indices(idx)
            for idx in self.leaf_idx
        )

    def leaves(self) -> tuple[Sequence[Any], ...]:
        return tuple(t.provenance for t in self.tables)


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------


def _probe_inner(
    left_keys: list[Sequence[Any]], right_keys: list[Sequence[Any]]
) -> tuple[list[int], list[int]]:
    """Hash-probe for an INNER join; same output order as ``columnar._probe``
    (left order, right-insertion order per key; NULL keys never match)."""
    out_li: list[int] = []
    out_rj: list[int] = []
    if len(right_keys) == 1:
        buckets: dict[Any, list[int]] = {}
        for j, key in enumerate(right_keys[0]):
            if key is None:
                continue
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [j]
            else:
                bucket.append(j)
        bucket_get = buckets.get
        for i, key in enumerate(left_keys[0]):
            if key is None:
                continue
            matches = bucket_get(key)
            if matches:
                out_li.extend([i] * len(matches))
                out_rj.extend(matches)
        return out_li, out_rj

    tbuckets: dict[tuple[Any, ...], list[int]] = {}
    for j, tkey in enumerate(zip(*right_keys)):
        if None in tkey:
            continue
        bucket = tbuckets.get(tkey)
        if bucket is None:
            tbuckets[tkey] = [j]
        else:
            bucket.append(j)
    tbucket_get = tbuckets.get
    for i, tkey in enumerate(zip(*left_keys)):
        if None in tkey:
            continue
        matches = tbucket_get(tkey)
        if matches:
            out_li.extend([i] * len(matches))
            out_rj.extend(matches)
    return out_li, out_rj


# Folds every nonzero byte to 1 so a packed flag vector becomes a strict
# 0/1 selector (nonzero ⟺ truthy holds for ints 0..255 and bools).
_SELECTOR_FOLD = bytes([0]) + bytes([1]) * 255


def _where_selector(frame: _Frame, predicate: Expr) -> bytes:
    """Validate + evaluate WHERE into a 0/1 selector (reference polarity:
    UNKNOWN and falsy exclude). Error messages match ``columnar``."""
    missing = predicate.columns() - set(frame.schema.names)
    if missing:
        raise QueryError(
            f"predicate references unknown columns {sorted(missing)}"
        )
    env = {c: frame.values(c) for c in predicate.columns()}
    flags = predicate.evaluate_batch(env, frame.n)
    try:
        # bool is an int subclass, so an all-bool flag vector packs through
        # bytes() in a single C pass; translate folds any truthy small int
        # to 1 so the selector stays strictly 0/1. None (UNKNOWN) or values
        # outside a byte raise and take the per-element path.
        return bytes(flags).translate(_SELECTOR_FOLD)
    except (TypeError, ValueError):
        return bytes(map(bool, flags))


def _project_vec(frame: _Frame, select: list[Any]) -> VectorResult:
    """Fused terminal projection over the current frame."""
    schema, extractors = project_plan(frame.schema, select)
    needed: set[str] = set()
    for _, expr, _ in extractors:
        needed |= expr.columns()
    env = {c: frame.values(c) for c in needed if c in frame.colmap}

    out_columns: list[Sequence[Any]] = []
    origins: list[tuple[str, tuple[tuple[int, str], ...]]] = []
    for alias, expr, is_copy in extractors:
        if is_copy:
            assert isinstance(expr, Col)
            out_columns.append(env[expr.name])
            origins.append((alias, (frame.colmap[expr.name],)))
        else:
            out_columns.append(expr.evaluate_batch(env, frame.n))
            pairs = dict.fromkeys(
                frame.colmap[c] for c in expr.columns()
            )
            origins.append((alias, tuple(pairs)))

    provenance = MaskProvenance(
        frame.n, frame.leaves(), frame.contributions(), tuple(origins)
    )
    return VectorResult(frame.name, schema, out_columns, provenance)


def _aggregate_vec(frame: _Frame, query: Query) -> VectorResult:
    """Fused GROUP BY / aggregation (plus HAVING and SELECT-over-aggregate).

    Group membership is computed once; per-leaf contributing rows become
    bitset masks instead of per-group provenance dicts. Single dict-encoded
    group columns with small vocabularies take the byte kernel: group
    selectors via ``bytes.translate``, counts via ``bytes.count``, masks via
    ``mask_from_selector`` — all C-level single passes.
    """
    group_by = list(query.group_by)
    aggs = list(query.aggregates)
    schema_out = aggregate_output_schema(frame.schema, group_by, aggs)
    n = frame.n
    scalar_keys = len(group_by) == 1
    leaf_sizes = [vt.n for vt in frame.vts]

    # -- group discovery: (key, members | selector) in first-occurrence order
    group_keys: list[Any] = []
    group_members: list[list[int]] | None = None
    group_selectors: list[bytes] | None = None
    group_counts: list[int] = []

    byte_groups = frame.group_bytes(group_by[0]) if scalar_keys else None
    if byte_groups is not None:
        codes_b, vocab = byte_groups
        group_selectors = []
        for code in sorted(set(codes_b), key=codes_b.find):
            group_keys.append(None if code == 0 else vocab[code - 1])
            group_selectors.append(codes_b.translate(_one_hot(code)))
            group_counts.append(codes_b.count(code))
    else:
        groups: dict[Any, list[int]] = {}
        group_members = []
        if scalar_keys:
            for i, v in enumerate(frame.values(group_by[0])):
                members = groups.get(v)
                if members is None:
                    groups[v] = members = [i]
                    group_keys.append(v)
                    group_members.append(members)
                else:
                    members.append(i)
        elif group_by:
            key_vecs = [frame.values(g) for g in group_by]
            for i, key in enumerate(zip(*key_vecs)):
                members = groups.get(key)
                if members is None:
                    groups[key] = members = [i]
                    group_keys.append(key)
                    group_members.append(members)
                else:
                    members.append(i)
        else:
            group_keys.append(())
            group_members.append(list(range(n)))
        group_counts = [len(m) for m in group_members]

    n_groups = len(group_keys)

    # -- aggregate values (same AGGREGATE_FUNCTIONS as the reference)
    agg_vecs = {
        spec.column: frame.values(spec.column)
        for spec in aggs
        if spec.column is not None
    }
    out_rows: list[tuple[Any, ...]] = []
    for g in range(n_groups):
        key = group_keys[g]
        values = [key] if scalar_keys else list(key)
        if group_selectors is not None:
            sel = group_selectors[g]
            member_values = {
                col: list(compress(vec, sel)) for col, vec in agg_vecs.items()
            }
        else:
            members = group_members[g]  # type: ignore[index]
            member_values = {
                col: list(map(vec.__getitem__, members))
                for col, vec in agg_vecs.items()
            }
        for spec in aggs:
            if spec.column is None:
                col_values: list[Any] = [1] * group_counts[g]
            else:
                col_values = member_values[spec.column]
            if spec.distinct:
                col_values = _distinct_values(col_values)
            values.append(AGGREGATE_FUNCTIONS[spec.func](col_values))
        out_rows.append(tuple(values))

    # -- per-leaf contribution masks
    leaf_masks: list[list[int]] = [[] for _ in frame.vts]
    for g in range(n_groups):
        for li, idx in enumerate(frame.leaf_idx):
            if group_selectors is not None:
                sel = group_selectors[g]
                if idx is None:
                    mask = mask_from_selector(sel)
                else:
                    mask = _pack_ordinals(compress(idx, sel), leaf_sizes[li])
            else:
                members = group_members[g]  # type: ignore[index]
                if idx is None:
                    mask = _pack_ordinals(members, n or 1)
                else:
                    mask = _pack_ordinals(
                        map(idx.__getitem__, members), leaf_sizes[li]
                    )
            leaf_masks[li].append(mask)

    # Output alias → contributing (leaf, source column) pairs.
    agg_origins: dict[str, tuple[tuple[int, str], ...]] = {}
    for g_col in group_by:
        agg_origins[g_col] = (frame.colmap[g_col],)
    for spec in aggs:
        agg_origins[spec.alias] = (
            (frame.colmap[spec.column],) if spec.column is not None else ()
        )

    # -- HAVING over the (small) aggregate output
    if query.having is not None:
        missing = query.having.columns() - set(schema_out.names)
        if missing:
            raise QueryError(
                f"predicate references unknown columns {sorted(missing)}"
            )
        if out_rows:
            have_cols = list(zip(*out_rows))
        else:
            have_cols = [() for _ in schema_out.names]
        have_env = dict(zip(schema_out.names, have_cols))
        flags = list(
            map(bool, query.having.evaluate_batch(have_env, len(out_rows)))
        )
        out_rows = list(compress(out_rows, flags))
        leaf_masks = [list(compress(masks, flags)) for masks in leaf_masks]
        n_groups = len(out_rows)

    # -- SELECT over the aggregate output
    if query.select:
        sp_schema, extractors = project_plan(schema_out, list(query.select))
        if out_rows:
            cur_cols = list(zip(*out_rows))
        else:
            cur_cols = [() for _ in schema_out.names]
        env = dict(zip(schema_out.names, cur_cols))
        out_columns: list[Sequence[Any]] = []
        origins: list[tuple[str, tuple[tuple[int, str], ...]]] = []
        for alias, expr, is_copy in extractors:
            if is_copy:
                assert isinstance(expr, Col)
                out_columns.append(list(env[expr.name]))
                origins.append((alias, agg_origins[expr.name]))
            else:
                out_columns.append(expr.evaluate_batch(env, n_groups))
                pairs = dict.fromkeys(
                    pair
                    for c in expr.columns()
                    for pair in agg_origins[c]
                )
                origins.append((alias, tuple(pairs)))
        schema_final = sp_schema
    else:
        if out_rows:
            out_columns = [list(col) for col in zip(*out_rows)]
        else:
            out_columns = [[] for _ in schema_out.names]
        origins = [(a, agg_origins[a]) for a in schema_out.names]
        schema_final = schema_out

    contribs = tuple(
        LeafContribution.from_masks(masks) for masks in leaf_masks
    )
    provenance = MaskProvenance(
        n_groups, frame.leaves(), contribs, tuple(origins)
    )
    return VectorResult(frame.name, schema_final, out_columns, provenance)


# ---------------------------------------------------------------------------
# Planner / entry point
# ---------------------------------------------------------------------------


def try_vector_core(query: Query, catalog: Catalog) -> VectorResult | None:
    """Execute one SELECT core on the vector fast path, or return ``None``.

    Called by ``columnar._run_core`` after select-consistency validation;
    set operations, ORDER BY, LIMIT, and DISTINCT stay with the caller.
    """
    # -- shape eligibility (cheap, no side effects)
    if not _ENABLED:
        return None
    if query.having is not None and not query.is_aggregate:
        return None  # the reference raises mid-pipeline; let it.
    if not query.select and not query.is_aggregate:
        return None  # bare scans pass input where-dicts through unchanged.
    for clause in query.joins:
        if clause.how != "inner":
            return None
    names = [query.source] + [clause.table for clause in query.joins]
    tables: list[Table] = []
    for nm in names:
        if not catalog.is_table(nm):
            return None  # views/unknowns take the recursive resolver path.
        tables.append(catalog.table(nm))

    # -- join frame pre-pass: validation errors here are exactly the errors
    # the reference raises (probes can't raise), and residual duplicate
    # names (self-joins) disqualify the fast path before any probing work.
    frames = []
    cur_schema, cur_name = tables[0].schema, tables[0].name
    for clause, right in zip(query.joins, tables[1:]):
        schema, collisions, lk, rk = join_frame(
            cur_schema, right.schema, cur_name, right.name, clause.on, clause.how
        )
        frames.append((schema, collisions, lk, rk))
        if len(set(schema.names)) != len(schema.names):
            return None
        cur_schema, cur_name = schema, f"{cur_name}_{right.name}"

    frame = _Frame(tables[0])
    for (schema, collisions, lk, rk), right in zip(frames, tables[1:]):
        left_key_names = [frame.schema.names[k] for k in lk]
        right_vt = vector_table(right)
        left_keys = [frame.values(c) for c in left_key_names]
        right_keys = [right_vt.values(k) for k in rk]
        out_li, out_rj = _probe_inner(left_keys, right_keys)
        frame.apply_join(right, out_li, out_rj, schema, collisions)

    if query.where is not None:
        frame.apply_selector(_where_selector(frame, query.where))

    if query.is_aggregate:
        return _aggregate_vec(frame, query)
    return _project_vec(frame, list(query.select))
