"""Column types and value coercion for the in-memory relational engine.

The engine supports a small, closed set of scalar types sufficient for the
paper's healthcare/business-intelligence scenario: strings, integers, floats,
booleans, calendar dates, and time-granular datetimes. ``None`` represents
SQL NULL for nullable columns.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any

from repro.errors import TypeMismatchError

__all__ = ["ColumnType", "coerce_value", "check_value", "parse_date"]


class ColumnType(enum.Enum):
    """Scalar types supported by the engine."""

    STRING = "string"
    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    DATE = "date"
    DATETIME = "datetime"

    def python_types(self) -> tuple[type, ...]:
        """Python classes accepted for this column type."""
        return _PYTHON_TYPES[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_PYTHON_TYPES: dict[ColumnType, tuple[type, ...]] = {
    ColumnType.STRING: (str,),
    ColumnType.INT: (int,),
    ColumnType.FLOAT: (float, int),
    ColumnType.BOOL: (bool,),
    ColumnType.DATE: (datetime.date,),
    ColumnType.DATETIME: (datetime.datetime,),
}

_DATE_FORMATS = ("%Y-%m-%d", "%d/%m/%Y")


def parse_date(text: str) -> datetime.date:
    """Parse a date from ISO (``2007-02-12``) or paper-style (``12/02/2007``).

    The paper's figures write dates as ``dd/mm/yyyy``; the generator and the
    SQL parser accept both.
    """
    for fmt in _DATE_FORMATS:
        try:
            return datetime.datetime.strptime(text, fmt).date()
        except ValueError:
            continue
    raise TypeMismatchError(f"cannot parse date from {text!r}")


def coerce_value(value: Any, ctype: ColumnType) -> Any:
    """Coerce ``value`` to ``ctype``, raising :class:`TypeMismatchError`.

    ``None`` passes through (nullability is checked at the schema layer).
    Strings are parsed for INT/FLOAT/BOOL/DATE columns, ints are widened for
    FLOAT columns; everything else must already match.
    """
    if value is None:
        return None
    if ctype is ColumnType.BOOL:
        # bool is a subclass of int; handle it before INT to avoid silently
        # storing True as 1 in integer columns and vice versa.
        if isinstance(value, bool):
            return value
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "yes", "1"):
                return True
            if lowered in ("false", "no", "0"):
                return False
        raise TypeMismatchError(f"cannot coerce {value!r} to BOOL")
    if isinstance(value, bool):
        raise TypeMismatchError(f"boolean {value!r} not allowed in {ctype} column")
    if ctype is ColumnType.STRING:
        if isinstance(value, str):
            return value
        raise TypeMismatchError(f"cannot coerce {value!r} to STRING")
    if ctype is ColumnType.INT:
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError as exc:
                raise TypeMismatchError(f"cannot coerce {value!r} to INT") from exc
        raise TypeMismatchError(f"cannot coerce {value!r} to INT")
    if ctype is ColumnType.FLOAT:
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError as exc:
                raise TypeMismatchError(f"cannot coerce {value!r} to FLOAT") from exc
        raise TypeMismatchError(f"cannot coerce {value!r} to FLOAT")
    if ctype is ColumnType.DATE:
        if isinstance(value, datetime.datetime):
            return value.date()
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            return parse_date(value)
        raise TypeMismatchError(f"cannot coerce {value!r} to DATE")
    if ctype is ColumnType.DATETIME:
        if isinstance(value, datetime.datetime):
            return value
        if isinstance(value, datetime.date):
            return datetime.datetime(value.year, value.month, value.day)
        if isinstance(value, str):
            try:
                return datetime.datetime.fromisoformat(value)
            except ValueError as exc:
                raise TypeMismatchError(
                    f"cannot coerce {value!r} to DATETIME"
                ) from exc
        raise TypeMismatchError(f"cannot coerce {value!r} to DATETIME")
    raise TypeMismatchError(f"unknown column type {ctype!r}")  # pragma: no cover


def check_value(value: Any, ctype: ColumnType, *, nullable: bool = True) -> None:
    """Validate that ``value`` is already a legal instance of ``ctype``."""
    if value is None:
        if not nullable:
            raise TypeMismatchError(f"NULL not allowed in non-nullable {ctype} column")
        return
    if ctype is not ColumnType.BOOL and isinstance(value, bool):
        raise TypeMismatchError(f"boolean {value!r} not allowed in {ctype} column")
    if not isinstance(value, ctype.python_types()):
        raise TypeMismatchError(f"{value!r} is not a valid {ctype} value")
