"""Scalar and boolean expression AST evaluated over row dictionaries.

Expressions appear in selection predicates, computed projections, PLA
intensional conditions, and VPD rewrite predicates. The AST is deliberately
small and closed so the containment checker (:mod:`repro.core.containment`)
can reason about predicate implication.

Boolean evaluation follows SQL's **three-valued logic**: comparisons with a
NULL operand yield UNKNOWN (Python ``None``), and AND/OR/NOT follow the
Kleene tables. Filters keep a row only when the predicate is definitely
True, so UNKNOWN excludes — the safe polarity for privacy conditions:
``NOT (disease = 'HIV')`` does *not* disclose a row whose disease is
unrecorded.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.errors import QueryError

__all__ = [
    "Expr",
    "Col",
    "Lit",
    "Comparison",
    "And",
    "Or",
    "Not",
    "InList",
    "IsNull",
    "Arith",
    "Case",
    "col",
    "lit",
    "conjuncts",
    "disjuncts",
]


class Expr:
    """Base class for all expressions."""

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        raise NotImplementedError

    def evaluate_batch(self, cols: Mapping[str, Sequence[Any]], n: int) -> list[Any]:
        """Evaluate over ``n`` rows stored column-wise; returns ``n`` values.

        ``cols`` maps column name → column vector (all of length ``n``).
        The built-in nodes override this with vectorized loops; this default
        reconstructs row dicts so third-party :class:`Expr` subclasses keep
        working on the columnar path without writing a batch kernel.
        """
        names = list(cols)
        vectors = [cols[name] for name in names]
        if not vectors:
            return [self.evaluate({}) for _ in range(n)]
        return [
            self.evaluate(dict(zip(names, values))) for values in zip(*vectors)
        ]

    def columns(self) -> frozenset[str]:
        """Names of all columns referenced by this expression."""
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, str]) -> "Expr":
        """A copy with column names rewritten per ``mapping`` (old→new)."""
        raise NotImplementedError

    # Boolean combinators, so predicates compose fluently:
    def __and__(self, other: "Expr") -> "And":
        return And(self, other)

    def __or__(self, other: "Expr") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class Col(Expr):
    """Reference to a column by name."""

    name: str

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise QueryError(f"row has no column {self.name!r}") from None

    def evaluate_batch(self, cols: Mapping[str, Sequence[Any]], n: int) -> list[Any]:
        try:
            return cols[self.name]  # type: ignore[return-value]  # callers never mutate
        except KeyError:
            raise QueryError(f"row has no column {self.name!r}") from None

    def columns(self) -> frozenset[str]:
        return frozenset([self.name])

    def substitute(self, mapping: Mapping[str, str]) -> "Col":
        return Col(mapping.get(self.name, self.name))

    # Comparison builders so ``col("age") >= lit(18)`` reads naturally.
    def __eq__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison("=", self, _as_expr(other))

    def __ne__(self, other: object) -> "Comparison":  # type: ignore[override]
        return Comparison("!=", self, _as_expr(other))

    def __lt__(self, other: object) -> "Comparison":
        return Comparison("<", self, _as_expr(other))

    def __le__(self, other: object) -> "Comparison":
        return Comparison("<=", self, _as_expr(other))

    def __gt__(self, other: object) -> "Comparison":
        return Comparison(">", self, _as_expr(other))

    def __ge__(self, other: object) -> "Comparison":
        return Comparison(">=", self, _as_expr(other))

    def __hash__(self) -> int:
        return hash(("Col", self.name))

    def is_in(self, values: Any) -> "InList":
        return InList(self, tuple(values))

    def is_null(self) -> "IsNull":
        return IsNull(self)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Lit(Expr):
    """A literal constant."""

    value: Any

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return self.value

    def evaluate_batch(self, cols: Mapping[str, Sequence[Any]], n: int) -> list[Any]:
        return [self.value] * n

    def columns(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, mapping: Mapping[str, str]) -> "Lit":
        return self

    def __str__(self) -> str:
        return repr(self.value)


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

# Batch variants with the comparison inlined: one bytecode COMPARE_OP per
# element is measurably cheaper than a call through the operator module
# when the vector is a million rows long.
_BATCH_COMPARATORS: dict[str, Callable[[Sequence[Any], Any], list[Any]]] = {
    "=": lambda vec, c: [None if v is None else v == c for v in vec],
    "!=": lambda vec, c: [None if v is None else v != c for v in vec],
    "<": lambda vec, c: [None if v is None else v < c for v in vec],
    "<=": lambda vec, c: [None if v is None else v <= c for v in vec],
    ">": lambda vec, c: [None if v is None else v > c for v in vec],
    ">=": lambda vec, c: [None if v is None else v >= c for v in vec],
}

NEGATED_OP = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
FLIPPED_OP = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _ast_eq(a: Any, b: Any) -> bool:
    """Structural equality of sub-expressions.

    ``Col.__eq__`` is overloaded as the DSL's comparison builder (it returns
    a Comparison, which is truthy), so composite nodes must NOT compare
    children with ``==`` — they use this helper, and define their own
    ``__eq__`` in terms of it.
    """
    if isinstance(a, Col) or isinstance(b, Col):
        return isinstance(a, Col) and isinstance(b, Col) and a.name == b.name
    return a == b


class _StructuralEq:
    """Mixin: field-wise structural equality + a stable hash.

    Used by every composite expression node. ``__eq__`` compares the
    dataclass fields via :func:`_ast_eq`; the hash is derived from the
    node's rendering, which is injective enough for AST workloads.
    """

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        from dataclasses import fields

        for spec in fields(self):  # type: ignore[arg-type]
            mine = getattr(self, spec.name)
            theirs = getattr(other, spec.name)
            if isinstance(mine, tuple) and isinstance(theirs, tuple):
                if len(mine) != len(theirs) or not all(
                    _ast_eq(x, y) for x, y in zip(mine, theirs)
                ):
                    return False
            elif not _ast_eq(mine, theirs):
                return False
        return True

    def __hash__(self) -> int:
        return hash((type(self).__name__, str(self)))


@dataclass(frozen=True, eq=False)
class Comparison(_StructuralEq, Expr):
    """A binary comparison; NULL on either side yields UNKNOWN (``None``)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: Mapping[str, Any]) -> bool | None:
        lhs = self.left.evaluate(row)
        rhs = self.right.evaluate(row)
        if lhs is None or rhs is None:
            return None
        try:
            return _COMPARATORS[self.op](lhs, rhs)
        except TypeError as exc:
            raise QueryError(
                f"cannot compare {lhs!r} {self.op} {rhs!r}"
            ) from exc

    def evaluate_batch(
        self, cols: Mapping[str, Sequence[Any]], n: int
    ) -> list[Any]:
        op = _COMPARATORS[self.op]
        # col-op-lit is the overwhelmingly common shape; avoid materializing
        # a constant vector for the literal side.
        if isinstance(self.right, Lit):
            rhs = self.right.value
            lhs_vec = self.left.evaluate_batch(cols, n)
            if rhs is None:
                return [None] * n
            try:
                return _BATCH_COMPARATORS[self.op](lhs_vec, rhs)
            except TypeError:
                for v in lhs_vec:
                    if v is None:
                        continue
                    try:
                        op(v, rhs)
                    except TypeError as exc:
                        raise QueryError(
                            f"cannot compare {v!r} {self.op} {rhs!r}"
                        ) from exc
        lhs_vec = self.left.evaluate_batch(cols, n)
        rhs_vec = self.right.evaluate_batch(cols, n)
        try:
            return [
                None if (a is None or b is None) else op(a, b)
                for a, b in zip(lhs_vec, rhs_vec)
            ]
        except TypeError:
            for a, b in zip(lhs_vec, rhs_vec):
                if a is None or b is None:
                    continue
                try:
                    op(a, b)
                except TypeError as exc:
                    raise QueryError(
                        f"cannot compare {a!r} {self.op} {b!r}"
                    ) from exc
            raise  # pragma: no cover - unreachable: the culprit re-raises

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def substitute(self, mapping: Mapping[str, str]) -> "Comparison":
        return Comparison(
            self.op, self.left.substitute(mapping), self.right.substitute(mapping)
        )

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


def _kleene(value: Any) -> bool | None:
    """Normalize an evaluated operand to Kleene True/False/UNKNOWN."""
    if value is None:
        return None
    return bool(value)


@dataclass(frozen=True, eq=False)
class And(_StructuralEq, Expr):
    left: Expr
    right: Expr

    def evaluate(self, row: Mapping[str, Any]) -> bool | None:
        lhs = _kleene(self.left.evaluate(row))
        rhs = _kleene(self.right.evaluate(row))
        if lhs is False or rhs is False:
            return False
        if lhs is None or rhs is None:
            return None
        return True

    def evaluate_batch(
        self, cols: Mapping[str, Sequence[Any]], n: int
    ) -> list[Any]:
        lhs_vec = self.left.evaluate_batch(cols, n)
        rhs_vec = self.right.evaluate_batch(cols, n)
        out: list[Any] = []
        append = out.append
        for a, b in zip(lhs_vec, rhs_vec):
            a = _kleene(a)
            b = _kleene(b)
            if a is False or b is False:
                append(False)
            elif a is None or b is None:
                append(None)
            else:
                append(True)
        return out

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def substitute(self, mapping: Mapping[str, str]) -> "And":
        return And(self.left.substitute(mapping), self.right.substitute(mapping))

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True, eq=False)
class Or(_StructuralEq, Expr):
    left: Expr
    right: Expr

    def evaluate(self, row: Mapping[str, Any]) -> bool | None:
        lhs = _kleene(self.left.evaluate(row))
        rhs = _kleene(self.right.evaluate(row))
        if lhs is True or rhs is True:
            return True
        if lhs is None or rhs is None:
            return None
        return False

    def evaluate_batch(
        self, cols: Mapping[str, Sequence[Any]], n: int
    ) -> list[Any]:
        lhs_vec = self.left.evaluate_batch(cols, n)
        rhs_vec = self.right.evaluate_batch(cols, n)
        out: list[Any] = []
        append = out.append
        for a, b in zip(lhs_vec, rhs_vec):
            a = _kleene(a)
            b = _kleene(b)
            if a is True or b is True:
                append(True)
            elif a is None or b is None:
                append(None)
            else:
                append(False)
        return out

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def substitute(self, mapping: Mapping[str, str]) -> "Or":
        return Or(self.left.substitute(mapping), self.right.substitute(mapping))

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True, eq=False)
class Not(_StructuralEq, Expr):
    inner: Expr

    def evaluate(self, row: Mapping[str, Any]) -> bool | None:
        value = _kleene(self.inner.evaluate(row))
        if value is None:
            return None
        return not value

    def evaluate_batch(
        self, cols: Mapping[str, Sequence[Any]], n: int
    ) -> list[Any]:
        return [
            None if v is None else not v
            for v in map(_kleene, self.inner.evaluate_batch(cols, n))
        ]

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def substitute(self, mapping: Mapping[str, str]) -> "Not":
        return Not(self.inner.substitute(mapping))

    def __str__(self) -> str:
        return f"NOT ({self.inner})"


@dataclass(frozen=True, eq=False)
class InList(_StructuralEq, Expr):
    """``expr IN (v1, v2, ...)`` over literal values."""

    target: Expr
    values: tuple[Any, ...]

    def evaluate(self, row: Mapping[str, Any]) -> bool | None:
        value = self.target.evaluate(row)
        if value is None:
            return None  # SQL: NULL IN (...) is UNKNOWN
        return value in self.values

    def evaluate_batch(
        self, cols: Mapping[str, Sequence[Any]], n: int
    ) -> list[Any]:
        vec = self.target.evaluate_batch(cols, n)
        try:
            members: Any = frozenset(self.values)
            return [None if v is None else v in members for v in vec]
        except TypeError:  # unhashable literal or value: linear membership
            return [None if v is None else v in self.values for v in vec]

    def columns(self) -> frozenset[str]:
        return self.target.columns()

    def substitute(self, mapping: Mapping[str, str]) -> "InList":
        return InList(self.target.substitute(mapping), self.values)

    def __str__(self) -> str:
        return f"{self.target} IN {self.values!r}"


@dataclass(frozen=True, eq=False)
class IsNull(_StructuralEq, Expr):
    target: Expr
    negated: bool = False

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        is_null = self.target.evaluate(row) is None
        return not is_null if self.negated else is_null

    def evaluate_batch(
        self, cols: Mapping[str, Sequence[Any]], n: int
    ) -> list[Any]:
        vec = self.target.evaluate_batch(cols, n)
        if self.negated:
            return [v is not None for v in vec]
        return [v is None for v in vec]

    def columns(self) -> frozenset[str]:
        return self.target.columns()

    def substitute(self, mapping: Mapping[str, str]) -> "IsNull":
        return IsNull(self.target.substitute(mapping), self.negated)

    def __str__(self) -> str:
        return f"{self.target} IS {'NOT ' if self.negated else ''}NULL"


_ARITH_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


@dataclass(frozen=True, eq=False)
class Arith(_StructuralEq, Expr):
    """Binary arithmetic; NULL-propagating."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _ARITH_OPS:
            raise QueryError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        lhs = self.left.evaluate(row)
        rhs = self.right.evaluate(row)
        if lhs is None or rhs is None:
            return None
        if self.op == "/" and rhs == 0:
            return None
        return _ARITH_OPS[self.op](lhs, rhs)

    def evaluate_batch(
        self, cols: Mapping[str, Sequence[Any]], n: int
    ) -> list[Any]:
        op = _ARITH_OPS[self.op]
        guard_zero = self.op == "/"
        lhs_vec = self.left.evaluate_batch(cols, n)
        rhs_vec = self.right.evaluate_batch(cols, n)
        out: list[Any] = []
        append = out.append
        for a, b in zip(lhs_vec, rhs_vec):
            if a is None or b is None or (guard_zero and b == 0):
                append(None)
            else:
                append(op(a, b))
        return out

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def substitute(self, mapping: Mapping[str, str]) -> "Arith":
        return Arith(
            self.op, self.left.substitute(mapping), self.right.substitute(mapping)
        )

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, eq=False)
class Case(_StructuralEq, Expr):
    """Searched ``CASE WHEN ... THEN ... [ELSE ...] END``.

    ``whens`` and ``thens`` are parallel tuples (kept flat rather than as
    pairs so :class:`_StructuralEq` compares each sub-expression through
    ``_ast_eq``). The first WHEN whose condition is *definitely* True under
    Kleene logic selects its THEN; UNKNOWN conditions fall through, and with
    no match the result is ``else_`` (NULL when absent) — exactly SQL's
    searched-CASE semantics. The simple form ``CASE x WHEN v ...`` is
    desugared to this node by the parser (``x = v`` conditions).
    """

    whens: tuple[Expr, ...]
    thens: tuple[Expr, ...]
    else_: Expr | None = None

    def __post_init__(self) -> None:
        if not self.whens or len(self.whens) != len(self.thens):
            raise QueryError(
                "CASE requires at least one WHEN and parallel WHEN/THEN lists"
            )

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        for when, then in zip(self.whens, self.thens):
            if _kleene(when.evaluate(row)) is True:
                return then.evaluate(row)
        if self.else_ is not None:
            return self.else_.evaluate(row)
        return None

    def evaluate_batch(
        self, cols: Mapping[str, Sequence[Any]], n: int
    ) -> list[Any]:
        # Eager arm evaluation, like And/Or batch kernels: every WHEN and
        # THEN vector is computed once, then each row picks its first
        # definitely-True arm.
        when_vecs = [w.evaluate_batch(cols, n) for w in self.whens]
        then_vecs = [t.evaluate_batch(cols, n) for t in self.thens]
        else_vec = (
            self.else_.evaluate_batch(cols, n)
            if self.else_ is not None
            else [None] * n
        )
        out: list[Any] = []
        append = out.append
        for i in range(n):
            for when_vec, then_vec in zip(when_vecs, then_vecs):
                if _kleene(when_vec[i]) is True:
                    append(then_vec[i])
                    break
            else:
                append(else_vec[i])
        return out

    def columns(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for expr in self.whens + self.thens:
            out |= expr.columns()
        if self.else_ is not None:
            out |= self.else_.columns()
        return out

    def substitute(self, mapping: Mapping[str, str]) -> "Case":
        return Case(
            tuple(w.substitute(mapping) for w in self.whens),
            tuple(t.substitute(mapping) for t in self.thens),
            None if self.else_ is None else self.else_.substitute(mapping),
        )

    def __str__(self) -> str:
        arms = " ".join(
            f"WHEN {w} THEN {t}" for w, t in zip(self.whens, self.thens)
        )
        tail = f" ELSE {self.else_}" if self.else_ is not None else ""
        return f"CASE {arms}{tail} END"


def col(name: str) -> Col:
    """Shorthand for :class:`Col`."""
    return Col(name)


def lit(value: Any) -> Lit:
    """Shorthand for :class:`Lit`."""
    return Lit(value)


def _as_expr(value: object) -> Expr:
    return value if isinstance(value, Expr) else Lit(value)


def conjuncts(expr: Expr | None) -> Iterator[Expr]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return
    if isinstance(expr, And):
        yield from conjuncts(expr.left)
        yield from conjuncts(expr.right)
    else:
        yield expr


def disjuncts(expr: Expr | None) -> Iterator[Expr]:
    """Flatten a predicate into its top-level OR-ed disjuncts."""
    if expr is None:
        return
    if isinstance(expr, Or):
        yield from disjuncts(expr.left)
        yield from disjuncts(expr.right)
    else:
        yield expr
