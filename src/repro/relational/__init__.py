"""In-memory relational engine with provenance propagation.

This is the substrate every other subsystem builds on: typed schemas, tables
whose rows carry why/where-provenance, a relational algebra, a logical query
AST with a fluent builder, views, a catalog, an executor, and a SQL-subset
parser.
"""

from repro.relational.algebra import (
    AggSpec,
    aggregate,
    distinct,
    extend,
    join,
    limit,
    order_by,
    project,
    rename,
    select,
    union,
)
from repro.relational.catalog import Catalog, View
from repro.relational.columnar import ColumnarTable, execute_columnar
from repro.relational.engine import Engine, execute, execute_row
from repro.relational.execconfig import (
    COLUMNAR,
    ROW,
    ExecutionConfig,
    get_default_config,
    set_default_config,
)
from repro.relational.io import dumps_csv, loads_csv, read_csv, write_csv
from repro.relational.plancache import PlanCache, default_plan_cache
from repro.relational.expressions import (
    And,
    Arith,
    Col,
    Comparison,
    Expr,
    InList,
    IsNull,
    Lit,
    Not,
    Or,
    col,
    conjuncts,
    lit,
)
from repro.relational.query import JoinClause, Query
from repro.relational.schema import Column, Schema
from repro.relational.sqlparser import parse_expression, parse_query
from repro.relational.table import CellRef, RowId, RowProvenance, Table, make_schema
from repro.relational.types import ColumnType, coerce_value, parse_date

__all__ = [
    "AggSpec",
    "And",
    "Arith",
    "COLUMNAR",
    "Catalog",
    "CellRef",
    "Col",
    "Column",
    "ColumnType",
    "ColumnarTable",
    "Comparison",
    "Engine",
    "ExecutionConfig",
    "Expr",
    "InList",
    "IsNull",
    "JoinClause",
    "Lit",
    "Not",
    "Or",
    "PlanCache",
    "Query",
    "ROW",
    "RowId",
    "RowProvenance",
    "Schema",
    "Table",
    "View",
    "aggregate",
    "coerce_value",
    "col",
    "conjuncts",
    "default_plan_cache",
    "distinct",
    "dumps_csv",
    "execute",
    "execute_columnar",
    "execute_row",
    "extend",
    "get_default_config",
    "set_default_config",
    "join",
    "limit",
    "lit",
    "loads_csv",
    "make_schema",
    "order_by",
    "parse_date",
    "parse_expression",
    "parse_query",
    "project",
    "read_csv",
    "rename",
    "select",
    "union",
    "write_csv",
]
