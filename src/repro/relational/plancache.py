"""Normalized-plan result cache for the executor.

Entries are keyed by ``(Query.fingerprint(), Catalog.state_token(query),
mode)``. The fingerprint normalizes commutative WHERE/HAVING conjunct order,
so syntactically different but plan-equivalent queries share an entry; the
state token folds in the catalog identity, its DDL generation, and the
``(data_version, row_count)`` of every base table the query transitively
reads — any insert or DDL change makes old keys unreachable, so a hit is
*always* sound. Catalog mutation hooks additionally evict eagerly so dead
generations don't linger until LRU pressure.

Cached values are immutable snapshots ``(name, schema, rows, provenance,
provider)``; every hit rebuilds a fresh :class:`Table`, so callers can never
corrupt the cache by mutating a result.

Concurrency: the executor uses the **reservation** protocol
(:meth:`PlanCache.begin` → :meth:`PlanCache.fetch` →
:meth:`PlanCache.commit`) rather than lookup-then-store. A reservation
captures the cache key *and* the invalidation generation before execution
starts; committing re-checks the generation, so a result computed against
pre-mutation state can never be stored under a post-mutation key. (The old
lookup/store pair recomputed the key at store time — under concurrency a
stale result could land under the fresh token.)
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cache import CacheStats, LRUCache
from repro.errors import CatalogError
from repro.obs import instrument
from repro.obs.trace import TRACER
from repro.relational.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.relational.catalog import Catalog
    from repro.relational.query import Query

__all__ = ["PlanCache", "PlanReservation", "default_plan_cache"]


@dataclass(frozen=True)
class PlanReservation:
    """Key + invalidation token captured before an execution begins.

    Holding one pins the catalog state the upcoming result will be computed
    against: the key embeds the state token observed at ``begin`` time and
    ``token`` is the cache generation at that instant. :meth:`PlanCache.commit`
    refuses the fill if any invalidation ran in between.
    """

    key: tuple
    token: int
    catalog: "Catalog"


class PlanCache:
    """LRU cache of executed query results, versioned by catalog state."""

    def __init__(self, maxsize: int = 256) -> None:
        self._cache = LRUCache(maxsize=maxsize)
        self._hooked_catalogs: set[int] = set()
        self._hook_lock = threading.Lock()

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def __len__(self) -> int:
        return len(self._cache)

    # -- keying -------------------------------------------------------------

    def _key(self, query: "Query", catalog: "Catalog", mode: str) -> tuple:
        return (query.fingerprint(), catalog.state_token(query), mode)

    def _ensure_hook(self, catalog: "Catalog") -> None:
        with self._hook_lock:
            if catalog.uid in self._hooked_catalogs:
                return
            self._hooked_catalogs.add(catalog.uid)
        catalog.add_mutation_hook(self._on_catalog_mutation)

    def _on_catalog_mutation(self, catalog: "Catalog", name: str) -> None:
        self.invalidate_catalog(catalog)

    # -- reservation protocol -------------------------------------------------

    def begin(
        self, query: "Query", catalog: "Catalog", mode: str
    ) -> PlanReservation | None:
        """Capture key + invalidation token for an execution starting *now*.

        Returns ``None`` when the query is not keyable (unresolvable relation
        chain); the executor then runs uncached and reports the error with
        query-level context.
        """
        # Hook before token capture: a mutation landing after this line must
        # bump the generation, or the eventual commit would fill stale.
        self._ensure_hook(catalog)
        token = self._cache.fill_token()
        try:
            key = self._key(query, catalog, mode)
        except CatalogError:
            return None
        return PlanReservation(key=key, token=token, catalog=catalog)

    def fetch(
        self, reservation: PlanReservation, *, name: str | None = None
    ) -> Table | None:
        """A fresh :class:`Table` rebuilt from the reserved key, or ``None``."""
        snap = self._cache.get(reservation.key)
        if TRACER.active():
            instrument.cache_lookup("plan", snap is not None)
        if snap is None:
            return None
        snap_name, schema, rows, provs, provider = snap
        return Table.derived(
            name if name is not None else snap_name,
            schema,
            rows,
            provs,
            provider=provider,
        )

    def commit(self, reservation: PlanReservation, result: Table) -> bool:
        """Fill the reserved key, unless an invalidation intervened.

        Returns True when the fill landed. A False return means a catalog
        mutation (or explicit clear) ran between ``begin`` and now; the
        result was computed against superseded state and is discarded
        (counted in ``stats.dropped_fills``).
        """
        self._ensure_hook(reservation.catalog)
        provenance = result.provenance
        if not getattr(provenance, "lazy_provenance", False):
            # Lazy (mask-encoded) provenance is immutable and shareable, so
            # it snapshots by reference; everything else is frozen to a tuple.
            provenance = tuple(provenance)
        snap = (
            result.name,
            result.schema,
            tuple(result.rows),
            provenance,
            result.provider,
        )
        return self._cache.put_if(reservation.key, snap, reservation.token)

    # -- legacy lookup/store protocol -----------------------------------------

    def lookup(
        self,
        query: "Query",
        catalog: "Catalog",
        mode: str,
        *,
        name: str | None = None,
    ) -> Table | None:
        """A fresh :class:`Table` rebuilt from a cached snapshot, or ``None``.

        Single-threaded convenience; concurrent callers should use the
        reservation protocol so key capture and fill are race-free.
        """
        reservation = self.begin(query, catalog, mode)
        if reservation is None:
            return None
        return self.fetch(reservation, name=name)

    def store(
        self, query: "Query", catalog: "Catalog", mode: str, result: Table
    ) -> None:
        """Snapshot ``result`` under the current catalog state (legacy path)."""
        reservation = self.begin(query, catalog, mode)
        if reservation is None:
            return
        self.commit(reservation, result)

    # -- invalidation -------------------------------------------------------

    def invalidate_catalog(self, catalog: "Catalog") -> int:
        """Evict every entry derived from ``catalog``; returns the count."""
        cat_uid = catalog.uid
        return self._cache.invalidate_where(lambda k: k[1][0] == cat_uid)

    def clear(self) -> int:
        return self._cache.clear()


_DEFAULT = PlanCache()


def default_plan_cache() -> PlanCache:
    """The process-wide plan cache used when a config names none."""
    return _DEFAULT
