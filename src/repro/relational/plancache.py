"""Normalized-plan result cache for the executor.

Entries are keyed by ``(Query.fingerprint(), Catalog.state_token(query),
mode)``. The fingerprint normalizes commutative WHERE/HAVING conjunct order,
so syntactically different but plan-equivalent queries share an entry; the
state token folds in the catalog identity, its DDL generation, and the
``(data_version, row_count)`` of every base table the query transitively
reads — any insert or DDL change makes old keys unreachable, so a hit is
*always* sound. Catalog mutation hooks additionally evict eagerly so dead
generations don't linger until LRU pressure.

Cached values are immutable snapshots ``(name, schema, rows, provenance,
provider)``; every hit rebuilds a fresh :class:`Table`, so callers can never
corrupt the cache by mutating a result.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cache import CacheStats, LRUCache
from repro.errors import CatalogError
from repro.obs import instrument
from repro.obs.trace import TRACER
from repro.relational.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.relational.catalog import Catalog
    from repro.relational.query import Query

__all__ = ["PlanCache", "default_plan_cache"]


class PlanCache:
    """LRU cache of executed query results, versioned by catalog state."""

    def __init__(self, maxsize: int = 256) -> None:
        self._cache = LRUCache(maxsize=maxsize)
        self._hooked_catalogs: set[int] = set()

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def __len__(self) -> int:
        return len(self._cache)

    # -- keying -------------------------------------------------------------

    def _key(self, query: "Query", catalog: "Catalog", mode: str) -> tuple:
        return (query.fingerprint(), catalog.state_token(query), mode)

    def _ensure_hook(self, catalog: "Catalog") -> None:
        if catalog.uid in self._hooked_catalogs:
            return
        self._hooked_catalogs.add(catalog.uid)
        catalog.add_mutation_hook(self._on_catalog_mutation)

    def _on_catalog_mutation(self, catalog: "Catalog", name: str) -> None:
        self.invalidate_catalog(catalog)

    # -- cache protocol -----------------------------------------------------

    def lookup(
        self,
        query: "Query",
        catalog: "Catalog",
        mode: str,
        *,
        name: str | None = None,
    ) -> Table | None:
        """A fresh :class:`Table` rebuilt from a cached snapshot, or ``None``."""
        try:
            key = self._key(query, catalog, mode)
        except CatalogError:
            # Unresolvable relation chain: not keyable. Fall through to the
            # executor, which reports the error with query-level context.
            return None
        snap = self._cache.get(key)
        if TRACER.active():
            instrument.cache_lookup("plan", snap is not None)
        if snap is None:
            return None
        snap_name, schema, rows, provs, provider = snap
        return Table.derived(
            name if name is not None else snap_name,
            schema,
            rows,
            provs,
            provider=provider,
        )

    def store(
        self, query: "Query", catalog: "Catalog", mode: str, result: Table
    ) -> None:
        """Snapshot ``result`` under the current catalog state."""
        try:
            key = self._key(query, catalog, mode)
        except CatalogError:
            return
        self._ensure_hook(catalog)
        snap = (
            result.name,
            result.schema,
            tuple(result.rows),
            tuple(result.provenance),
            result.provider,
        )
        self._cache.put(key, snap)

    # -- invalidation -------------------------------------------------------

    def invalidate_catalog(self, catalog: "Catalog") -> int:
        """Evict every entry derived from ``catalog``; returns the count."""
        cat_uid = catalog.uid
        return self._cache.invalidate_where(lambda k: k[1][0] == cat_uid)

    def clear(self) -> int:
        return self._cache.clear()


_DEFAULT = PlanCache()


def default_plan_cache() -> PlanCache:
    """The process-wide plan cache used when a config names none."""
    return _DEFAULT
