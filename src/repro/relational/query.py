"""Logical query AST with a fluent builder.

A :class:`Query` is a declarative SELECT-FROM-JOIN-WHERE-GROUP BY-HAVING-
ORDER BY-LIMIT block over named tables/views in a catalog. Queries are
immutable; builder methods return modified copies, so a base query can be
specialized safely (this is how VPD rewriting and meta-report derivation
work).

Evaluation order (matching SQL): FROM/JOIN → WHERE → GROUP BY/aggregates →
HAVING → SELECT projection → DISTINCT → ORDER BY → LIMIT.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence, Union

from repro.errors import QueryError
from repro.relational.algebra import AggSpec
from repro.relational.expressions import And, Expr, conjuncts

__all__ = ["Query", "JoinClause", "SetOpClause", "SelectItem"]

SelectItem = Union[str, tuple[str, Expr]]


@dataclass(frozen=True)
class JoinClause:
    """One JOIN step: join the named table/view on equality pairs.

    ``how="cross"`` takes no equality pairs (Cartesian product); every
    other join type requires at least one. The ingestion front-end uses
    1-row cross joins to splice hoisted scalar subqueries into predicates.
    """

    table: str
    on: tuple[tuple[str, str], ...]
    how: str = "inner"

    def __post_init__(self) -> None:
        if self.how not in ("inner", "left", "right", "full", "cross"):
            raise QueryError(f"unsupported join type {self.how!r}")
        if self.how == "cross":
            if self.on:
                raise QueryError("CROSS JOIN takes no ON equality pairs")
        elif not self.on:
            raise QueryError("join clause requires at least one equality pair")

    def __str__(self) -> str:
        kind = {
            "inner": "JOIN",
            "left": "LEFT JOIN",
            "right": "RIGHT JOIN",
            "full": "FULL JOIN",
            "cross": "CROSS JOIN",
        }[self.how]
        if self.how == "cross":
            return f"{kind} {self.table}"
        conds = " AND ".join(f"{l} = {r}" for l, r in self.on)
        return f"{kind} {self.table} ON {conds}"


@dataclass(frozen=True)
class SetOpClause:
    """One set-operation step: combine with another full SELECT block.

    ``op`` is ``"union"`` (duplicate-eliminating, applied after the
    concatenation like SQL's left-associative UNION) or ``"union_all"``.
    The branch query must not carry ORDER BY/LIMIT — in SQL those belong
    to the combined result and live on the head query.
    """

    op: str  # "union" | "union_all"
    query: "Query"

    def __post_init__(self) -> None:
        if self.op not in ("union", "union_all"):
            raise QueryError(f"unsupported set operation {self.op!r}")
        if self.query.order or self.query.limit_n is not None:
            raise QueryError(
                "a set-operation branch cannot carry ORDER BY/LIMIT; "
                "they apply to the combined result (put them on the head)"
            )

    def __str__(self) -> str:
        kind = "UNION" if self.op == "union" else "UNION ALL"
        return f"{kind} {self.query.describe()}"


@dataclass(frozen=True)
class Query:
    """Immutable logical query over catalog names."""

    source: str
    joins: tuple[JoinClause, ...] = ()
    where: Expr | None = None
    group_by: tuple[str, ...] = ()
    aggregates: tuple[AggSpec, ...] = ()
    having: Expr | None = None
    select: tuple[SelectItem, ...] = ()
    select_distinct: bool = False
    order: tuple[tuple[str, bool], ...] = ()
    limit_n: int | None = None
    #: Set-operation tail: the head block's result is combined with each
    #: branch in order (FROM…DISTINCT of the head, then the branches, then
    #: the head's ORDER BY/LIMIT on the combined rows).
    set_ops: tuple[SetOpClause, ...] = ()

    # -- builder ----------------------------------------------------------

    @classmethod
    def from_(cls, source: str) -> "Query":
        """Start a query over the named table or view."""
        if not source:
            raise QueryError("query source must be a non-empty name")
        return cls(source=source)

    def join(
        self,
        table: str,
        on: Sequence[tuple[str, str]],
        *,
        how: str = "inner",
    ) -> "Query":
        """Add a join against ``table`` on ``(left_col, right_col)`` pairs."""
        clause = JoinClause(table, tuple((l, r) for l, r in on), how)
        return replace(self, joins=self.joins + (clause,))

    def filter(self, predicate: Expr) -> "Query":
        """AND a predicate into the WHERE clause.

        On a set-operation query the predicate is pushed into *every*
        branch as well as the head: selection distributes over union
        (``σp(A ∪ B) = σp(A) ∪ σp(B)``), and enforcement layers (VPD,
        report-level row suppression) rely on ``filter`` narrowing the
        whole result, never just the first branch.
        """
        combined = predicate if self.where is None else And(self.where, predicate)
        set_ops = tuple(
            SetOpClause(clause.op, clause.query.filter(predicate))
            for clause in self.set_ops
        )
        return replace(self, where=combined, set_ops=set_ops)

    def group(self, *columns: str) -> "Query":
        """Set GROUP BY columns."""
        return replace(self, group_by=tuple(columns))

    def agg(self, *specs: AggSpec) -> "Query":
        """Add aggregate outputs (requires or implies grouping)."""
        return replace(self, aggregates=self.aggregates + tuple(specs))

    def having_(self, predicate: Expr) -> "Query":
        """AND a predicate on the aggregate output (HAVING)."""
        combined = predicate if self.having is None else And(self.having, predicate)
        return replace(self, having=combined)

    def project(self, *items: SelectItem) -> "Query":
        """Set the SELECT list (plain names and/or ``(alias, expr)`` pairs)."""
        return replace(self, select=tuple(items))

    def distinct(self) -> "Query":
        """Request duplicate elimination on the final output."""
        return replace(self, select_distinct=True)

    def order_by(self, *keys: str | tuple[str, bool]) -> "Query":
        """Set ORDER BY keys; a bare name sorts ascending."""
        normalized = tuple(
            (k, False) if isinstance(k, str) else (k[0], bool(k[1])) for k in keys
        )
        return replace(self, order=normalized)

    def limit(self, n: int) -> "Query":
        """Keep only the first ``n`` rows."""
        if n < 0:
            raise QueryError("limit must be non-negative")
        return replace(self, limit_n=n)

    def union_with(self, other: "Query", *, all: bool = False) -> "Query":
        """Combine with ``other`` by UNION (default) or UNION ALL.

        Branches combine positionally, like SQL: arity and types must
        agree at execution, and the result carries the head's column
        names. ``other``'s own set-operation tail is flattened into this
        query's (left-associative, matching ``a UNION b UNION c``); its
        ORDER BY/LIMIT, if any, are rejected by :class:`SetOpClause`.
        The head's ORDER BY/LIMIT apply to the combined result.
        """
        op = "union_all" if all else "union"
        tail = other.set_ops
        branch = replace(other, set_ops=())
        return replace(
            self, set_ops=self.set_ops + (SetOpClause(op, branch),) + tail
        )

    # -- introspection ------------------------------------------------------

    @property
    def is_aggregate(self) -> bool:
        """True if this query groups or aggregates."""
        return bool(self.group_by or self.aggregates)

    def referenced_relations(self) -> tuple[str, ...]:
        """Names of every table/view the query reads: FROM, JOINs, and —
        so caching, cycle checks, and state tokens see the whole tree —
        every set-operation branch's relations, in order."""
        out = (self.source,) + tuple(j.table for j in self.joins)
        for clause in self.set_ops:
            out += clause.query.referenced_relations()
        return out

    def output_names(self) -> tuple[str, ...] | None:
        """Output column names if statically determinable, else ``None``.

        The result is ``None`` only for a bare ``SELECT *`` (no projection,
        no aggregation), whose width depends on the catalog.
        """
        if self.select:
            return tuple(
                item if isinstance(item, str) else item[0] for item in self.select
            )
        if self.is_aggregate:
            return self.group_by + tuple(a.alias for a in self.aggregates)
        return None

    def columns_used(self) -> frozenset[str]:
        """Every column name mentioned anywhere in the query."""
        used: set[str] = set()
        for clause in self.joins:
            for l, r in clause.on:
                used.add(l)
                used.add(r)
        if self.where is not None:
            used.update(self.where.columns())
        used.update(self.group_by)
        for spec in self.aggregates:
            if spec.column is not None:
                used.add(spec.column)
        if self.having is not None:
            used.update(self.having.columns())
        for item in self.select:
            if isinstance(item, str):
                used.add(item)
            else:
                used.update(item[1].columns())
        for colname, _ in self.order:
            used.add(colname)
        for clause in self.set_ops:
            used.update(clause.query.columns_used())
        return frozenset(used)

    def fingerprint(self) -> str:
        """Stable identity of the *normalized* query tree, for plan caching.

        Differs from :meth:`describe` in that top-level WHERE/HAVING
        conjuncts are sorted — ``filter(a).filter(b)`` and
        ``filter(b).filter(a)`` are the same plan (AND is commutative under
        three-valued logic), so they share one cache entry. Everything else
        is rendered positionally; literal values render via ``repr`` so
        ``1``/``1.0``/``True`` stay distinct.

        Memoized per instance: the query tree is frozen, so the fingerprint
        is computed once and stashed on the instance (``dataclasses.replace``
        builds fresh instances, which recompute it).
        """
        cached = self.__dict__.get("_fingerprint_memo")
        if cached is not None:
            return cached

        def norm(predicate: Expr | None) -> str:
            if predicate is None:
                return ""
            return "&".join(sorted(str(c) for c in conjuncts(predicate)))

        parts = [
            "F=" + self.source,
            "J=" + ";".join(
                f"{j.how}:{j.table}:{sorted(j.on)}" for j in self.joins
            ),
            "W=" + norm(self.where),
            "G=" + ",".join(self.group_by),
            "A=" + ";".join(str(a) for a in self.aggregates),
            "H=" + norm(self.having),
            "S=" + ";".join(
                item if isinstance(item, str) else f"{item[0]}<-{item[1]}"
                for item in self.select
            ),
            "D=" + str(int(self.select_distinct)),
            "O=" + ";".join(f"{c}:{int(d)}" for c, d in self.order),
            "L=" + ("" if self.limit_n is None else str(self.limit_n)),
        ]
        if self.set_ops:
            parts.append(
                "U=" + ";".join(
                    f"{clause.op}({clause.query.fingerprint()})"
                    for clause in self.set_ops
                )
            )
        fp = "|".join(parts)
        object.__setattr__(self, "_fingerprint_memo", fp)
        return fp

    def describe(self) -> str:
        """Compact SQL-like rendering for logs and elicitation displays."""
        parts = []
        if self.select:
            sel = ", ".join(
                item if isinstance(item, str) else f"{item[1]} AS {item[0]}"
                for item in self.select
            )
        elif self.is_aggregate:
            sel = ", ".join(
                list(self.group_by) + [str(a) for a in self.aggregates]
            )
        else:
            sel = "*"
        distinct = "DISTINCT " if self.select_distinct else ""
        parts.append(f"SELECT {distinct}{sel}")
        parts.append(f"FROM {self.source}")
        parts.extend(str(j) for j in self.joins)
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.group_by:
            parts.append(f"GROUP BY {', '.join(self.group_by)}")
        if self.having is not None:
            parts.append(f"HAVING {self.having}")
        parts.extend(str(clause) for clause in self.set_ops)
        if self.order:
            keys = ", ".join(f"{c}{' DESC' if d else ''}" for c, d in self.order)
            parts.append(f"ORDER BY {keys}")
        if self.limit_n is not None:
            parts.append(f"LIMIT {self.limit_n}")
        return " ".join(parts)

    def __str__(self) -> str:
        return self.describe()


def _ensure_select_consistency(query: Query) -> None:
    """Validate that a projection over an aggregate uses only its outputs."""
    if not (query.select and query.is_aggregate):
        return
    available = set(query.group_by) | {a.alias for a in query.aggregates}
    for item in query.select:
        cols = {item} if isinstance(item, str) else set(item[1].columns())
        unknown = cols - available
        if unknown:
            raise QueryError(
                f"SELECT references {sorted(unknown)} which are neither "
                "GROUP BY columns nor aggregate aliases"
            )
