"""A small SQL-subset parser producing :class:`~repro.relational.query.Query`.

Supported grammar (case-insensitive keywords)::

    SELECT [DISTINCT] * | item, item, ...
    FROM name
    [[INNER] JOIN | LEFT|RIGHT|FULL [OUTER] JOIN] name ON a = b [AND ...]
    [WHERE <boolean expression>]
    [GROUP BY col, col, ...]
    [HAVING <boolean expression>]
    [ORDER BY col [DESC], ...]
    [LIMIT n]

Items are expressions with an optional ``AS alias``, or aggregates
``COUNT(*) | COUNT([DISTINCT] col) | SUM/AVG/MIN/MAX(col)``. Expressions
support comparisons, ``AND/OR/NOT``, ``IN (...)``, ``IS [NOT] NULL``,
``CASE`` (searched and simple — the simple form desugars to equality
conditions at parse time), arithmetic, string/number/date/bool literals,
and dotted column names.

The same expression grammar parses PLA intensional conditions, so source
owners' predicates ("disease != 'HIV'") and queries share one syntax.

Constructs the grammar recognizes but cannot model — ``UNION``, ``WITH``
(CTEs), ``CROSS``/``OUTER`` joins, ``EXISTS``, subqueries, window
functions (``... OVER (...)``) — raise :class:`UnsupportedConstructError`
naming the construct, not a generic syntax failure; :mod:`repro.ingest`
extends this parser to support several of them. Every :class:`ParseError`
carries the token offset and renders a caret-annotated source snippet.

The tokenizer is shared with the multi-dialect ingestion front-end: tokens
carry source offsets, ``--``/``/* */`` comments are skipped, and
``"quoted"``/``[bracketed]`` identifiers can be enabled per dialect.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.errors import ParseError, UnsupportedConstructError
from repro.relational.algebra import AGGREGATE_FUNCTIONS, AggSpec
from repro.relational.expressions import (
    Arith,
    Case,
    Col,
    Comparison,
    Expr,
    InList,
    IsNull,
    Lit,
    Not,
)
from repro.relational.query import Query
from repro.relational.types import parse_date

__all__ = ["parse_query", "parse_expression", "Token", "tokenize", "Parser"]

_TOKEN_RE = re.compile(
    r"""
    (?:\s+|--[^\n]*|/\*.*?\*/)*
    (?:
        (?P<number>\d+\.\d+|\d+)
      | (?P<string>'(?:[^']|'')*')
      | (?P<qident>"(?:[^"]|"")*")
      | (?P<bident>\[[^\]\[]+\])
      | (?P<op><=|>=|!=|<>|=|<|>|\+|-|\*|/|\(|\)|,|;|::|\.)
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)*)
    )""",
    re.VERBOSE | re.DOTALL,
)

_SKIP_RE = re.compile(r"(?:\s+|--[^\n]*|/\*.*?\*/)*", re.DOTALL)

_KEYWORDS = {
    "select", "distinct", "from", "join", "left", "on", "where", "group",
    "by", "having", "order", "limit", "and", "or", "not", "in", "is",
    "null", "as", "asc", "desc", "true", "false", "date",
    "case", "when", "then", "else", "end",
    # Recognized so misuse yields a *targeted* unsupported-construct error
    # (or real support in repro.ingest) instead of a generic syntax failure.
    "union", "all", "with", "right", "full", "cross", "outer", "inner",
    "exists", "create", "view", "top", "over",
}

#: Constructs the base grammar names but does not model. The ingestion
#: front-end (:mod:`repro.ingest`) supports the first two.
_UNSUPPORTED_HINTS = {
    "union": "UNION",
    "with": "WITH (common table expression)",
    "outer": "OUTER JOIN",
    "exists": "EXISTS",
    "create": "CREATE statement",
    "over": "window function",
}


@dataclass(frozen=True)
class Token:
    kind: str  # number | string | op | ident | keyword | end
    text: str
    pos: int = 0  # byte offset of the token in the source text
    quoted: bool = False  # identifier came from "..." or [...] quoting

    def lowered(self) -> str:
        return self.text.lower()


def tokenize(
    text: str,
    *,
    quoted_idents: bool = False,
    bracket_idents: bool = False,
) -> list[Token]:
    """Tokenize ``text``; offsets are preserved, comments skipped.

    ``quoted_idents`` admits ANSI/Postgres ``"name"`` identifiers,
    ``bracket_idents`` admits T-SQL ``[name]`` identifiers — both surface
    as ordinary ``ident`` tokens flagged ``quoted`` so dialect layers can
    note the normalization. Quoted identifiers are never keywords.
    """
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos or match.lastgroup is None:
            skip = _SKIP_RE.match(text, pos)
            start = skip.end() if skip else pos
            remainder = text[start:]
            if not remainder:
                break
            raise ParseError(
                f"cannot tokenize near {remainder[:20]!r}",
                source=text,
                offset=start,
            )
        pos = match.end()
        start = match.start(match.lastgroup)
        if match.lastgroup == "ident":
            word = match.group("ident")
            if word.lower() in _KEYWORDS:
                tokens.append(Token("keyword", word.lower(), start))
            else:
                tokens.append(Token("ident", word, start))
        elif match.lastgroup == "qident":
            if not quoted_idents:
                raise ParseError(
                    'quoted identifiers ("...") are not enabled for this '
                    "dialect",
                    source=text,
                    offset=start,
                )
            name = match.group("qident")[1:-1].replace('""', '"')
            tokens.append(Token("ident", name, start, quoted=True))
        elif match.lastgroup == "bident":
            if not bracket_idents:
                raise ParseError(
                    "bracketed identifiers ([...]) are a T-SQL form; "
                    "select the tsql dialect",
                    source=text,
                    offset=start,
                )
            tokens.append(
                Token("ident", match.group("bident")[1:-1], start, quoted=True)
            )
        elif match.lastgroup == "op":
            op = match.group("op")
            tokens.append(Token("op", "!=" if op == "<>" else op, start))
        elif match.lastgroup == "number":
            tokens.append(Token("number", match.group("number"), start))
        else:
            tokens.append(Token("string", match.group("string"), start))
    tokens.append(Token("end", "", len(text)))
    return tokens


class Parser:
    """Recursive-descent parser over the shared token vocabulary.

    The ingestion front-end subclasses this to add multi-dialect
    statements (CREATE VIEW, WITH, UNION, FROM-subqueries); the base class
    covers the single-block grammar and the full expression grammar.
    """

    def __init__(self, text: str, tokens: list[Token] | None = None) -> None:
        self.text = text
        self.tokens = tokens if tokens is not None else tokenize(text)
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "end":
            self.pos += 1
        return token

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            want = text or kind
            raise self.error(f"expected {want!r}, found {self.peek().text!r}")
        return token

    def error(self, message: str, *, token: Token | None = None) -> ParseError:
        """A :class:`ParseError` pinned to ``token`` (default: lookahead)."""
        at = token if token is not None else self.peek()
        return ParseError(message, source=self.text, offset=at.pos)

    def unsupported(
        self, construct: str, *, token: Token | None = None
    ) -> UnsupportedConstructError:
        at = token if token is not None else self.peek()
        return UnsupportedConstructError(
            construct,
            f"unsupported construct: {construct}",
            source=self.text,
            offset=at.pos,
        )

    def _reject_unsupported_keyword(self) -> None:
        token = self.peek()
        if token.kind == "keyword" and token.text in _UNSUPPORTED_HINTS:
            raise self.unsupported(_UNSUPPORTED_HINTS[token.text])

    # -- query ---------------------------------------------------------------

    def parse_query(self) -> Query:
        self._reject_unsupported_keyword()
        query = self.parse_select_block()
        self._reject_unsupported_keyword()
        self.expect("end")
        return query

    def parse_select_block(self) -> Query:
        """One SELECT…LIMIT block (no trailing-input check)."""
        self.expect("keyword", "select")
        distinct = self.accept("keyword", "distinct") is not None
        star = self.accept("op", "*") is not None
        items: list[tuple[str | None, Expr | AggSpec]] = []
        if not star:
            items.append(self._select_item())
            while self.accept("op", ","):
                items.append(self._select_item())
        self.expect("keyword", "from")
        source = self._relation_name()
        query = Query.from_(source)

        while True:
            if self.accept("keyword", "left"):
                self.accept("keyword", "outer")
                self.expect("keyword", "join")
                query = self._join(query, how="left")
            elif self.accept("keyword", "right"):
                self.accept("keyword", "outer")
                self.expect("keyword", "join")
                query = self._join(query, how="right")
            elif self.accept("keyword", "full"):
                self.accept("keyword", "outer")
                self.expect("keyword", "join")
                query = self._join(query, how="full")
            elif self.accept("keyword", "inner"):
                self.expect("keyword", "join")
                query = self._join(query, how="inner")
            elif self.accept("keyword", "join"):
                query = self._join(query, how="inner")
            elif self.accept("keyword", "cross"):
                self.expect("keyword", "join")
                query = query.join(self._relation_name(), [], how="cross")
            else:
                break

        if self.accept("keyword", "where"):
            query = query.filter(self.parse_expression())
        if self.accept("keyword", "group"):
            self.expect("keyword", "by")
            cols = [self._column_name()]
            while self.accept("op", ","):
                cols.append(self._column_name())
            query = query.group(*cols)
        # Attach aggregates and the projection derived from the select list.
        query = self._apply_select(query, items, star)
        if self.accept("keyword", "having"):
            query = query.having_(self.parse_expression())
        if self.accept("keyword", "order"):
            self.expect("keyword", "by")
            keys: list[tuple[str, bool]] = [self._order_key()]
            while self.accept("op", ","):
                keys.append(self._order_key())
            query = query.order_by(*keys)
        if self.accept("keyword", "limit"):
            query = query.limit(int(self.expect("number").text))
        if distinct:
            query = query.distinct()
        return query

    def _relation_name(self) -> str:
        if self.peek().kind == "op" and self.peek().text == "(":
            raise self.unsupported("subquery in FROM")
        return self.expect("ident").text

    def _join(self, query: Query, *, how: str) -> Query:
        table = self._relation_name()
        self.expect("keyword", "on")
        pairs = [self._join_pair()]
        while self.accept("keyword", "and"):
            pairs.append(self._join_pair())
        return query.join(table, pairs, how=how)

    def _join_pair(self) -> tuple[str, str]:
        left = self._column_name()
        self.expect("op", "=")
        right = self._column_name()
        return (left, right)

    def _column_name(self) -> str:
        # "date" is a keyword (DATE '...' literals) but also a perfectly
        # normal column name — the paper's Prescriptions table has one.
        if self.peek().kind == "keyword" and self.peek().text == "date":
            self.advance()
            return "date"
        return self.expect("ident").text

    def _order_key(self) -> tuple[str, bool]:
        name = self._column_name()
        if self.accept("keyword", "desc"):
            return (name, True)
        self.accept("keyword", "asc")
        return (name, False)

    def _select_item(self) -> tuple[str | None, Expr | AggSpec]:
        token = self.peek()
        if (
            token.kind == "ident"
            and token.text.lower() in AGGREGATE_FUNCTIONS
            and self.peek(1).kind == "op"
            and self.peek(1).text == "("
        ):
            spec = self._aggregate(token.text.lower())
            if self.peek().kind == "keyword" and self.peek().text == "over":
                raise self.unsupported("window function", token=token)
            alias = self._alias()
            if alias is not None:
                spec = AggSpec(spec.func, spec.column, alias, spec.distinct)
            return (spec.alias, spec)
        expr = self.parse_expression()
        return (self._alias(), expr)

    def _alias(self) -> str | None:
        if self.accept("keyword", "as"):
            return self.expect("ident").text
        return None

    def _aggregate(self, func: str) -> AggSpec:
        self.advance()  # function name
        self.expect("op", "(")
        distinct = self.accept("keyword", "distinct") is not None
        if self.accept("op", "*"):
            column: str | None = None
        else:
            column = self._column_name()
        self.expect("op", ")")
        default_alias = f"{func}_all" if column is None else f"{func}_{column.replace('.', '_')}"
        return AggSpec(func, column, default_alias, distinct)

    def _apply_select(
        self,
        query: Query,
        items: list[tuple[str | None, Expr | AggSpec]],
        star: bool,
    ) -> Query:
        if star:
            return query
        aggs = [item for _, item in items if isinstance(item, AggSpec)]
        if aggs:
            query = query.agg(*aggs)
        projection: list[str | tuple[str, Expr]] = []
        for alias, item in items:
            if isinstance(item, AggSpec):
                projection.append(item.alias)
            elif isinstance(item, Col) and alias is None:
                projection.append(item.name)
            else:
                projection.append((alias or _default_alias(item), item))
        return query.project(*projection)

    # -- expressions ---------------------------------------------------------
    # Precedence: OR < AND < NOT < comparison/IN/IS < add < mul < unary < atom

    def parse_expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self.accept("keyword", "or"):
            left = left | self._and_expr()
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self.accept("keyword", "and"):
            left = left & self._not_expr()
        return left

    def _not_expr(self) -> Expr:
        if self.accept("keyword", "not"):
            return Not(self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        token = self.peek()
        if token.kind == "op" and token.text in ("=", "!=", "<", "<=", ">", ">="):
            op = self.advance().text
            return Comparison(op, left, self._additive())
        if self.accept("keyword", "in"):
            self.expect("op", "(")
            if self.peek().kind == "keyword" and self.peek().text == "select":
                raise self.unsupported("IN (subquery)")
            values = [self._literal_value()]
            while self.accept("op", ","):
                values.append(self._literal_value())
            self.expect("op", ")")
            return InList(left, tuple(values))
        if self.accept("keyword", "is"):
            negated = self.accept("keyword", "not") is not None
            self.expect("keyword", "null")
            return IsNull(left, negated)
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("+", "-"):
                op = self.advance().text
                left = Arith(op, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("*", "/"):
                op = self.advance().text
                left = Arith(op, left, self._unary())
            else:
                return left

    def _unary(self) -> Expr:
        if self.accept("op", "-"):
            inner = self._unary()
            if isinstance(inner, Lit) and isinstance(inner.value, (int, float)):
                return Lit(-inner.value)
            return Arith("-", Lit(0), inner)
        return self._atom()

    def _atom(self) -> Expr:
        token = self.peek()
        if token.kind == "op" and token.text == "(":
            self.advance()
            if self.peek().kind == "keyword" and self.peek().text == "select":
                raise self.unsupported("scalar subquery")
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        if token.kind == "keyword" and token.text == "exists":
            raise self.unsupported("EXISTS")
        if token.kind == "keyword" and token.text == "case":
            return self._case()
        if token.kind in ("number", "string"):
            return Lit(self._literal_value())
        if token.kind == "keyword" and token.text in ("true", "false"):
            self.advance()
            return Lit(token.text == "true")
        if token.kind == "keyword" and token.text == "null":
            self.advance()
            return Lit(None)
        if token.kind == "keyword" and token.text == "date":
            self.advance()
            if self.peek().kind == "string":
                return Lit(parse_date(_unquote(self.advance().text)))
            return Col("date")  # bare "date" is the column, not a literal
        if token.kind == "ident":
            if self.peek(1).kind == "op" and self.peek(1).text == "(":
                if self._call_has_over(self.pos + 1):
                    raise self.unsupported("window function", token=token)
                raise self.unsupported(
                    f"function call: {token.text}", token=token
                )
            return Col(self.advance().text)
        raise self.error(f"unexpected token {token.text!r}")

    def _call_has_over(self, open_paren_pos: int) -> bool:
        """Does the call whose ``(`` sits at ``open_paren_pos`` carry OVER?

        Pure lookahead (no tokens consumed): scans to the matching ``)``
        and checks whether the next token is the ``OVER`` keyword, so
        window functions get their own targeted diagnostic.
        """
        depth = 0
        i = open_paren_pos
        while i < len(self.tokens):
            tok = self.tokens[i]
            if tok.kind == "op" and tok.text == "(":
                depth += 1
            elif tok.kind == "op" and tok.text == ")":
                depth -= 1
                if depth == 0:
                    nxt = self.tokens[min(i + 1, len(self.tokens) - 1)]
                    return nxt.kind == "keyword" and nxt.text == "over"
            elif tok.kind == "end":
                break
            i += 1
        return False

    def _case(self) -> Expr:
        """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``.

        The simple form (with an operand) desugars to the searched form:
        each WHEN value becomes an equality condition on the operand.
        """
        case_token = self.expect("keyword", "case")
        operand: Expr | None = None
        if not (self.peek().kind == "keyword" and self.peek().text == "when"):
            operand = self.parse_expression()
        whens: list[Expr] = []
        thens: list[Expr] = []
        while self.accept("keyword", "when"):
            condition = self.parse_expression()
            if operand is not None:
                condition = Comparison("=", operand, condition)
            self.expect("keyword", "then")
            whens.append(condition)
            thens.append(self.parse_expression())
        if not whens:
            raise self.error(
                "CASE requires at least one WHEN arm", token=case_token
            )
        else_ = self.parse_expression() if self.accept("keyword", "else") else None
        self.expect("keyword", "end")
        return Case(tuple(whens), tuple(thens), else_)

    def _literal_value(self) -> Any:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "string":
            self.advance()
            return _unquote(token.text)
        if token.kind == "keyword" and token.text in ("true", "false"):
            self.advance()
            return token.text == "true"
        if token.kind == "keyword" and token.text == "date":
            self.advance()
            return parse_date(_unquote(self.expect("string").text))
        if token.kind == "op" and token.text == "-":
            self.advance()
            value = self._literal_value()
            if not isinstance(value, (int, float)):
                raise self.error("unary minus applies only to numbers")
            return -value
        raise self.error(f"expected literal, found {token.text!r}")


def _unquote(raw: str) -> str:
    return raw[1:-1].replace("''", "'")


def _default_alias(expr: Expr) -> str:
    if isinstance(expr, Col):
        return expr.name
    return "expr"


def parse_query(text: str) -> Query:
    """Parse a SQL-subset SELECT statement into a :class:`Query`."""
    return Parser(text).parse_query()


def parse_expression(text: str) -> Expr:
    """Parse a standalone boolean/scalar expression (PLA conditions etc.)."""
    parser = Parser(text)
    expr = parser.parse_expression()
    parser.expect("end")
    return expr
