"""A small SQL-subset parser producing :class:`~repro.relational.query.Query`.

Supported grammar (case-insensitive keywords)::

    SELECT [DISTINCT] * | item, item, ...
    FROM name
    [LEFT] JOIN name ON a = b [AND c = d ...]        (zero or more)
    [WHERE <boolean expression>]
    [GROUP BY col, col, ...]
    [HAVING <boolean expression>]
    [ORDER BY col [DESC], ...]
    [LIMIT n]

Items are expressions with an optional ``AS alias``, or aggregates
``COUNT(*) | COUNT([DISTINCT] col) | SUM/AVG/MIN/MAX(col)``. Expressions
support comparisons, ``AND/OR/NOT``, ``IN (...)``, ``IS [NOT] NULL``,
arithmetic, string/number/date/bool literals, and dotted column names.

The same expression grammar parses PLA intensional conditions, so source
owners' predicates ("disease != 'HIV'") and queries share one syntax.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.errors import ParseError
from repro.relational.algebra import AGGREGATE_FUNCTIONS, AggSpec
from repro.relational.expressions import (
    Arith,
    Col,
    Comparison,
    Expr,
    InList,
    IsNull,
    Lit,
    Not,
)
from repro.relational.query import Query
from repro.relational.types import parse_date

__all__ = ["parse_query", "parse_expression"]

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<number>\d+\.\d+|\d+)
      | (?P<string>'(?:[^']|'')*')
      | (?P<op><=|>=|!=|<>|=|<|>|\+|-|\*|/|\(|\)|,)
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)*)
    )""",
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "distinct", "from", "join", "left", "on", "where", "group",
    "by", "having", "order", "limit", "and", "or", "not", "in", "is",
    "null", "as", "asc", "desc", "true", "false", "date",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # number | string | op | ident | keyword | end
    text: str


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"cannot tokenize near {remainder[:20]!r}")
        pos = match.end()
        if match.lastgroup == "ident":
            word = match.group("ident")
            if word.lower() in _KEYWORDS:
                tokens.append(_Token("keyword", word.lower()))
            else:
                tokens.append(_Token("ident", word))
        elif match.lastgroup == "op":
            op = match.group("op")
            tokens.append(_Token("op", "!=" if op == "<>" else op))
        elif match.lastgroup == "number":
            tokens.append(_Token("number", match.group("number")))
        else:
            tokens.append(_Token("string", match.group("string")))
    tokens.append(_Token("end", ""))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self, ahead: int = 0) -> _Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> _Token:
        token = self.tokens[self.pos]
        if token.kind != "end":
            self.pos += 1
        return token

    def accept(self, kind: str, text: str | None = None) -> _Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.accept(kind, text)
        if token is None:
            want = text or kind
            raise ParseError(f"expected {want!r}, found {self.peek().text!r}")
        return token

    # -- query ---------------------------------------------------------------

    def parse_query(self) -> Query:
        self.expect("keyword", "select")
        distinct = self.accept("keyword", "distinct") is not None
        star = self.accept("op", "*") is not None
        items: list[tuple[str | None, Expr | AggSpec]] = []
        if not star:
            items.append(self._select_item())
            while self.accept("op", ","):
                items.append(self._select_item())
        self.expect("keyword", "from")
        source = self.expect("ident").text
        query = Query.from_(source)

        while True:
            if self.accept("keyword", "left"):
                self.expect("keyword", "join")
                query = self._join(query, how="left")
            elif self.accept("keyword", "join"):
                query = self._join(query, how="inner")
            else:
                break

        if self.accept("keyword", "where"):
            query = query.filter(self.parse_expression())
        if self.accept("keyword", "group"):
            self.expect("keyword", "by")
            cols = [self._column_name()]
            while self.accept("op", ","):
                cols.append(self._column_name())
            query = query.group(*cols)
        # Attach aggregates and the projection derived from the select list.
        query = self._apply_select(query, items, star)
        if self.accept("keyword", "having"):
            query = query.having_(self.parse_expression())
        if self.accept("keyword", "order"):
            self.expect("keyword", "by")
            keys: list[tuple[str, bool]] = [self._order_key()]
            while self.accept("op", ","):
                keys.append(self._order_key())
            query = query.order_by(*keys)
        if self.accept("keyword", "limit"):
            query = query.limit(int(self.expect("number").text))
        if distinct:
            query = query.distinct()
        self.expect("end")
        return query

    def _join(self, query: Query, *, how: str) -> Query:
        table = self.expect("ident").text
        self.expect("keyword", "on")
        pairs = [self._join_pair()]
        while self.accept("keyword", "and"):
            pairs.append(self._join_pair())
        return query.join(table, pairs, how=how)

    def _join_pair(self) -> tuple[str, str]:
        left = self._column_name()
        self.expect("op", "=")
        right = self._column_name()
        return (left, right)

    def _column_name(self) -> str:
        # "date" is a keyword (DATE '...' literals) but also a perfectly
        # normal column name — the paper's Prescriptions table has one.
        if self.peek().kind == "keyword" and self.peek().text == "date":
            self.advance()
            return "date"
        return self.expect("ident").text

    def _order_key(self) -> tuple[str, bool]:
        name = self._column_name()
        if self.accept("keyword", "desc"):
            return (name, True)
        self.accept("keyword", "asc")
        return (name, False)

    def _select_item(self) -> tuple[str | None, Expr | AggSpec]:
        token = self.peek()
        if (
            token.kind == "ident"
            and token.text.lower() in AGGREGATE_FUNCTIONS
            and self.peek(1).kind == "op"
            and self.peek(1).text == "("
        ):
            spec = self._aggregate(token.text.lower())
            alias = self._alias()
            if alias is not None:
                spec = AggSpec(spec.func, spec.column, alias, spec.distinct)
            return (spec.alias, spec)
        expr = self.parse_expression()
        return (self._alias(), expr)

    def _alias(self) -> str | None:
        if self.accept("keyword", "as"):
            return self.expect("ident").text
        return None

    def _aggregate(self, func: str) -> AggSpec:
        self.advance()  # function name
        self.expect("op", "(")
        distinct = self.accept("keyword", "distinct") is not None
        if self.accept("op", "*"):
            column: str | None = None
        else:
            column = self._column_name()
        self.expect("op", ")")
        default_alias = f"{func}_all" if column is None else f"{func}_{column.replace('.', '_')}"
        return AggSpec(func, column, default_alias, distinct)

    def _apply_select(
        self,
        query: Query,
        items: list[tuple[str | None, Expr | AggSpec]],
        star: bool,
    ) -> Query:
        if star:
            return query
        aggs = [item for _, item in items if isinstance(item, AggSpec)]
        if aggs:
            query = query.agg(*aggs)
        projection: list[str | tuple[str, Expr]] = []
        for alias, item in items:
            if isinstance(item, AggSpec):
                projection.append(item.alias)
            elif isinstance(item, Col) and alias is None:
                projection.append(item.name)
            else:
                projection.append((alias or _default_alias(item), item))
        return query.project(*projection)

    # -- expressions ---------------------------------------------------------
    # Precedence: OR < AND < NOT < comparison/IN/IS < add < mul < unary < atom

    def parse_expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self.accept("keyword", "or"):
            left = left | self._and_expr()
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self.accept("keyword", "and"):
            left = left & self._not_expr()
        return left

    def _not_expr(self) -> Expr:
        if self.accept("keyword", "not"):
            return Not(self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        token = self.peek()
        if token.kind == "op" and token.text in ("=", "!=", "<", "<=", ">", ">="):
            op = self.advance().text
            return Comparison(op, left, self._additive())
        if self.accept("keyword", "in"):
            self.expect("op", "(")
            values = [self._literal_value()]
            while self.accept("op", ","):
                values.append(self._literal_value())
            self.expect("op", ")")
            return InList(left, tuple(values))
        if self.accept("keyword", "is"):
            negated = self.accept("keyword", "not") is not None
            self.expect("keyword", "null")
            return IsNull(left, negated)
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("+", "-"):
                op = self.advance().text
                left = Arith(op, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("*", "/"):
                op = self.advance().text
                left = Arith(op, left, self._unary())
            else:
                return left

    def _unary(self) -> Expr:
        if self.accept("op", "-"):
            inner = self._unary()
            if isinstance(inner, Lit) and isinstance(inner.value, (int, float)):
                return Lit(-inner.value)
            return Arith("-", Lit(0), inner)
        return self._atom()

    def _atom(self) -> Expr:
        token = self.peek()
        if token.kind == "op" and token.text == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        if token.kind in ("number", "string"):
            return Lit(self._literal_value())
        if token.kind == "keyword" and token.text in ("true", "false"):
            self.advance()
            return Lit(token.text == "true")
        if token.kind == "keyword" and token.text == "null":
            self.advance()
            return Lit(None)
        if token.kind == "keyword" and token.text == "date":
            self.advance()
            if self.peek().kind == "string":
                return Lit(parse_date(_unquote(self.advance().text)))
            return Col("date")  # bare "date" is the column, not a literal
        if token.kind == "ident":
            return Col(self.advance().text)
        raise ParseError(f"unexpected token {token.text!r}")

    def _literal_value(self) -> Any:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "string":
            self.advance()
            return _unquote(token.text)
        if token.kind == "keyword" and token.text in ("true", "false"):
            self.advance()
            return token.text == "true"
        if token.kind == "keyword" and token.text == "date":
            self.advance()
            return parse_date(_unquote(self.expect("string").text))
        if token.kind == "op" and token.text == "-":
            self.advance()
            value = self._literal_value()
            if not isinstance(value, (int, float)):
                raise ParseError("unary minus applies only to numbers")
            return -value
        raise ParseError(f"expected literal, found {token.text!r}")


def _unquote(raw: str) -> str:
    return raw[1:-1].replace("''", "'")


def _default_alias(expr: Expr) -> str:
    if isinstance(expr, Col):
        return expr.name
    return "expr"


def parse_query(text: str) -> Query:
    """Parse a SQL-subset SELECT statement into a :class:`Query`."""
    return _Parser(text).parse_query()


def parse_expression(text: str) -> Expr:
    """Parse a standalone boolean/scalar expression (PLA conditions etc.)."""
    parser = _Parser(text)
    expr = parser.parse_expression()
    parser.expect("end")
    return expr
