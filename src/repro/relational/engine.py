"""Query executor: evaluates a :class:`~repro.relational.query.Query` against
a :class:`~repro.relational.catalog.Catalog`, with full provenance flow.

Views are expanded by recursive execution (no materialization), so the
provenance of a view's output reaches all the way down to base rows — which
is what report-level PLA auditing needs.

:func:`execute` dispatches between two implementations chosen by an
:class:`~repro.relational.execconfig.ExecutionConfig`:

* the **row-store reference path** in this module — row-at-a-time, simple,
  and never cached; the semantics oracle for differential testing;
* the **columnar batch path** in :mod:`repro.relational.columnar`, fronted
  by the normalized-plan result cache of
  :mod:`repro.relational.plancache`.

Both produce value-identical tables, provenance included.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.obs import instrument
from repro.obs.trace import TRACER
from repro.relational import algebra
from repro.relational.catalog import Catalog
from repro.relational.execconfig import ExecutionConfig, get_default_config
from repro.relational.query import Query, _ensure_select_consistency
from repro.relational.table import Table

__all__ = ["execute", "execute_row", "Engine"]

_MAX_VIEW_DEPTH = 32


def execute(
    query: Query,
    catalog: Catalog,
    *,
    name: str | None = None,
    config: ExecutionConfig | None = None,
) -> Table:
    """Run ``query`` against ``catalog`` and return a derived table.

    ``config`` selects the execution path (and plan caching); ``None`` uses
    the process default (columnar, cached). When observability is on (see
    :mod:`repro.obs`) each execution emits a ``query.execute`` span and a
    ``repro_queries_total`` tick; the disabled path skips both for free.
    """
    cfg = config if config is not None else get_default_config()
    if not cfg.observing():
        return _dispatch(query, catalog, name, cfg)
    with TRACER.span(
        "query.execute", {"mode": cfg.mode, "relation": query.source}, force=True
    ):
        result = _dispatch(query, catalog, name, cfg)
    instrument.QUERIES.inc(1, (cfg.mode,))
    return result


def _dispatch(
    query: Query, catalog: Catalog, name: str | None, cfg: ExecutionConfig
) -> Table:
    if cfg.mode == "row":
        return _execute(query, catalog, depth=0, name=name)

    from repro.relational.columnar import execute_columnar

    cache = cfg.effective_plan_cache()
    if cache is None:
        return execute_columnar(query, catalog, name=name)
    # Reservation protocol: the key and invalidation token are captured
    # *before* execution, so a catalog mutation landing mid-execution makes
    # the commit a no-op instead of storing a stale result under a fresh key.
    reservation = cache.begin(query, catalog, cfg.mode)
    if reservation is None:
        return execute_columnar(query, catalog, name=name)
    cached = cache.fetch(reservation, name=name)
    if cached is not None:
        return cached
    result = execute_columnar(query, catalog, name=name)
    cache.commit(reservation, result)
    return result


def execute_row(query: Query, catalog: Catalog, *, name: str | None = None) -> Table:
    """Run ``query`` on the row-store reference path, bypassing dispatch."""
    return _execute(query, catalog, depth=0, name=name)


def _resolve(name: str, catalog: Catalog, depth: int) -> Table:
    if depth > _MAX_VIEW_DEPTH:
        raise QueryError(f"view nesting deeper than {_MAX_VIEW_DEPTH}; cycle?")
    if catalog.is_table(name):
        return catalog.table(name)
    if catalog.is_view(name):
        view = catalog.view(name)
        return _execute(view.query, catalog, depth=depth + 1, name=name)
    raise QueryError(f"unknown relation {name!r}")


def _execute(query: Query, catalog: Catalog, *, depth: int, name: str | None) -> Table:
    current = _execute_core(query, catalog, depth=depth)

    # Set operations: combine positionally (branch columns are renamed to
    # the head's names, like SQL), dedup after each UNION (left-assoc).
    for clause in query.set_ops:
        branch = _execute_core(clause.query, catalog, depth=depth)
        current = algebra.union(current, _conform(branch, current))
        if clause.op == "union":
            current = algebra.distinct(current)

    # ORDER BY/LIMIT of the head apply to the combined result.
    if query.order:
        current = algebra.order_by(current, list(query.order))

    if query.limit_n is not None:
        current = algebra.limit(current, query.limit_n)

    if name is not None:
        current.name = name
    return current


def _execute_core(query: Query, catalog: Catalog, *, depth: int) -> Table:
    """One SELECT block, FROM through DISTINCT (no set ops/ORDER/LIMIT)."""
    _ensure_select_consistency(query)
    current = _resolve(query.source, catalog, depth)

    for clause in query.joins:
        right = _resolve(clause.table, catalog, depth)
        current = algebra.join(current, right, clause.on, how=clause.how)

    if query.where is not None:
        current = algebra.select(current, query.where)

    if query.is_aggregate:
        current = algebra.aggregate(current, query.group_by, query.aggregates)
        if query.having is not None:
            current = algebra.select(current, query.having)
    elif query.having is not None:
        raise QueryError("HAVING requires GROUP BY or aggregates")

    if query.select:
        current = algebra.project(current, list(query.select))

    if query.select_distinct:
        current = algebra.distinct(current)

    return current


def _conform(branch: Table, head: Table) -> Table:
    """Rename ``branch`` columns positionally to ``head``'s (SQL set-op rule)."""
    if branch.schema.names == head.schema.names:
        return branch
    if len(branch.schema.names) != len(head.schema.names):
        raise QueryError(
            f"set operation arity mismatch: head has {len(head.schema.names)} "
            f"column(s) {head.schema.names}, branch has "
            f"{len(branch.schema.names)} {branch.schema.names}"
        )
    mapping = dict(zip(branch.schema.names, head.schema.names))
    return algebra.rename(branch, mapping)


class Engine:
    """Thin convenience wrapper pairing a catalog with the executor.

    Enforcement layers (VPD, source gateways) subclass or wrap this to
    intercept queries before execution.
    """

    def __init__(
        self,
        catalog: Catalog | None = None,
        *,
        config: ExecutionConfig | None = None,
    ) -> None:
        self.catalog = catalog if catalog is not None else Catalog()
        self.config = config

    def run(self, query: Query, *, name: str | None = None) -> Table:
        """Execute ``query`` against this engine's catalog."""
        return execute(query, self.catalog, name=name, config=self.config)

    def sql(self, text: str, *, name: str | None = None) -> Table:
        """Parse and execute a SQL-subset string."""
        from repro.relational.sqlparser import parse_query

        return self.run(parse_query(text), name=name)
