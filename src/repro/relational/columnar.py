"""Columnar (batch-at-a-time) execution path with full provenance parity.

The row-store executor in :mod:`repro.relational.engine` is the *reference
implementation*: simple, row-at-a-time, and the semantics oracle for PLA
auditing. This module is the production path: tables are decomposed into
per-column vectors, predicates and computed projections are evaluated with
the batch kernels of :mod:`repro.relational.expressions`, joins probe hash
buckets built from key vectors, and select→project (and join→filter→project)
pipelines are fused so row provenance is materialized exactly once.

Two invariants the differential suite (``tests/test_engine_differential.py``)
enforces:

* **bag and order equality** — every operator emits rows in exactly the
  order the reference engine does, so results are comparable list-wise;
* **provenance equality** — why-lineage and per-cell where-provenance are
  value-identical to the reference engine's, which is what keeps PLA
  threshold checks and audits independent of the execution path.

Provenance is the part that stays row-shaped: :class:`RowProvenance` values
are per-row objects, so operators that must *rebuild* them (project, join,
aggregate) pay a per-row cost even on the columnar path. The speedup comes
from (a) replacing per-row dict construction and recursive expression
interpretation with C-level batch primitives (``zip``, ``compress``,
``map``, ``frozenset.union``, ``dict(zip(...))``) and (b) *fusion*: a
``JOIN … WHERE … SELECT`` pipeline builds one provenance object per output
row instead of one per operator per row.
"""

from __future__ import annotations

import weakref
from itertools import compress
from typing import Any, Callable, Sequence

from repro.errors import QueryError, SchemaError
from repro.relational.algebra import (
    AGGREGATE_FUNCTIONS,
    AggSpec,
    aggregate_output_schema,
    join_frame,
    project_plan,
)
from repro.relational.catalog import Catalog
from repro.relational.expressions import Col, Expr
from repro.relational.query import Query, _ensure_select_consistency
from repro.relational.schema import Column, Schema
from repro.relational.table import RowProvenance, Table
from repro.relational.vector import try_vector_core

__all__ = ["ColumnarTable", "execute_columnar"]

_MAX_VIEW_DEPTH = 32
_EMPTY_REFS: frozenset = frozenset()
_union = frozenset().union

# Base tables are transposed once per (identity, data_version) and reused
# across executions — the columnar analogue of keeping a column store warm.
_transposed: "weakref.WeakKeyDictionary[Table, tuple[int, int, ColumnarTable]]"
_transposed = weakref.WeakKeyDictionary()


class ColumnarTable:
    """A table decomposed into per-column value vectors.

    ``columns[i]`` holds the values of schema column ``i`` across all rows;
    ``provenance[j]`` is row ``j``'s provenance. Column vectors are never
    mutated after construction, so operators may alias them freely (a
    projection that copies a column shares the input vector).
    """

    __slots__ = ("name", "schema", "provider", "columns", "provenance", "_pcache")

    def __init__(
        self,
        name: str,
        schema: Schema,
        columns: list[list[Any]],
        provenance: Sequence[RowProvenance],
        *,
        provider: str = "derived",
    ) -> None:
        self.name = name
        self.schema = schema
        self.provider = provider
        self.columns = columns
        self.provenance = provenance
        # Lazily extracted provenance columns (lineage vector, per-column
        # where-ref vectors). Provenance is immutable, so wrappers sharing
        # ``provenance`` share this cache too (see ``_resolve``).
        self._pcache: dict[Any, list] = {}

    @property
    def n_rows(self) -> int:
        return len(self.provenance)

    def env(self) -> dict[str, list[Any]]:
        """Column name → vector mapping for batch expression evaluation."""
        return dict(zip(self.schema.names, self.columns))

    def lineage_vector(self) -> list[frozenset]:
        """Per-row why-lineage, extracted once and cached."""
        vec = self._pcache.get("lineage")
        if vec is None:
            vec = self._pcache["lineage"] = [p.lineage for p in self.provenance]
        return vec

    def where_vector(self, column: str) -> list[frozenset]:
        """Per-row where-refs of ``column``, extracted once and cached.

        Provenance is the columnar table's hidden extra columns; extracting
        them into vectors makes projection/join/aggregate provenance a pure
        gather instead of 100k dict probes per execution.
        """
        key = ("w", column)
        vec = self._pcache.get(key)
        if vec is None:
            vec = self._pcache[key] = _build_where_vector(self.provenance, column)
        return vec

    @classmethod
    def from_table(cls, table: Table) -> "ColumnarTable":
        """Transpose a row-store table; cached per (table, data_version)."""
        cached = _transposed.get(table)
        token = (table.data_version, len(table.rows))
        if cached is not None and cached[:2] == token:
            return cached[2]
        if table.rows:
            columns = [list(col) for col in zip(*table.rows)]
        else:
            columns = [[] for _ in table.schema]
        ct = cls(
            table.name,
            table.schema,
            columns,
            table.provenance,
            provider=table.provider,
        )
        try:
            _transposed[table] = (*token, ct)
        except TypeError:  # pragma: no cover - non-weakrefable Table subclass
            pass
        return ct

    @classmethod
    def from_rows(
        cls,
        name: str,
        schema: Schema,
        rows: Sequence[tuple[Any, ...]],
        provenance: Sequence[RowProvenance],
        *,
        provider: str = "derived",
    ) -> "ColumnarTable":
        if rows:
            columns = [list(col) for col in zip(*rows)]
        else:
            columns = [[] for _ in schema]
        return cls(name, schema, columns, provenance, provider=provider)

    def to_table(self, name: str | None = None) -> Table:
        """Materialize back into a row-store :class:`Table`."""
        if self.columns and self.columns[0]:
            rows = list(zip(*self.columns))
        else:
            rows = [() for _ in self.provenance] if not self.columns else []
        provenance = self.provenance
        if not getattr(provenance, "lazy_provenance", False):
            provenance = list(provenance)
        return Table.derived(
            name or self.name,
            self.schema,
            rows,
            provenance,
            provider=self.provider,
        )

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnarTable({self.name!r}, {self.n_rows} rows, "
            f"schema={self.schema.describe()})"
        )


# ---------------------------------------------------------------------------
# Provenance vector kernels
# ---------------------------------------------------------------------------


def _build_where_vector(
    provenance: Sequence[RowProvenance], column: str
) -> list[frozenset]:
    """Per-row where-refs of one column, extracted in a single pass."""
    try:
        return [p.where[column] for p in provenance]
    except KeyError:
        E = _EMPTY_REFS
        return [p.where.get(column, E) for p in provenance]


def _assemble(
    aliases: tuple[str, ...],
    vectors: list[list[frozenset]],
    lineages: Sequence[frozenset],
) -> list[RowProvenance]:
    """Zip per-alias where vectors into per-row provenance objects.

    This is the single place output provenance gets materialized, and the
    hard floor of provenance-preserving execution: one dict and one
    :class:`RowProvenance` per output row. Narrow projections get unrolled
    dict displays (measurably faster than ``dict(zip(...))``); everything
    else stays in C via ``zip``/``map``.
    """
    make = RowProvenance.make
    if len(vectors) == 1:
        (a1,) = aliases
        return [make(l, {a1: x}) for l, x in zip(lineages, vectors[0])]
    if len(vectors) == 2:
        a1, a2 = aliases
        return [
            make(l, {a1: x, a2: y}) for l, x, y in zip(lineages, *vectors)
        ]
    if len(vectors) == 3:
        a1, a2, a3 = aliases
        return [
            make(l, {a1: x, a2: y, a3: z})
            for l, x, y, z in zip(lineages, *vectors)
        ]
    if not vectors:
        return [make(l, {}) for l in lineages]
    wheres = [dict(zip(aliases, vals)) for vals in zip(*vectors)]
    return list(map(make, lineages, wheres))


def _proj_vectors(
    get_vec: Callable[[str], list[frozenset]],
    extractors: Sequence[tuple[str, Expr, bool]],
    n: int,
) -> list[list[frozenset]]:
    """Per-alias where vectors for a projection, mirroring ``algebra.project``:
    copied columns keep their refs; computed columns union their inputs'."""
    vectors: list[list[frozenset]] = []
    for alias, expr, is_copy in extractors:
        if is_copy:
            assert isinstance(expr, Col)
            vectors.append(get_vec(expr.name))
        else:
            cols = tuple(expr.columns())
            if not cols:
                vectors.append([_EMPTY_REFS] * n)
            elif len(cols) == 1:
                vectors.append(get_vec(cols[0]))
            else:
                per_col = [get_vec(c) for c in cols]
                vectors.append([_union(*refs) for refs in zip(*per_col)])
    return vectors


# ---------------------------------------------------------------------------
# Operators (each mirrors its algebra.py counterpart exactly)
# ---------------------------------------------------------------------------


def _truth_flags(
    predicate: Expr, schema: Schema, env: dict[str, list[Any]], n: int
) -> list[bool]:
    missing = predicate.columns() - set(schema.names)
    if missing:
        raise QueryError(f"predicate references unknown columns {sorted(missing)}")
    mask = predicate.evaluate_batch(env, n)
    # Same polarity as the row engine's ``if predicate.evaluate(...)``:
    # UNKNOWN (None) and falsy values exclude the row.
    return list(map(bool, mask))


def select_c(
    table: ColumnarTable, predicate: Expr, *, name: str | None = None
) -> ColumnarTable:
    """Batch filter; keeps rows whose predicate is definitely true."""
    flags = _truth_flags(predicate, table.schema, table.env(), table.n_rows)
    columns = [list(compress(col, flags)) for col in table.columns]
    provs = list(compress(table.provenance, flags))
    return ColumnarTable(name or table.name, table.schema, columns, provs)


def project_c(
    table: ColumnarTable,
    columns: Sequence[str | tuple[str, Expr]],
    *,
    name: str | None = None,
) -> ColumnarTable:
    """Batch projection with where-provenance remapping."""
    schema, extractors = project_plan(table.schema, columns)
    env = table.env()
    n = table.n_rows
    out_columns: list[list[Any]] = []
    for alias, expr, is_copy in extractors:
        if is_copy:
            assert isinstance(expr, Col)
            out_columns.append(env[expr.name])
        else:
            out_columns.append(expr.evaluate_batch(env, n))
    aliases = tuple(alias for alias, _, _ in extractors)
    vectors = _proj_vectors(table.where_vector, extractors, n)
    provs = _assemble(aliases, vectors, table.lineage_vector())
    return ColumnarTable(name or table.name, schema, out_columns, provs)


def select_project_c(
    table: ColumnarTable,
    predicate: Expr,
    columns: Sequence[str | tuple[str, Expr]],
    *,
    name: str | None = None,
) -> ColumnarTable:
    """Fused σπ: filter and project in one pass without materializing the
    intermediate relation — only columns the projection needs are gathered."""
    flags = _truth_flags(predicate, table.schema, table.env(), table.n_rows)
    schema, extractors = project_plan(table.schema, columns)
    needed: set[str] = set()
    for _, expr, _ in extractors:
        needed.update(expr.columns())
    env = table.env()
    filtered_env = {c: list(compress(env[c], flags)) for c in needed if c in env}
    n = sum(flags)
    out_columns: list[list[Any]] = []
    for alias, expr, is_copy in extractors:
        if is_copy:
            assert isinstance(expr, Col)
            out_columns.append(filtered_env[expr.name])
        else:
            out_columns.append(expr.evaluate_batch(filtered_env, n))
    aliases = tuple(alias for alias, _, _ in extractors)
    vectors = _proj_vectors(
        lambda c: list(compress(table.where_vector(c), flags)), extractors, n
    )
    provs = _assemble(
        aliases, vectors, list(compress(table.lineage_vector(), flags))
    )
    return ColumnarTable(name or table.name, schema, out_columns, provs)


def _probe(
    left: ColumnarTable,
    right: ColumnarTable,
    left_key_idx: list[int],
    right_key_idx: list[int],
    how: str,
) -> tuple[list[int], list[int], bool, bool]:
    """Hash-probe phase: output row index pairs ``(left_i, right_j)``.

    ``right_j == -1`` marks an unmatched left row (LEFT/FULL);
    ``left_i == -1`` marks an unmatched right row (RIGHT/FULL). Output
    order matches the reference engine: matched pairs in left order with
    bucket (right insertion) order per key, unmatched left rows inline at
    their probe position, then unmatched right rows in right order.
    Returns ``(out_li, out_rj, has_lmiss, has_rmiss)`` where the flags say
    whether a ``-1`` occurs in ``out_li`` / ``out_rj`` respectively.
    """
    if how == "cross":
        # Cartesian product in left-major order; zip(*()) would yield no
        # keys at all, so the empty-key case is handled explicitly here.
        nl, nr = left.n_rows, right.n_rows
        cross_li = [i for i in range(nl) for _ in range(nr)]
        cross_rj = list(range(nr)) * nl
        return cross_li, cross_rj, False, False

    buckets: dict[tuple[Any, ...], list[int]] = {}
    right_keys = zip(*(right.columns[k] for k in right_key_idx))
    for j, key in enumerate(right_keys):
        if None in key:
            continue
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [j]
        else:
            bucket.append(j)

    out_li: list[int] = []
    out_rj: list[int] = []
    has_lmiss = False
    has_rmiss = False
    bucket_get = buckets.get
    left_keys = zip(*(left.columns[k] for k in left_key_idx))
    if how == "inner":
        for i, key in enumerate(left_keys):
            if None in key:
                continue
            matches = bucket_get(key)
            if matches:
                out_li.extend([i] * len(matches))
                out_rj.extend(matches)
    elif how == "left":
        for i, key in enumerate(left_keys):
            matches = None if None in key else bucket_get(key)
            if matches:
                out_li.extend([i] * len(matches))
                out_rj.extend(matches)
            else:
                out_li.append(i)
                out_rj.append(-1)
                has_rmiss = True
    else:  # right / full outer
        matched_right: set[int] = set()
        for i, key in enumerate(left_keys):
            matches = None if None in key else bucket_get(key)
            if matches:
                matched_right.update(matches)
                out_li.extend([i] * len(matches))
                out_rj.extend(matches)
            elif how == "full":
                out_li.append(i)
                out_rj.append(-1)
                has_rmiss = True
        for j in range(right.n_rows):
            if j not in matched_right:
                out_li.append(-1)
                out_rj.append(j)
                has_lmiss = True
    return out_li, out_rj, has_lmiss, has_rmiss


def _joined_lineages(
    left: ColumnarTable,
    right: ColumnarTable,
    out_li: list[int],
    out_rj: list[int],
    has_lmiss: bool,
    has_rmiss: bool,
) -> list[frozenset]:
    ll = left.lineage_vector()
    rl = right.lineage_vector()
    if has_lmiss or has_rmiss:
        return [
            rl[j]
            if i < 0
            else (ll[i] if j < 0 else ll[i] | rl[j])
            for i, j in zip(out_li, out_rj)
        ]
    return [ll[i] | rl[j] for i, j in zip(out_li, out_rj)]


def join_c(
    left: ColumnarTable,
    right: ColumnarTable,
    on: Sequence[tuple[str, str]],
    *,
    how: str = "inner",
    name: str | None = None,
) -> ColumnarTable:
    """Hash equi-join over key vectors (inner, left, right, or full outer)."""
    schema, collisions, left_key_idx, right_key_idx = join_frame(
        left.schema, right.schema, left.name, right.name, on, how
    )
    out_li, out_rj, has_lmiss, has_rmiss = _probe(
        left, right, left_key_idx, right_key_idx, how
    )

    columns: list[list[Any]] = []
    if has_lmiss:
        columns.extend(
            [col[i] if i >= 0 else None for i in out_li] for col in left.columns
        )
    else:
        columns.extend([col[i] for i in out_li] for col in left.columns)
    if has_rmiss:
        columns.extend(
            [col[j] if j >= 0 else None for j in out_rj] for col in right.columns
        )
    else:
        columns.extend([col[j] for j in out_rj] for col in right.columns)

    # Output where-provenance: per output column, gather the source side's
    # refs (collision-qualified names key the same refs the row engine's
    # per-row requalification would produce).
    aliases: list[str] = []
    vectors: list[list[frozenset]] = []
    E = _EMPTY_REFS
    for c in left.schema.names:
        aliases.append(f"{left.name}.{c}" if c in collisions else c)
        lvec = left.where_vector(c)
        if has_lmiss:
            vectors.append([lvec[i] if i >= 0 else E for i in out_li])
        else:
            vectors.append([lvec[i] for i in out_li])
    for c in right.schema.names:
        aliases.append(f"{right.name}.{c}" if c in collisions else c)
        rvec = right.where_vector(c)
        if has_rmiss:
            vectors.append([rvec[j] if j >= 0 else E for j in out_rj])
        else:
            vectors.append([rvec[j] for j in out_rj])
    lineages = _joined_lineages(left, right, out_li, out_rj, has_lmiss, has_rmiss)
    provs = _assemble(tuple(aliases), vectors, lineages)

    # The vector path assumes every input where dict keys all of its side's
    # schema columns, which holds for everything the engine produces except
    # outer-join miss rows (the reference keeps only the present side's
    # keys). Rebuild exactly those rows — and any row sourced from a partial
    # input dict — the way the reference does: requalify items, then merge.
    n_lcols = len(left.schema.names)
    n_rcols = len(right.schema.names)
    lpartial = {
        i for i, p in enumerate(left.provenance) if len(p.where) != n_lcols
    }
    rpartial = {
        j for j, p in enumerate(right.provenance) if len(p.where) != n_rcols
    }

    def requalified(where: dict, side_name: str) -> dict:
        if not collisions:
            return dict(where)
        return {
            (f"{side_name}.{c}" if c in collisions else c): refs
            for c, refs in where.items()
        }

    if has_lmiss or has_rmiss or lpartial or rpartial:
        make = RowProvenance.make
        for idx, (i, j) in enumerate(zip(out_li, out_rj)):
            if i < 0 or j < 0 or i in lpartial or j in rpartial:
                w = (
                    requalified(left.provenance[i].where, left.name)
                    if i >= 0
                    else {}
                )
                if j >= 0:
                    w.update(requalified(right.provenance[j].where, right.name))
                provs[idx] = make(provs[idx].lineage, w)
    return ColumnarTable(name or f"{left.name}_{right.name}", schema, columns, provs)


def join_filter_project_c(
    left: ColumnarTable,
    right: ColumnarTable,
    on: Sequence[tuple[str, str]],
    how: str,
    predicate: Expr | None,
    columns: Sequence[str | tuple[str, Expr]],
) -> ColumnarTable:
    """Fused join → (filter) → project.

    The join's merged provenance is never materialized: after probing, only
    the columns the predicate and projection actually read are gathered, and
    exactly one provenance object per surviving output row is built, with
    where-refs pulled straight from the source sides.
    """
    schema, collisions, left_key_idx, right_key_idx = join_frame(
        left.schema, right.schema, left.name, right.name, on, how
    )
    out_li, out_rj, has_lmiss, has_rmiss = _probe(
        left, right, left_key_idx, right_key_idx, how
    )
    n = len(out_li)

    # Output column name → (side table, source column index/name, is_left).
    side_of: dict[str, tuple[ColumnarTable, int, str, bool]] = {}
    for idx, c in enumerate(left.schema.names):
        out = f"{left.name}.{c}" if c in collisions else c
        side_of[out] = (left, idx, c, True)
    for idx, c in enumerate(right.schema.names):
        out = f"{right.name}.{c}" if c in collisions else c
        side_of[out] = (right, idx, c, False)

    def gather(output_name: str) -> list[Any]:
        side, idx, _, is_left = side_of[output_name]
        col = side.columns[idx]
        if is_left:
            if has_lmiss:
                return [col[i] if i >= 0 else None for i in out_li]
            return [col[i] for i in out_li]
        if has_rmiss:
            return [col[j] if j >= 0 else None for j in out_rj]
        return [col[j] for j in out_rj]

    # The reference engine filters the joined relation before projecting, so
    # predicate errors (validation and evaluation alike) must surface before
    # any projection-list validation.
    if predicate is not None:
        missing = predicate.columns() - set(schema.names)
        if missing:
            raise QueryError(
                f"predicate references unknown columns {sorted(missing)}"
            )
        pred_env = {c: gather(c) for c in predicate.columns()}
        flags = list(map(bool, predicate.evaluate_batch(pred_env, n)))
        out_li = list(compress(out_li, flags))
        out_rj = list(compress(out_rj, flags))
        has_lmiss = has_lmiss and -1 in out_li
        has_rmiss = has_rmiss and -1 in out_rj
        n = len(out_li)

    sp_schema, extractors = project_plan(schema, columns)
    needed: set[str] = set()
    for _, expr, _ in extractors:
        needed |= expr.columns()
    env = {c: gather(c) for c in needed if c in side_of}

    out_columns: list[list[Any]] = []
    for alias, expr, is_copy in extractors:
        if is_copy:
            assert isinstance(expr, Col)
            out_columns.append(env[expr.name])
        else:
            out_columns.append(expr.evaluate_batch(env, n))

    # Provenance: one where vector per projected alias, gathered per side.
    E = _EMPTY_REFS

    def where_vec(output_name: str) -> list[frozenset]:
        side, _, orig, is_left = side_of[output_name]
        svec = side.where_vector(orig)
        if is_left:
            if has_lmiss:
                return [svec[i] if i >= 0 else E for i in out_li]
            return [svec[i] for i in out_li]
        if has_rmiss:
            return [svec[j] if j >= 0 else E for j in out_rj]
        return [svec[j] for j in out_rj]

    aliases = tuple(alias for alias, _, _ in extractors)
    vectors: list[list[frozenset]] = []
    for alias, expr, is_copy in extractors:
        if is_copy:
            assert isinstance(expr, Col)
            vectors.append(where_vec(expr.name))
        else:
            cols = tuple(expr.columns())
            if not cols:
                vectors.append([E] * n)
            elif len(cols) == 1:
                vectors.append(where_vec(cols[0]))
            else:
                per_col = [where_vec(c) for c in cols]
                vectors.append([_union(*refs) for refs in zip(*per_col)])
    lineages = _joined_lineages(
        left, right, out_li, out_rj, has_lmiss, has_rmiss
    )
    provs = _assemble(aliases, vectors, lineages)
    return ColumnarTable(
        f"{left.name}_{right.name}", sp_schema, out_columns, provs
    )


def aggregate_c(
    table: ColumnarTable,
    group_by: Sequence[str],
    aggs: Sequence[AggSpec],
    *,
    name: str | None = None,
) -> ColumnarTable:
    """GROUP BY over key vectors; per-group unions via C-level bulk calls."""
    schema = aggregate_output_schema(table.schema, group_by, aggs)
    group_idx = [table.schema.index_of(g) for g in group_by]
    n = table.n_rows

    # Group members in first-occurrence order (same as the reference).
    groups: dict[Any, list[int]] = {}
    order: list[Any] = []
    scalar_keys = len(group_idx) == 1
    if scalar_keys:
        for i, v in enumerate(table.columns[group_idx[0]]):
            members = groups.get(v)
            if members is None:
                groups[v] = [i]
                order.append(v)
            else:
                members.append(i)
    elif group_idx:
        keys = zip(*(table.columns[k] for k in group_idx))
        for i, key in enumerate(keys):
            members = groups.get(key)
            if members is None:
                groups[key] = [i]
                order.append(key)
            else:
                members.append(i)
    else:
        groups[()] = list(range(n))
        order.append(())

    lineage_vec = table.lineage_vector()
    group_where = {g: table.where_vector(g) for g in group_by}
    agg_where = {
        spec.column: table.where_vector(spec.column)
        for spec in aggs
        if spec.column is not None
    }
    agg_cols = {
        spec.column: table.columns[table.schema.index_of(spec.column)]
        for spec in aggs
        if spec.column is not None
    }

    out_rows: list[tuple[Any, ...]] = []
    provs: list[RowProvenance] = []
    make = RowProvenance.make
    for key in order:
        members = groups[key]
        values = [key] if scalar_keys else list(key)
        where: dict[str, frozenset] = {}
        for g in group_by:
            vec = group_where[g]
            where[g] = _union(*map(vec.__getitem__, members))
        lineage = _union(*map(lineage_vec.__getitem__, members))
        for spec in aggs:
            if spec.column is None:
                col_values: list[Any] = [1] * len(members)
                refs: frozenset = _EMPTY_REFS
            else:
                col_values = list(map(agg_cols[spec.column].__getitem__, members))
                refs = _union(*map(agg_where[spec.column].__getitem__, members))
            if spec.distinct:
                col_values = _distinct_values(col_values)
            values.append(AGGREGATE_FUNCTIONS[spec.func](col_values))
            where[spec.alias] = refs
        out_rows.append(tuple(values))
        provs.append(make(lineage, where))
    return ColumnarTable.from_rows(name or table.name, schema, out_rows, provs)


def _distinct_values(values: list[Any]) -> list[Any]:
    """First-occurrence dedup, value-equal to the reference list scan."""
    try:
        return list(dict.fromkeys(values))
    except TypeError:  # unhashable values: the reference O(n²) scan
        seen: list[Any] = []
        for v in values:
            if v not in seen:
                seen.append(v)
        return seen


def distinct_c(table: ColumnarTable, *, name: str | None = None) -> ColumnarTable:
    """Duplicate elimination; merged duplicates union their provenance."""
    if table.columns and table.columns[0]:
        rows: list[tuple[Any, ...]] = list(zip(*table.columns))
    else:
        rows = [() for _ in table.provenance] if not table.columns else []
    names = table.schema.names
    seen: dict[tuple[Any, ...], int] = {}
    out_rows: list[tuple[Any, ...]] = []
    provs: list[RowProvenance] = []
    for row, prov in zip(rows, table.provenance):
        if row in seen:
            i = seen[row]
            provs[i] = RowProvenance.make(
                provs[i].lineage | prov.lineage,
                {c: provs[i].where_of(c) | prov.where_of(c) for c in names},
            )
        else:
            seen[row] = len(out_rows)
            out_rows.append(row)
            provs.append(prov)
    return ColumnarTable.from_rows(name or table.name, table.schema, out_rows, provs)


def order_by_c(
    table: ColumnarTable,
    keys: Sequence[tuple[str, bool]],
    *,
    name: str | None = None,
) -> ColumnarTable:
    """Stable multi-key sort over column vectors; NULLs last."""
    indices = list(range(table.n_rows))
    for colname, descending in reversed(keys):
        col = table.columns[table.schema.index_of(colname)]
        nones = [i for i in indices if col[i] is None]
        rest = [i for i in indices if col[i] is not None]
        rest.sort(key=col.__getitem__, reverse=descending)
        indices = rest + nones
    columns = [[col[i] for i in indices] for col in table.columns]
    provs = [table.provenance[i] for i in indices]
    return ColumnarTable(name or table.name, table.schema, columns, provs)


def limit_c(table: ColumnarTable, n: int, *, name: str | None = None) -> ColumnarTable:
    """First ``n`` rows."""
    if n < 0:
        raise QueryError("limit must be non-negative")
    columns = [col[:n] for col in table.columns]
    return ColumnarTable(
        name or table.name, table.schema, columns, list(table.provenance[:n])
    )


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------


def _resolve(name: str, catalog: Catalog, depth: int) -> ColumnarTable:
    if depth > _MAX_VIEW_DEPTH:
        raise QueryError(f"view nesting deeper than {_MAX_VIEW_DEPTH}; cycle?")
    if catalog.is_table(name):
        # Shallow wrapper around the cached transpose: vectors are shared
        # (never mutated), but the wrapper's ``name`` is ours to reassign
        # when a view renames its result.
        ct = ColumnarTable.from_table(catalog.table(name))
        wrapper = ColumnarTable(
            ct.name, ct.schema, ct.columns, ct.provenance, provider=ct.provider
        )
        wrapper._pcache = ct._pcache  # provenance is shared and immutable
        return wrapper
    if catalog.is_view(name):
        view = catalog.view(name)
        ct = _run(view.query, catalog, depth=depth + 1)
        ct.name = name  # views are named like the row engine names them
        return ct
    raise QueryError(f"unknown relation {name!r}")


def union_c(
    first: ColumnarTable, second: ColumnarTable, *, name: str | None = None
) -> ColumnarTable:
    """Bag union of column vectors; schemas must agree (names and types)."""
    if first.schema.names != second.schema.names:
        raise SchemaError(
            f"union schema mismatch: {first.schema.names} vs "
            f"{second.schema.names}"
        )
    for a, b in zip(first.schema, second.schema):
        if a.ctype is not b.ctype:
            raise SchemaError(f"union type mismatch on column {a.name!r}")
    columns = [
        list(left) + list(right)
        for left, right in zip(first.columns, second.columns)
    ]
    provenance = list(first.provenance) + list(second.provenance)
    return ColumnarTable(name or first.name, first.schema, columns, provenance)


def _conform_c(branch: ColumnarTable, head: ColumnarTable) -> ColumnarTable:
    """Rename ``branch`` columns positionally to ``head``'s (SQL set-op rule)."""
    if branch.schema.names == head.schema.names:
        return branch
    if len(branch.schema.names) != len(head.schema.names):
        raise QueryError(
            f"set operation arity mismatch: head has {len(head.schema.names)} "
            f"column(s) {head.schema.names}, branch has "
            f"{len(branch.schema.names)} {branch.schema.names}"
        )
    schema = Schema(
        Column(new.name, old.ctype, old.nullable)
        for old, new in zip(branch.schema, head.schema)
    )
    # Provenance `where` maps are keyed by column *name*, so they must be
    # re-keyed along with the schema — critical when the rename permutes
    # overlapping names (branch (z, k) → head (k, x) must not leave the
    # old `k` refs answering for the new `k`).
    new_to_old = dict(zip(head.schema.names, branch.schema.names))
    provenance = [p.projected(new_to_old) for p in branch.provenance]
    return ColumnarTable(
        branch.name, schema, branch.columns, provenance,
        provider=branch.provider,
    )


def _run(query: Query, catalog: Catalog, *, depth: int) -> ColumnarTable:
    current = _run_core(query, catalog, depth=depth)
    for clause in query.set_ops:
        branch = _run_core(clause.query, catalog, depth=depth)
        current = union_c(current, _conform_c(branch, current))
        if clause.op == "union":
            current = distinct_c(current)

    if query.order:
        current = order_by_c(current, list(query.order))

    if query.limit_n is not None:
        current = limit_c(current, query.limit_n)
    return current


def _run_core(query: Query, catalog: Catalog, *, depth: int) -> ColumnarTable:
    _ensure_select_consistency(query)

    # Vector fast path: fused typed-array kernels with bitset provenance
    # masks (see repro.relational.vector). When eligible it executes the
    # whole core in single passes and returns lazily-decoded provenance;
    # otherwise fall through to the object-columnar operators below.
    fast = try_vector_core(query, catalog)
    if fast is not None:
        current = ColumnarTable(
            fast.name, fast.schema, list(fast.columns), fast.provenance
        )
        if query.select_distinct:
            current = distinct_c(current)
        return current

    current = _resolve(query.source, catalog, depth)

    # Fused path: the final join of a non-aggregate query flows straight
    # into WHERE + SELECT without materializing intermediate provenance.
    fuse_last_join = bool(
        query.joins
        and not query.is_aggregate
        and query.select
        and query.having is None
    )
    joins = query.joins[:-1] if fuse_last_join else query.joins
    for clause in joins:
        right = _resolve(clause.table, catalog, depth)
        current = join_c(current, right, clause.on, how=clause.how)

    if fuse_last_join:
        clause = query.joins[-1]
        right = _resolve(clause.table, catalog, depth)
        current = join_filter_project_c(
            current, right, clause.on, clause.how, query.where, list(query.select)
        )
    elif query.is_aggregate:
        if query.where is not None:
            current = select_c(current, query.where)
        current = aggregate_c(current, query.group_by, query.aggregates)
        if query.having is not None:
            current = select_c(current, query.having)
        if query.select:
            current = project_c(current, list(query.select))
    else:
        if query.where is not None:
            if query.select and query.having is None:
                current = select_project_c(
                    current, query.where, list(query.select)
                )
            else:
                current = select_c(current, query.where)
                if query.having is not None:
                    raise QueryError("HAVING requires GROUP BY or aggregates")
                if query.select:
                    current = project_c(current, list(query.select))
        else:
            if query.having is not None:
                raise QueryError("HAVING requires GROUP BY or aggregates")
            if query.select:
                current = project_c(current, list(query.select))

    if query.select_distinct:
        current = distinct_c(current)

    return current


def execute_columnar(
    query: Query, catalog: Catalog, *, name: str | None = None
) -> Table:
    """Run ``query`` on the columnar path; result equals the row engine's."""
    result = _run(query, catalog, depth=0)
    return result.to_table(name)
