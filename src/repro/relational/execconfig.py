"""Execution configuration: which engine runs a query, and with what caching.

Two modes:

* ``"columnar"`` (default) — the batch executor in
  :mod:`repro.relational.columnar`, optionally fronted by the normalized-plan
  result cache;
* ``"row"`` — the row-at-a-time reference executor, never cached. Keeping
  the reference path cache-free is what lets the differential test suite
  treat it as ground truth.

The process default can be overridden with the ``REPRO_ENGINE_MODE``
environment variable (``row`` or ``columnar``), which is how the CI matrix
and benchmark harness flip engines without touching call sites.

``observe`` opts one config into :mod:`repro.obs` tracing: ``None`` (the
default) follows the process-wide switch (``repro.obs.enable()`` /
``REPRO_OBS``), ``True`` traces queries run under this config even when the
global switch is off, ``False`` silences them even when it is on.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.obs.trace import TRACER as _TRACER
from repro.relational.plancache import PlanCache, default_plan_cache

__all__ = [
    "ExecutionConfig",
    "get_default_config",
    "set_default_config",
    "ROW",
    "COLUMNAR",
]

_MODES = ("columnar", "row")


@dataclass(frozen=True)
class ExecutionConfig:
    """How :func:`repro.relational.engine.execute` should run a query."""

    mode: str = "columnar"
    use_plan_cache: bool = True
    plan_cache: PlanCache | None = field(default=None, compare=False)
    observe: bool | None = None  # None = follow repro.obs process switch

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown execution mode {self.mode!r}; expected one of {_MODES}"
            )

    def effective_plan_cache(self) -> PlanCache | None:
        """The cache this config routes through, or ``None`` when caching is
        off (disabled explicitly, or implicitly on the row reference path)."""
        if self.mode == "row" or not self.use_plan_cache:
            return None
        return self.plan_cache if self.plan_cache is not None else default_plan_cache()

    def with_mode(self, mode: str) -> "ExecutionConfig":
        return replace(self, mode=mode)

    def observing(self) -> bool:
        """Should executions under this config be traced right now?"""
        if self.observe is not None:
            return self.observe
        return _TRACER.active()


# Canonical configs for tests and benchmarks.
ROW = ExecutionConfig(mode="row")
COLUMNAR = ExecutionConfig(mode="columnar")


def _initial_default() -> ExecutionConfig:
    mode = os.environ.get("REPRO_ENGINE_MODE", "").strip().lower()
    if mode in _MODES:
        return ExecutionConfig(mode=mode)
    return ExecutionConfig()


_default_config = _initial_default()


def get_default_config() -> ExecutionConfig:
    """The process-wide config used when a call site passes none."""
    return _default_config


def set_default_config(config: ExecutionConfig) -> ExecutionConfig:
    """Replace the process-wide default; returns the previous one."""
    global _default_config
    previous = _default_config
    _default_config = config
    return previous
