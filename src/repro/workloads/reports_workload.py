"""Report-workload and evolution-stream generators.

"Having dozens or even hundreds of reports is common even in relatively
small applications" (§5). The generator produces a skewed mix of aggregate
and detail reports over a wide-view universe; the evolution generator
produces the change stream (§2's robustness challenge) replayed by FIG5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.relational.algebra import AggSpec
from repro.relational.expressions import Col, Lit
from repro.relational.query import Query
from repro.reports.definition import ReportDefinition
from repro.reports.evolution import EvolutionEvent, EvolutionKind
from repro.workloads.distributions import weighted_choice, zipf_choice

__all__ = ["WorkloadSpec", "generate_report_workload", "generate_evolution_stream"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic report workload over one universe view."""

    universe: str  # view name reports select FROM
    categorical: tuple[str, ...]  # group-by / filter candidates
    measures: tuple[str, ...]  # numeric columns for SUM/AVG
    detail_columns: tuple[str, ...]  # columns detail reports may show
    audiences: tuple[frozenset[str], ...]  # audience candidates
    purposes: tuple[str, ...]
    filter_values: dict[str, tuple] = None  # type: ignore[assignment]
    n_reports: int = 30
    aggregate_fraction: float = 0.7
    seed: int = 11
    #: Columns a *future data feed* would add (outside today's warehouse).
    #: Only evolution streams with ``new_feed_rate > 0`` use them.
    new_feed_columns: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.categorical or not self.measures:
            raise WorkloadError("workload needs categorical and measure columns")
        if not 0.0 <= self.aggregate_fraction <= 1.0:
            raise WorkloadError("aggregate_fraction must be in [0, 1]")
        if self.filter_values is None:
            object.__setattr__(self, "filter_values", {})


def generate_report_workload(spec: WorkloadSpec) -> list[ReportDefinition]:
    """Deterministically generate ``spec.n_reports`` report definitions."""
    rng = random.Random(spec.seed)
    reports: list[ReportDefinition] = []
    for n in range(spec.n_reports):
        name = f"rpt_{n:03d}"
        audience = rng.choice(list(spec.audiences))
        purpose = rng.choice(list(spec.purposes))
        if rng.random() < spec.aggregate_fraction:
            definition = _aggregate_report(spec, rng, name, audience, purpose)
        else:
            definition = _detail_report(spec, rng, name, audience, purpose)
        reports.append(definition)
    return reports


def _maybe_filter(spec: WorkloadSpec, rng: random.Random, query: Query) -> Query:
    if spec.filter_values and rng.random() < 0.5:
        column = rng.choice(sorted(spec.filter_values))
        value = rng.choice(list(spec.filter_values[column]))
        from repro.relational.expressions import Comparison

        return query.filter(Comparison("=", Col(column), Lit(value)))
    return query


def _aggregate_report(
    spec: WorkloadSpec,
    rng: random.Random,
    name: str,
    audience: frozenset[str],
    purpose: str,
) -> ReportDefinition:
    n_groups = 1 if rng.random() < 0.6 else 2
    group_by: list[str] = []
    while len(group_by) < n_groups:
        candidate = zipf_choice(rng, spec.categorical)
        if candidate not in group_by:
            group_by.append(candidate)
    measure = zipf_choice(rng, spec.measures)
    aggs = [AggSpec("count", None, "n_records")]
    if rng.random() < 0.8:
        func = weighted_choice(rng, {"sum": 0.6, "avg": 0.4})
        aggs.append(AggSpec(func, measure, f"{func}_{measure}"))
    query = Query.from_(spec.universe)
    query = _maybe_filter(spec, rng, query)
    query = query.group(*group_by).agg(*aggs)
    query = query.project(*group_by, *(a.alias for a in aggs))
    return ReportDefinition(
        name=name,
        title=f"{' x '.join(group_by)} summary",
        query=query,
        audience=audience,
        purpose=purpose,
        description=f"aggregate report by {group_by}",
    )


def _detail_report(
    spec: WorkloadSpec,
    rng: random.Random,
    name: str,
    audience: frozenset[str],
    purpose: str,
) -> ReportDefinition:
    n_columns = rng.randint(2, max(2, min(4, len(spec.detail_columns))))
    columns: list[str] = []
    while len(columns) < n_columns:
        candidate = zipf_choice(rng, spec.detail_columns)
        if candidate not in columns:
            columns.append(candidate)
    query = Query.from_(spec.universe)
    query = _maybe_filter(spec, rng, query)
    query = query.project(*columns)
    return ReportDefinition(
        name=name,
        title=f"{', '.join(columns)} detail",
        query=query,
        audience=audience,
        purpose=purpose,
        description=f"detail report showing {columns}",
    )


_EVENT_WEIGHTS = {
    EvolutionKind.ADD_REPORT: 0.30,
    EvolutionKind.ADD_COLUMN: 0.20,
    EvolutionKind.CHANGE_FILTER: 0.18,
    EvolutionKind.CHANGE_GROUPING: 0.12,
    EvolutionKind.CHANGE_AUDIENCE: 0.12,
    EvolutionKind.DROP_REPORT: 0.08,
}


def generate_evolution_stream(
    spec: WorkloadSpec,
    existing: list[ReportDefinition],
    *,
    n_events: int,
    seed: int = 17,
    new_feed_rate: float = 0.0,
) -> list[EvolutionEvent]:
    """A deterministic stream of ``n_events`` catalog changes.

    The stream is *consistent*: it tracks which reports are live (and
    whether they aggregate) so every event is applicable when replayed in
    order against a catalog seeded with ``existing``.

    With ``new_feed_rate > 0`` (and ``spec.new_feed_columns`` set), some
    ADD_REPORT events request a column from a data feed the warehouse does
    not carry yet — these reports cannot execute against today's universe,
    so streams with new feeds are for *coverage/stability analysis only*.
    """
    rng = random.Random(seed)
    live: dict[str, ReportDefinition] = {r.name: r for r in existing}
    next_id = len(existing)
    events: list[EvolutionEvent] = []
    while len(events) < n_events:
        kind = weighted_choice(rng, _EVENT_WEIGHTS)
        if kind is EvolutionKind.ADD_REPORT:
            name = f"rpt_{next_id:03d}"
            next_id += 1
            audience = rng.choice(list(spec.audiences))
            purpose = rng.choice(list(spec.purposes))
            if rng.random() < spec.aggregate_fraction:
                definition = _aggregate_report(spec, rng, name, audience, purpose)
            else:
                definition = _detail_report(spec, rng, name, audience, purpose)
            if spec.new_feed_columns and rng.random() < new_feed_rate:
                feed_column = rng.choice(list(spec.new_feed_columns))
                definition = definition.with_query(
                    definition.query.project(
                        *(definition.query.select or ()), feed_column
                    )
                    if not definition.query.is_aggregate
                    else definition.query.group(
                        *definition.query.group_by, feed_column
                    ).project(
                        feed_column, *(definition.query.select or ())
                    )
                )
            live[name] = definition
            events.append(
                EvolutionEvent(kind=kind, report=name, definition=definition)
            )
            continue
        if not live:
            continue
        target_name = rng.choice(sorted(live))
        target = live[target_name]
        if kind is EvolutionKind.DROP_REPORT:
            del live[target_name]
            events.append(EvolutionEvent(kind=kind, report=target_name))
        elif kind is EvolutionKind.ADD_COLUMN:
            candidates = [
                c
                for c in (spec.categorical + spec.detail_columns)
                if c not in (target.columns() or ())
            ]
            if not candidates:
                continue
            column = rng.choice(sorted(set(candidates)))
            events.append(
                EvolutionEvent(kind=kind, report=target_name, column=column)
            )
            live[target_name] = target.with_query(target.query)  # bump version proxy
        elif kind is EvolutionKind.CHANGE_FILTER:
            if not spec.filter_values:
                continue
            column = rng.choice(sorted(spec.filter_values))
            value = rng.choice(list(spec.filter_values[column]))
            from repro.relational.expressions import Comparison

            events.append(
                EvolutionEvent(
                    kind=kind,
                    report=target_name,
                    predicate=Comparison("=", Col(column), Lit(value)),
                )
            )
        elif kind is EvolutionKind.CHANGE_GROUPING:
            if not target.query.is_aggregate:
                continue
            candidates = [
                c for c in spec.categorical if c not in target.query.group_by
            ]
            if not candidates:
                continue
            events.append(
                EvolutionEvent(
                    kind=kind,
                    report=target_name,
                    column=rng.choice(sorted(candidates)),
                )
            )
        elif kind is EvolutionKind.CHANGE_AUDIENCE:
            audience = rng.choice(list(spec.audiences))
            if audience == target.audience:
                continue
            events.append(
                EvolutionEvent(kind=kind, report=target_name, audience=audience)
            )
            live[target_name] = target.with_audience(audience)
    return events
