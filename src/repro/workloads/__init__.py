"""Synthetic workloads: healthcare data, report workloads, PLA requirements."""

from repro.workloads.distributions import (
    partition_sizes,
    sample_date,
    weighted_choice,
    zipf_choice,
)
from repro.workloads.healthcare import (
    DRUG_COSTS,
    DRUG_DISEASES,
    HealthcareConfig,
    HealthcareData,
    generate,
    paper_drugcost,
    paper_familydoctor,
    paper_policies,
    paper_prescriptions,
)
from repro.workloads.pla_workload import REQUIREMENT_MIX, generate_requirements
from repro.workloads.reports_workload import (
    WorkloadSpec,
    generate_evolution_stream,
    generate_report_workload,
)

__all__ = [
    "DRUG_COSTS",
    "DRUG_DISEASES",
    "HealthcareConfig",
    "HealthcareData",
    "REQUIREMENT_MIX",
    "WorkloadSpec",
    "generate",
    "generate_evolution_stream",
    "generate_report_workload",
    "generate_requirements",
    "paper_drugcost",
    "paper_familydoctor",
    "paper_policies",
    "paper_prescriptions",
    "partition_sizes",
    "sample_date",
    "weighted_choice",
    "zipf_choice",
]
