"""PLA requirement-workload generator (for the expressiveness benchmark).

Generates a realistic mix of the six requirement kinds with the skew our
project experience suggests: attribute-access rules dominate, but the
report-specific kinds (thresholds, intensional conditions) are a substantial
minority — exactly the ones generic policy languages cannot test (§1).
"""

from __future__ import annotations

import random

from repro.core.annotations import (
    AggregationThreshold,
    Annotation,
    AnonymizationRequirement,
    AttributeAccess,
    IntegrationPermission,
    IntensionalCondition,
    JoinPermission,
)
from repro.relational.expressions import Col, Comparison, Lit
from repro.workloads.distributions import weighted_choice

__all__ = ["REQUIREMENT_MIX", "generate_requirements"]

#: Relative frequency of requirement kinds in an elicited PLA portfolio.
REQUIREMENT_MIX: dict[str, float] = {
    "attribute_access": 0.30,
    "aggregation_threshold": 0.15,
    "anonymization": 0.20,
    "join_permission": 0.10,
    "integration_permission": 0.05,
    "intensional_condition": 0.20,
}

_ATTRIBUTES = ("patient", "doctor", "disease", "drug", "zip", "birth_year")
_ROLES = ("analyst", "auditor", "health_director", "municipality_official")
_RELATIONS = (
    "hospital/prescriptions",
    "municipality/familydoctor",
    "municipality/residents",
    "laboratory/exams",
    "health_agency/drugcost",
)
_SENSITIVE_VALUES = ("HIV", "depression", "cancer")


def generate_requirements(n: int, *, seed: int = 23) -> list[Annotation]:
    """Generate ``n`` PLA requirements with the :data:`REQUIREMENT_MIX` skew."""
    rng = random.Random(seed)
    out: list[Annotation] = []
    for _ in range(n):
        kind = weighted_choice(rng, REQUIREMENT_MIX)
        if kind == "attribute_access":
            n_roles = rng.randint(1, 2)
            out.append(
                AttributeAccess(
                    attribute=rng.choice(_ATTRIBUTES),
                    allowed_roles=frozenset(rng.sample(_ROLES, n_roles)),
                )
            )
        elif kind == "aggregation_threshold":
            out.append(
                AggregationThreshold(
                    min_group_size=rng.choice((3, 5, 10, 20)),
                    scope=rng.choice(_ATTRIBUTES),
                )
            )
        elif kind == "anonymization":
            out.append(
                AnonymizationRequirement(
                    attribute=rng.choice(("patient", "doctor", "zip")),
                    method=rng.choice(("pseudonymize", "suppress", "generalize")),
                    generalization_level=rng.randint(1, 2),
                )
            )
        elif kind == "join_permission":
            left, right = rng.sample(_RELATIONS, 2)
            out.append(JoinPermission(left=left, right=right, allowed=False))
        elif kind == "integration_permission":
            out.append(
                IntegrationPermission(
                    owner=rng.choice(("municipality", "laboratory", "hospital")),
                    allowed=rng.random() < 0.5,
                )
            )
        else:  # intensional_condition
            out.append(
                IntensionalCondition(
                    attribute=rng.choice(("disease", "patient", "doctor")),
                    condition=Comparison(
                        "!=", Col("disease"), Lit(rng.choice(_SENSITIVE_VALUES))
                    ),
                    action=rng.choice(("suppress_cell", "suppress_row")),
                )
            )
    return out
