"""Synthetic healthcare scenario generator (the paper's Fig 1 world).

The paper's running example is a Trentino healthcare BI outsourcing scenario:
hospitals, medical laboratories, family doctors, and a municipality provide
patient data (under consent agreements) to a BI provider that builds reports
for a health agency. Real data is obviously unavailable, so this module
generates a deterministic synthetic equivalent, including the exact toy
tables printed in the paper's Figures 2–4 (Prescriptions, Policies,
FamilyDoctor, DrugCost) as fixtures.

Schemas (provider → tables):

* ``hospital``: ``prescriptions(patient, doctor, drug, disease, date)``
* ``municipality``: ``familydoctor(patient, doctor)``,
  ``residents(patient, zip, birth_year, gender)``
* ``laboratory``: ``exams(patient, exam_type, result, date)``
* ``health_agency``: ``drugcost(drug, cost)``
* consent registry (source-level policy metadata, Fig 2b):
  ``policies(patient, show_name, show_disease)``
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import ColumnType
from repro.workloads.distributions import sample_date, weighted_choice, zipf_choice

__all__ = [
    "HealthcareConfig",
    "HealthcareData",
    "generate",
    "paper_prescriptions",
    "paper_policies",
    "paper_familydoctor",
    "paper_drugcost",
    "DRUG_COSTS",
    "DRUG_DISEASES",
    "PRESCRIPTIONS_SCHEMA",
    "POLICIES_SCHEMA",
    "FAMILYDOCTOR_SCHEMA",
    "DRUGCOST_SCHEMA",
    "RESIDENTS_SCHEMA",
    "EXAMS_SCHEMA",
    "ADMISSIONS_SCHEMA",
    "BILLING_SCHEMA",
    "STAFF_SCHEMA",
    "EQUIPMENT_SCHEMA",
]

# Drug catalogue. The five paper drugs come first (with the paper's costs,
# Fig 3); the rest extend the catalogue for larger workloads.
DRUG_COSTS: dict[str, int] = {
    "DD": 50,
    "DM": 10,
    "DH": 60,
    "DV": 30,
    "DR": 10,
    "DA": 25,
    "DB": 15,
    "DC": 45,
    "DE": 20,
    "DF": 35,
}

# Disease each drug treats; DH/DV treat HIV as in the paper's figures.
DRUG_DISEASES: dict[str, str] = {
    "DD": "depression",
    "DM": "diabetes",
    "DH": "HIV",
    "DV": "HIV",
    "DR": "asthma",
    "DA": "hypertension",
    "DB": "flu",
    "DC": "cancer",
    "DE": "diabetes",
    "DF": "asthma",
}

SENSITIVE_DISEASES = frozenset({"HIV", "depression", "cancer"})

_DISEASE_WEIGHTS = {
    "asthma": 0.24,
    "diabetes": 0.20,
    "hypertension": 0.18,
    "flu": 0.16,
    "HIV": 0.08,
    "depression": 0.08,
    "cancer": 0.06,
}

_EXAM_TYPES = ("blood_panel", "hiv_test", "glucose", "xray", "cholesterol")

PRESCRIPTIONS_SCHEMA = Schema(
    [
        Column("patient", ColumnType.STRING, nullable=False),
        Column("doctor", ColumnType.STRING),
        Column("drug", ColumnType.STRING, nullable=False),
        Column("disease", ColumnType.STRING, nullable=False),
        Column("date", ColumnType.DATE, nullable=False),
    ]
)

POLICIES_SCHEMA = Schema(
    [
        Column("patient", ColumnType.STRING, nullable=False),
        Column("show_name", ColumnType.BOOL, nullable=False),
        Column("show_disease", ColumnType.BOOL, nullable=False),
    ]
)

FAMILYDOCTOR_SCHEMA = Schema(
    [
        Column("patient", ColumnType.STRING, nullable=False),
        Column("doctor", ColumnType.STRING, nullable=False),
    ]
)

DRUGCOST_SCHEMA = Schema(
    [
        Column("drug", ColumnType.STRING, nullable=False),
        Column("cost", ColumnType.INT, nullable=False),
    ]
)

RESIDENTS_SCHEMA = Schema(
    [
        Column("patient", ColumnType.STRING, nullable=False),
        Column("zip", ColumnType.STRING, nullable=False),
        Column("birth_year", ColumnType.INT, nullable=False),
        Column("gender", ColumnType.STRING, nullable=False),
    ]
)

EXAMS_SCHEMA = Schema(
    [
        Column("patient", ColumnType.STRING, nullable=False),
        Column("exam_type", ColumnType.STRING, nullable=False),
        Column("result", ColumnType.FLOAT),
        Column("date", ColumnType.DATE, nullable=False),
    ]
)

ADMISSIONS_SCHEMA = Schema(
    [
        Column("patient", ColumnType.STRING, nullable=False),
        Column("ward", ColumnType.STRING, nullable=False),
        Column("admit_date", ColumnType.DATE, nullable=False),
        Column("discharge_date", ColumnType.DATE),
    ]
)

BILLING_SCHEMA = Schema(
    [
        Column("patient", ColumnType.STRING, nullable=False),
        Column("amount", ColumnType.FLOAT, nullable=False),
        Column("status", ColumnType.STRING, nullable=False),
        Column("insurer", ColumnType.STRING),
    ]
)

STAFF_SCHEMA = Schema(
    [
        Column("doctor", ColumnType.STRING, nullable=False),
        Column("department", ColumnType.STRING, nullable=False),
        Column("hire_year", ColumnType.INT, nullable=False),
    ]
)

EQUIPMENT_SCHEMA = Schema(
    [
        Column("device", ColumnType.STRING, nullable=False),
        Column("calibrated", ColumnType.BOOL, nullable=False),
        Column("last_service", ColumnType.DATE),
    ]
)

_GIVEN_NAMES = (
    "Alice", "Bob", "Chris", "Math", "Dana", "Elio", "Furio", "Gaia",
    "Hana", "Ivo", "Jana", "Karl", "Lia", "Marta", "Nino", "Olga",
    "Piero", "Rita", "Sara", "Tino",
)

_DOCTOR_NAMES = (
    "Luis", "Anne", "Mark", "Nadia", "Otto", "Pia", "Remo", "Silvia",
    "Teo", "Ugo", "Vera", "Walter",
)


@dataclass(frozen=True)
class HealthcareConfig:
    """Parameters for the synthetic healthcare world."""

    n_patients: int = 200
    n_doctors: int = 12
    n_prescriptions: int = 1000
    n_exams: int = 400
    seed: int = 7
    missing_doctor_rate: float = 0.05  # the paper's Chris row has no doctor
    consent_show_name_rate: float = 0.7
    consent_show_disease_rate: float = 0.25
    zip_codes: tuple[str, ...] = ("38100", "38121", "38122", "38123")

    def __post_init__(self) -> None:
        if self.n_patients <= 0 or self.n_doctors <= 0:
            raise WorkloadError("need at least one patient and one doctor")
        if self.n_prescriptions < 0 or self.n_exams < 0:
            raise WorkloadError("row counts must be non-negative")
        if not 0.0 <= self.missing_doctor_rate <= 1.0:
            raise WorkloadError("missing_doctor_rate must be in [0, 1]")


@dataclass
class HealthcareData:
    """All generated tables, keyed the way providers hold them."""

    config: HealthcareConfig
    prescriptions: Table
    policies: Table
    familydoctor: Table
    drugcost: Table
    residents: Table
    exams: Table
    # Tables the providers hold but the BI application never extracts —
    # the substrate of §3's over-engineering risk ("the source may have a
    # large and complex database, the BI provider may only need a part").
    admissions: Table | None = None
    billing: Table | None = None
    staff: Table | None = None
    equipment: Table | None = None
    patients: list[str] = field(default_factory=list)
    doctors: list[str] = field(default_factory=list)

    def all_tables(self) -> dict[str, Table]:
        """Name → table for catalog registration (exported tables only)."""
        return {
            "prescriptions": self.prescriptions,
            "policies": self.policies,
            "familydoctor": self.familydoctor,
            "drugcost": self.drugcost,
            "residents": self.residents,
            "exams": self.exams,
        }

    def unexported_tables(self) -> dict[str, Table]:
        """Provider-held tables that never reach the BI pipeline."""
        out: dict[str, Table] = {}
        for name in ("admissions", "billing", "staff", "equipment"):
            table = getattr(self, name)
            if table is not None:
                out[name] = table
        return out


def _patient_names(n: int) -> list[str]:
    """First patients carry the paper's names; the rest are synthetic."""
    names = list(_GIVEN_NAMES[: min(n, len(_GIVEN_NAMES))])
    names.extend(f"Pat{i:04d}" for i in range(len(names), n))
    return names


def _doctor_names(n: int) -> list[str]:
    names = list(_DOCTOR_NAMES[: min(n, len(_DOCTOR_NAMES))])
    names.extend(f"Doc{i:03d}" for i in range(len(names), n))
    return names


def generate(config: HealthcareConfig | None = None) -> HealthcareData:
    """Generate the full synthetic healthcare world deterministically."""
    cfg = config if config is not None else HealthcareConfig()
    rng = random.Random(cfg.seed)
    patients = _patient_names(cfg.n_patients)
    doctors = _doctor_names(cfg.n_doctors)

    # Each patient has one dominant disease; prescriptions mostly follow it.
    patient_disease = {p: weighted_choice(rng, _DISEASE_WEIGHTS) for p in patients}
    drugs_by_disease: dict[str, list[str]] = {}
    for drug, disease in DRUG_DISEASES.items():
        drugs_by_disease.setdefault(disease, []).append(drug)

    prescriptions = Table("prescriptions", PRESCRIPTIONS_SCHEMA, provider="hospital")
    for _ in range(cfg.n_prescriptions):
        patient = zipf_choice(rng, patients)
        disease = patient_disease[patient]
        drug = rng.choice(drugs_by_disease[disease])
        doctor = None if rng.random() < cfg.missing_doctor_rate else rng.choice(doctors)
        prescriptions.insert(
            (patient, doctor, drug, disease, sample_date(rng))
        )

    policies = Table("policies", POLICIES_SCHEMA, provider="consent_registry")
    for patient in patients:
        show_name = rng.random() < cfg.consent_show_name_rate
        # Patients with sensitive diseases almost never consent to disease
        # disclosure, which is what makes the intensional HIV rule binding.
        sensitive = patient_disease[patient] in SENSITIVE_DISEASES
        show_disease = (not sensitive) and rng.random() < cfg.consent_show_disease_rate
        policies.insert((patient, show_name, show_disease))

    familydoctor = Table("familydoctor", FAMILYDOCTOR_SCHEMA, provider="municipality")
    for patient in patients:
        familydoctor.insert((patient, rng.choice(doctors)))

    drugcost = Table("drugcost", DRUGCOST_SCHEMA, provider="health_agency")
    for drug, cost in DRUG_COSTS.items():
        drugcost.insert((drug, cost))

    residents = Table("residents", RESIDENTS_SCHEMA, provider="municipality")
    for patient in patients:
        residents.insert(
            (
                patient,
                rng.choice(cfg.zip_codes),
                rng.randint(1930, 2000),
                rng.choice(("F", "M")),
            )
        )

    exams = Table("exams", EXAMS_SCHEMA, provider="laboratory")
    for _ in range(cfg.n_exams):
        patient = zipf_choice(rng, patients)
        exam_type = (
            "hiv_test"
            if patient_disease[patient] == "HIV" and rng.random() < 0.5
            else rng.choice(_EXAM_TYPES)
        )
        result = round(rng.uniform(0.0, 200.0), 1)
        exams.insert((patient, exam_type, result, sample_date(rng)))

    admissions = Table("admissions", ADMISSIONS_SCHEMA, provider="hospital")
    wards = ("cardiology", "oncology", "general", "pediatrics")
    for _ in range(cfg.n_patients // 2):
        patient = zipf_choice(rng, patients)
        admissions.insert(
            (patient, rng.choice(wards), sample_date(rng), sample_date(rng))
        )

    billing = Table("billing", BILLING_SCHEMA, provider="hospital")
    for _ in range(cfg.n_patients):
        billing.insert(
            (
                zipf_choice(rng, patients),
                round(rng.uniform(20.0, 2000.0), 2),
                rng.choice(("paid", "pending", "disputed")),
                rng.choice(("INPS", "Azimut", None)),
            )
        )

    staff = Table("staff", STAFF_SCHEMA, provider="hospital")
    for doctor in doctors:
        staff.insert(
            (doctor, rng.choice(("medicine", "surgery", "radiology")),
             rng.randint(1985, 2007))
        )

    equipment = Table("equipment", EQUIPMENT_SCHEMA, provider="laboratory")
    for n in range(10):
        equipment.insert((f"DEV{n:02d}", rng.random() < 0.8, sample_date(rng)))

    return HealthcareData(
        config=cfg,
        prescriptions=prescriptions,
        policies=policies,
        familydoctor=familydoctor,
        drugcost=drugcost,
        residents=residents,
        exams=exams,
        admissions=admissions,
        billing=billing,
        staff=staff,
        equipment=equipment,
        patients=patients,
        doctors=doctors,
    )


# -- the paper's literal figure tables, as fixtures --------------------------


def paper_prescriptions() -> Table:
    """The Prescriptions table exactly as printed in Figures 2–4."""
    table = Table("prescriptions", PRESCRIPTIONS_SCHEMA, provider="hospital")
    table.insert_many(
        [
            ("Alice", "Luis", "DH", "HIV", "12/02/2007"),
            ("Chris", None, "DV", "HIV", "10/03/2007"),
            ("Bob", "Anne", "DR", "asthma", "10/08/2007"),
            ("Math", "Mark", "DM", "diabetes", "15/10/2007"),
            ("Alice", "Luis", "DR", "asthma", "15/04/2008"),
        ]
    )
    return table


def paper_policies() -> Table:
    """The Policies metadata table from Figure 2(b)."""
    table = Table("policies", POLICIES_SCHEMA, provider="consent_registry")
    table.insert_many(
        [
            ("Alice", True, False),
            ("Bob", True, False),
            ("Math", False, False),
            ("Chris", True, True),
        ]
    )
    return table


def paper_familydoctor() -> Table:
    """The FamilyDoctor table from Figure 3."""
    table = Table("familydoctor", FAMILYDOCTOR_SCHEMA, provider="municipality")
    table.insert_many(
        [
            ("Alice", "Luis"),
            ("Chris", "Anne"),
            ("Bob", "Anne"),
            ("Math", "Mark"),
        ]
    )
    return table


def paper_drugcost() -> Table:
    """The DrugCost table from Figure 3."""
    table = Table("drugcost", DRUGCOST_SCHEMA, provider="health_agency")
    table.insert_many(
        [("DD", 50), ("DM", 10), ("DH", 60), ("DV", 30), ("DR", 10)]
    )
    return table
