"""Seeded sampling helpers shared by the workload generators.

All generators in :mod:`repro.workloads` draw from a ``random.Random`` seeded
explicitly, so every experiment is reproducible run-to-run.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

from repro.errors import WorkloadError

__all__ = ["zipf_choice", "weighted_choice", "sample_date", "partition_sizes"]

T = TypeVar("T")


def zipf_choice(rng: random.Random, items: Sequence[T], *, s: float = 1.2) -> T:
    """Pick one item with a Zipf(s) popularity skew over list position.

    Realistic BI workloads are skewed: a few drugs/reports dominate. The
    first items of ``items`` are the most popular.
    """
    if not items:
        raise WorkloadError("cannot sample from an empty sequence")
    weights = [1.0 / (rank**s) for rank in range(1, len(items) + 1)]
    return rng.choices(list(items), weights=weights, k=1)[0]


def weighted_choice(rng: random.Random, table: dict[T, float]) -> T:
    """Pick one key of ``table`` with probability proportional to its value."""
    if not table:
        raise WorkloadError("cannot sample from an empty weight table")
    items = list(table.items())
    return rng.choices(
        [key for key, _ in items], weights=[w for _, w in items], k=1
    )[0]


def sample_date(rng: random.Random, year_lo: int = 2007, year_hi: int = 2008) -> str:
    """An ISO date string uniformly within [year_lo, year_hi].

    Returned as a string; table insertion coerces it to a date. Day is capped
    at 28 so every (year, month) combination is valid.
    """
    if year_lo > year_hi:
        raise WorkloadError("year_lo must not exceed year_hi")
    year = rng.randint(year_lo, year_hi)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"


def partition_sizes(total: int, parts: int, rng: random.Random) -> list[int]:
    """Split ``total`` into ``parts`` non-negative sizes, roughly even ±jitter."""
    if parts <= 0:
        raise WorkloadError("parts must be positive")
    if total < 0:
        raise WorkloadError("total must be non-negative")
    base = total // parts
    sizes = [base] * parts
    for _ in range(total - base * parts):
        sizes[rng.randrange(parts)] += 1
    return sizes
