"""Virtual-Private-Database-style automatic query rewriting.

The paper's §3 lists "automatic query rewriting techniques, such as those
found in commercial databases like Oracle Virtual Private Database (VPD) or
in the Hippocratic Database" as source-level enforcement mechanisms. This
module implements that mechanism over our engine: per-relation row-level
predicates (possibly context-dependent) and column masks are injected into
every query before execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import PolicyError, QueryError
from repro.policy.subjects import AccessContext
from repro.relational.catalog import Catalog
from repro.relational.engine import execute
from repro.relational.expressions import Expr, Lit
from repro.relational.query import Query
from repro.relational.table import Table

__all__ = ["ColumnMask", "VPDRule", "VPDPolicy"]

PredicateFactory = Callable[[AccessContext], Expr | None]


@dataclass(frozen=True)
class ColumnMask:
    """Replace a column's values with a constant (default NULL) on read."""

    column: str
    replacement: object = None

    def as_select_item(self) -> tuple[str, Expr]:
        return (self.column, Lit(self.replacement))


@dataclass
class VPDRule:
    """Row predicate and column masks applied to one relation.

    ``predicate`` may be a fixed expression or a factory called with the
    access context (Oracle VPD's policy function); returning ``None`` means
    "no row restriction for this context".
    """

    relation: str
    predicate: Expr | PredicateFactory | None = None
    masks: tuple[ColumnMask, ...] = ()
    exempt_roles: frozenset[str] = frozenset()

    def predicate_for(self, context: AccessContext) -> Expr | None:
        if any(context.user.has_role(role) for role in self.exempt_roles):
            return None
        if self.predicate is None:
            return None
        if isinstance(self.predicate, Expr):
            return self.predicate
        return self.predicate(context)

    def masks_for(self, context: AccessContext) -> tuple[ColumnMask, ...]:
        if any(context.user.has_role(role) for role in self.exempt_roles):
            return ()
        return self.masks


@dataclass
class VPDPolicy:
    """A set of VPD rules plus the rewrite/execute entry points."""

    rules: dict[str, VPDRule] = field(default_factory=dict)

    def add_rule(self, rule: VPDRule) -> VPDRule:
        if rule.relation in self.rules:
            raise PolicyError(f"VPD rule for {rule.relation!r} already exists")
        self.rules[rule.relation] = rule
        return rule

    def rewrite(self, query: Query, catalog: Catalog, context: AccessContext) -> Query:
        """Inject predicates/masks for every *base* relation the query touches.

        Predicates attach at the outer WHERE (sound for inner joins and for
        non-null-extended relations; rules over any null-extended side of an
        outer join — the right side of LEFT, the accumulated left side of
        RIGHT, both sides of FULL — are rejected rather than silently
        weakened).
        """
        rewritten = query
        n_head = 1 + len(query.joins)
        for position, relation in enumerate(query.referenced_relations()):
            bases = catalog.base_relations(relation)
            for base in sorted(bases):
                rule = self.rules.get(base)
                if rule is None:
                    continue
                null_extended = (
                    0 < position < n_head
                    and query.joins[position - 1].how in ("left", "full")
                ) or (
                    position < n_head
                    and any(
                        clause.how in ("right", "full")
                        for clause in query.joins[position:]
                    )
                )
                if null_extended:
                    raise QueryError(
                        f"VPD rule on {base!r} cannot be enforced on the "
                        "null-extended side of an outer join; rewrite the query"
                    )
                predicate = rule.predicate_for(context)
                if predicate is not None:
                    rewritten = rewritten.filter(predicate)
                rewritten = self._apply_masks(
                    rewritten, rule.masks_for(context), catalog, relation
                )
        return rewritten

    def _apply_masks(
        self,
        query: Query,
        masks: tuple[ColumnMask, ...],
        catalog: Catalog,
        relation: str,
    ) -> Query:
        if not masks:
            return query
        masked_names = {m.column for m in masks}
        if query.is_aggregate:
            # Masked columns must not feed aggregates or grouping at all.
            used = set(query.group_by) | {
                a.column for a in query.aggregates if a.column is not None
            }
            blocked = used & masked_names
            if blocked:
                raise QueryError(
                    f"query aggregates over masked column(s) {sorted(blocked)}"
                )
            return query
        if query.select:
            new_items = []
            for item in query.select:
                if isinstance(item, str) and item in masked_names:
                    mask = next(m for m in masks if m.column == item)
                    new_items.append(mask.as_select_item())
                elif not isinstance(item, str) and (
                    item[1].columns() & masked_names
                ):
                    raise QueryError(
                        f"computed column {item[0]!r} reads masked column(s)"
                    )
                else:
                    new_items.append(item)
            return query.project(*new_items)
        # SELECT *: expand to the relation's full column list, masking as we go.
        names = self._output_names(catalog, relation)
        items: list[str | tuple[str, Expr]] = []
        for name in names:
            if name in masked_names:
                mask = next(m for m in masks if m.column == name)
                items.append(mask.as_select_item())
            else:
                items.append(name)
        return query.project(*items)

    @staticmethod
    def _output_names(catalog: Catalog, relation: str) -> tuple[str, ...]:
        if catalog.is_table(relation):
            return catalog.table(relation).schema.names
        view_query = catalog.view(relation).query
        names = view_query.output_names()
        if names is None:
            raise QueryError(
                f"cannot expand SELECT * through view {relation!r} with SELECT *"
            )
        return names

    def run(
        self,
        query: Query,
        catalog: Catalog,
        context: AccessContext,
        *,
        name: str | None = None,
    ) -> Table:
        """Rewrite then execute — the VPD enforcement point."""
        return execute(self.rewrite(query, catalog, context), catalog, name=name)
