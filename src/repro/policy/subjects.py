"""Subjects of privacy policies: users, roles, purposes, access contexts.

The paper's information consumers are report users acting in roles
(health-agency analyst, auditor, municipality official) for declared
purposes (reimbursement, quality-of-care analysis, epidemiology...).
Purposes form a tree, as in purpose-based access control (P-RBAC): an
authorization for a purpose covers its sub-purposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PolicyError

__all__ = ["Role", "User", "Purpose", "PurposeTree", "AccessContext", "SubjectRegistry"]


@dataclass(frozen=True)
class Role:
    """A named role; users hold roles, PLAs grant access to roles."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise PolicyError("role name must be non-empty")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class User:
    """A report consumer with a set of roles."""

    name: str
    roles: frozenset[Role] = frozenset()

    def has_role(self, role: Role | str) -> bool:
        wanted = role if isinstance(role, Role) else Role(role)
        return wanted in self.roles


@dataclass(frozen=True)
class Purpose:
    """A node in the purpose tree, named by its path (e.g. ``admin/reimbursement``)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise PolicyError("purpose name must be non-empty")

    def is_descendant_of(self, other: "Purpose") -> bool:
        """True if ``self`` equals ``other`` or lies under it in the tree."""
        return self.name == other.name or self.name.startswith(other.name + "/")

    def __str__(self) -> str:
        return self.name


class PurposeTree:
    """Registry of declared purposes with containment queries."""

    def __init__(self, purposes: list[str] | None = None) -> None:
        self._purposes: dict[str, Purpose] = {}
        for name in purposes or []:
            self.declare(name)

    def declare(self, name: str) -> Purpose:
        """Declare a purpose (and implicitly its ancestors)."""
        parts = name.split("/")
        for i in range(1, len(parts) + 1):
            prefix = "/".join(parts[:i])
            self._purposes.setdefault(prefix, Purpose(prefix))
        return self._purposes[name]

    def get(self, name: str) -> Purpose:
        try:
            return self._purposes[name]
        except KeyError:
            raise PolicyError(f"undeclared purpose {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._purposes

    def all_purposes(self) -> tuple[Purpose, ...]:
        return tuple(sorted(self._purposes.values(), key=lambda p: p.name))

    def allows(self, granted: str, requested: str) -> bool:
        """Does a grant for ``granted`` cover a request for ``requested``?"""
        return self.get(requested).is_descendant_of(self.get(granted))


@dataclass(frozen=True)
class AccessContext:
    """Who is asking, and why: the evaluation context of every policy check."""

    user: User
    purpose: Purpose

    def describe(self) -> str:
        roles = ",".join(sorted(r.name for r in self.user.roles)) or "-"
        return f"{self.user.name}[{roles}] for {self.purpose}"


@dataclass
class SubjectRegistry:
    """All declared users, roles, and purposes of one BI deployment."""

    purposes: PurposeTree = field(default_factory=PurposeTree)
    _users: dict[str, User] = field(default_factory=dict)
    _roles: dict[str, Role] = field(default_factory=dict)

    def add_role(self, name: str) -> Role:
        role = Role(name)
        self._roles[name] = role
        return role

    def add_user(self, name: str, *roles: str) -> User:
        for role in roles:
            if role not in self._roles:
                raise PolicyError(f"undeclared role {role!r} for user {name!r}")
        user = User(name, frozenset(Role(r) for r in roles))
        self._users[name] = user
        return user

    def user(self, name: str) -> User:
        try:
            return self._users[name]
        except KeyError:
            raise PolicyError(f"unknown user {name!r}") from None

    def role(self, name: str) -> Role:
        try:
            return self._roles[name]
        except KeyError:
            raise PolicyError(f"unknown role {name!r}") from None

    def context(self, user: str, purpose: str) -> AccessContext:
        """Build an access context from registered names."""
        return AccessContext(self.user(user), self.purposes.get(purpose))

    def users(self) -> tuple[User, ...]:
        return tuple(self._users[name] for name in sorted(self._users))

    def roles(self) -> tuple[Role, ...]:
        return tuple(self._roles[name] for name in sorted(self._roles))
