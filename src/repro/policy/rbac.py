"""Purpose-aware role-based access control (P-RBAC) baseline.

This is the conventional mechanism the paper's §1 contrasts against:
P3P/EPAL/XACML-style purpose authorizations and P-RBAC (Ni et al., SACMAT
2007) permissions of the form *(role, relation, columns, purpose, context
condition, obligations)*. It is deliberately faithful to what those languages
can say — and therefore cannot say: nothing about aggregation thresholds
over contributor sets, instance-specific (data-valued) conditions evaluated
inside reports, join prohibitions across sources, or integration/cleaning
permissions. :meth:`PRBACPolicy.can_express` makes that gap measurable
(benchmark ABL-PBAC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import PolicyError
from repro.policy.subjects import AccessContext, PurposeTree, Role

__all__ = ["Obligation", "Permission", "Decision", "PRBACPolicy"]


@dataclass(frozen=True)
class Obligation:
    """An action the consumer must perform after access (notify, delete...)."""

    action: str
    detail: str = ""

    def __str__(self) -> str:
        return f"{self.action}({self.detail})" if self.detail else self.action


@dataclass(frozen=True)
class Permission:
    """One P-RBAC grant: a role may read columns of a relation for a purpose.

    ``context_condition`` is a predicate over *context attributes* (a
    name→value dict describing the request environment), not over data rows —
    this is exactly the P-RBAC notion of condition, and the root of the
    expressiveness gap the paper points at.
    """

    role: Role
    relation: str
    columns: frozenset[str]  # empty set = all columns
    purpose: str
    context_condition: tuple[tuple[str, str], ...] = ()  # (attr, required value)
    obligations: tuple[Obligation, ...] = ()

    def covers_columns(self, requested: Iterable[str]) -> bool:
        if not self.columns:
            return True
        return set(requested) <= self.columns

    def condition_holds(self, context_attrs: dict[str, str]) -> bool:
        return all(
            context_attrs.get(attr) == value
            for attr, value in self.context_condition
        )


@dataclass(frozen=True)
class Decision:
    """Outcome of a policy check."""

    allowed: bool
    reason: str
    obligations: tuple[Obligation, ...] = ()

    def __bool__(self) -> bool:
        return self.allowed


@dataclass
class PRBACPolicy:
    """A set of P-RBAC permissions with purpose-tree semantics."""

    purposes: PurposeTree
    permissions: list[Permission] = field(default_factory=list)

    def grant(
        self,
        role: Role | str,
        relation: str,
        columns: Iterable[str] = (),
        *,
        purpose: str,
        context_condition: dict[str, str] | None = None,
        obligations: Iterable[Obligation] = (),
    ) -> Permission:
        """Add a permission; the purpose must be declared in the tree."""
        if purpose not in self.purposes:
            raise PolicyError(f"undeclared purpose {purpose!r}")
        perm = Permission(
            role=role if isinstance(role, Role) else Role(role),
            relation=relation,
            columns=frozenset(columns),
            purpose=purpose,
            context_condition=tuple(sorted((context_condition or {}).items())),
            obligations=tuple(obligations),
        )
        self.permissions.append(perm)
        return perm

    def check(
        self,
        context: AccessContext,
        relation: str,
        columns: Iterable[str],
        *,
        context_attrs: dict[str, str] | None = None,
    ) -> Decision:
        """May ``context`` read ``columns`` of ``relation``?

        A single permission must cover the whole column set (P-RBAC grants
        are per-object, not combinable column-by-column across purposes).
        """
        requested = list(columns)
        attrs = context_attrs or {}
        for perm in self.permissions:
            if perm.relation != relation:
                continue
            if not context.user.has_role(perm.role):
                continue
            if not self.purposes.allows(perm.purpose, context.purpose.name):
                continue
            if not perm.covers_columns(requested):
                continue
            if not perm.condition_holds(attrs):
                continue
            return Decision(
                True,
                f"permitted by grant to role {perm.role} for purpose {perm.purpose}",
                perm.obligations,
            )
        return Decision(False, f"no grant covers {relation}:{sorted(requested)}")

    # -- expressiveness probe (benchmark ABL-PBAC) -------------------------

    #: PLA requirement kinds P-RBAC can state as directly testable checks.
    EXPRESSIBLE_KINDS = frozenset({"attribute_access"})

    #: Kinds it can gesture at via purposes/obligations but cannot *test*
    #: against a concrete report (no data-level or lineage-level hooks).
    APPROXIMATE_KINDS = frozenset({"integration_permission"})

    @classmethod
    def can_express(cls, requirement_kind: str) -> str:
        """Classify a PLA requirement kind: ``testable``/``approximate``/``inexpressible``.

        The five kinds are the paper's §5 annotation list:
        ``attribute_access``, ``aggregation_threshold``, ``anonymization``,
        ``join_permission``, ``integration_permission`` — plus
        ``intensional_condition`` for instance-specific predicates.
        """
        if requirement_kind in cls.EXPRESSIBLE_KINDS:
            return "testable"
        if requirement_kind in cls.APPROXIMATE_KINDS:
            return "approximate"
        return "inexpressible"
