"""Intensional associations between data and privacy metadata.

Implements the mechanism of §3 (Srivastava & Velegrakis, SIGMOD 2007):
privacy metadata lives in separate structures, and its association with data
rows is an *intensional description* — a predicate/query — rather than an
extensional row list. "If a new HIV patient is inserted in the database,
his/her data is automatically associated to the privacy restriction without
any need for additional modification."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import PolicyError
from repro.relational.catalog import Catalog
from repro.relational.expressions import Expr
from repro.relational.table import RowId, Table

__all__ = ["IntensionalAssociation", "MetadataStore"]


@dataclass(frozen=True)
class IntensionalAssociation:
    """Metadata bound to all rows of a table satisfying a condition.

    ``condition`` may reference any column of the target table, including
    columns never shown to consumers (the paper's hidden-HIV-column trick).
    ``metadata`` is an arbitrary payload; PLA layers store restriction
    descriptors in it.
    """

    name: str
    table: str
    condition: Expr
    metadata: Mapping[str, Any]

    def __post_init__(self) -> None:
        if not self.name:
            raise PolicyError("association name must be non-empty")

    def covers(self, row: Mapping[str, Any]) -> bool:
        """Does this association apply to the given row (as a dict)?"""
        return bool(self.condition.evaluate(row))

    def matching_rows(self, table: Table) -> tuple[RowId, ...]:
        """RowIds of ``table`` currently covered — evaluated lazily, so rows
        inserted after the association was defined are covered automatically."""
        if table.name != self.table:
            raise PolicyError(
                f"association {self.name!r} targets {self.table!r}, got {table.name!r}"
            )
        out = []
        for i in range(len(table.rows)):
            prov = table.provenance[i]
            if self.covers(table.row_dict(i)):
                # Base tables have singleton lineage: their own RowId.
                out.extend(sorted(prov.lineage))
        return tuple(out)

    def describe(self) -> str:
        return f"{self.name}: rows of {self.table} where {self.condition} -> {dict(self.metadata)}"


@dataclass
class MetadataStore:
    """Registry of intensional associations, queryable per row.

    The store is the "completely different tables from the data" of §3: the
    source system's tables are untouched, and lookups are computed on demand.
    """

    associations: list[IntensionalAssociation] = field(default_factory=list)

    def add(self, association: IntensionalAssociation) -> IntensionalAssociation:
        if any(a.name == association.name for a in self.associations):
            raise PolicyError(f"association {association.name!r} already defined")
        self.associations.append(association)
        return association

    def for_table(self, table_name: str) -> tuple[IntensionalAssociation, ...]:
        return tuple(a for a in self.associations if a.table == table_name)

    def metadata_for_row(
        self, table_name: str, row: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Merged metadata of every association covering ``row``.

        Later associations win on key conflicts (declaration order is
        precedence order, mirroring policy-stacking practice).
        """
        merged: dict[str, Any] = {}
        for assoc in self.for_table(table_name):
            if assoc.covers(row):
                merged.update(assoc.metadata)
        return merged

    def covered_row_ids(self, catalog: Catalog) -> dict[str, frozenset[RowId]]:
        """Per association name, the RowIds currently covered in ``catalog``."""
        out: dict[str, frozenset[RowId]] = {}
        for assoc in self.associations:
            if assoc.table in catalog and catalog.is_table(assoc.table):
                out[assoc.name] = frozenset(
                    assoc.matching_rows(catalog.table(assoc.table))
                )
            else:
                out[assoc.name] = frozenset()
        return out
