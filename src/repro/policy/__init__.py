"""Policy substrate: subjects, P-RBAC baseline, VPD rewriting, intensional metadata."""

from repro.policy.intensional import IntensionalAssociation, MetadataStore
from repro.policy.rbac import Decision, Obligation, Permission, PRBACPolicy
from repro.policy.subjects import (
    AccessContext,
    Purpose,
    PurposeTree,
    Role,
    SubjectRegistry,
    User,
)
from repro.policy.vpd import ColumnMask, VPDPolicy, VPDRule

__all__ = [
    "AccessContext",
    "ColumnMask",
    "Decision",
    "IntensionalAssociation",
    "MetadataStore",
    "Obligation",
    "PRBACPolicy",
    "Permission",
    "Purpose",
    "PurposeTree",
    "Role",
    "SubjectRegistry",
    "User",
    "VPDPolicy",
    "VPDRule",
]
