"""Exporters: JSON-lines span logs and Prometheus text exposition.

Both formats are part of the observability contract documented in
``docs/OBSERVABILITY.md``: span dictionaries carry a fixed key set, and the
Prometheus rendering is deterministic (metrics sorted by name, samples by
label values) so it can be golden-tested and diffed across runs.
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterable

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span

__all__ = [
    "span_to_dict",
    "spans_to_jsonl",
    "write_jsonl",
    "render_span_tree",
    "render_prometheus",
]


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


def span_to_dict(span: Span) -> dict[str, Any]:
    """The stable JSON shape of one finished span."""
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start": round(span.start_time, 6),
        "wall_ms": round(span.wall_s * 1000.0, 6),
        "cpu_ms": round(span.cpu_s * 1000.0, 6),
        "status": span.status,
        "tags": dict(span.tags),
    }


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per line, in finish order; '' for no spans."""
    return "\n".join(
        json.dumps(span_to_dict(s), sort_keys=True, default=str) for s in spans
    )


def write_jsonl(spans: Iterable[Span], target: str | IO[str]) -> int:
    """Write spans to a path or open file; returns the span count."""
    spans = list(spans)
    text = spans_to_jsonl(spans)
    if text:
        text += "\n"
    if hasattr(target, "write"):
        target.write(text)  # type: ignore[union-attr]
    else:
        with open(target, "w", encoding="utf-8") as fh:  # type: ignore[arg-type]
            fh.write(text)
    return len(spans)


def render_span_tree(spans: Iterable[Span]) -> str:
    """Human-readable per-trace tree, children indented under parents."""
    spans = list(spans)
    by_parent: dict[str | None, list[Span]] = {}
    by_trace: dict[str, list[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
        by_parent.setdefault(span.parent_id, []).append(span)

    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        tags = " ".join(f"{k}={v}" for k, v in sorted(span.tags.items()))
        flag = "" if span.status == "ok" else " !ERROR"
        lines.append(
            f"{'  ' * depth}{span.name}  "
            f"wall={span.wall_s * 1000.0:.3f}ms cpu={span.cpu_s * 1000.0:.3f}ms"
            f"{flag}{('  [' + tags + ']') if tags else ''}"
        )
        for child in by_parent.get(span.span_id, []):
            emit(child, depth + 1)

    for trace_id, members in by_trace.items():
        lines.append(f"trace {trace_id} ({len(members)} span(s))")
        for root in (s for s in members if s.parent_id is None):
            emit(root, 1)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _labelstr(names: tuple[str, ...], values: tuple, extra: str = "") -> str:
    parts = [f'{n}="{_escape(str(v))}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _num(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: list[str] = []
    for metric in registry:
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for labels, value in metric.samples():
                lines.append(
                    f"{metric.name}{_labelstr(metric.labelnames, labels)} {_num(value)}"
                )
        elif isinstance(metric, Histogram):
            for labels, snap in metric.samples():
                cumulative = 0
                for bound, count in snap["buckets"]:
                    cumulative += count
                    le = 'le="' + _num(bound) + '"'
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_labelstr(metric.labelnames, labels, le)} {cumulative}"
                    )
                cumulative += snap["inf"]
                inf = 'le="+Inf"'
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_labelstr(metric.labelnames, labels, inf)} {cumulative}"
                )
                lines.append(
                    f"{metric.name}_sum{_labelstr(metric.labelnames, labels)}"
                    f" {_num(round(snap['sum'], 9))}"
                )
                lines.append(
                    f"{metric.name}_count{_labelstr(metric.labelnames, labels)}"
                    f" {snap['count']}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
