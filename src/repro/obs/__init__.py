"""repro.obs — zero-dependency tracing and metrics for the BI pipeline.

The paper's argument is about *where* in the source → warehouse →
meta-report → report pipeline privacy decisions happen; this package makes
that location observable at runtime. It threads hierarchical spans
(:mod:`repro.obs.trace`) through query execution, ETL, enforcement, and
compliance checking; counts decisions, cache hits, and deliveries in a
process-wide :class:`MetricsRegistry` (:mod:`repro.obs.metrics`); and
exports both as JSON-lines span logs and Prometheus text
(:mod:`repro.obs.export`).

Everything is **off by default** and near-free when disabled: call sites
guard on ``TRACER.active()`` and allocate nothing on the cold path
(``benchmarks/bench_obs_overhead.py`` holds the line at <5% enabled,
unmeasurable disabled). Enable with :func:`enable`, the ``REPRO_OBS``
environment variable, per-config via
:class:`~repro.relational.execconfig.ExecutionConfig(observe=True)`, or the
``repro trace`` / ``repro metrics`` CLI. Audit records carry the trace ID
of the delivery that produced them, linking the tamper-evident disclosure
log back to the exact execution tree.
"""

from __future__ import annotations

import os

from repro.obs.export import (
    render_prometheus,
    render_span_tree,
    span_to_dict,
    spans_to_jsonl,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import TRACER, Span, Tracer
from repro.obs import instrument  # registers built-in metrics + span hook

__all__ = [
    "Span",
    "Tracer",
    "TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricError",
    "DEFAULT_BUCKETS",
    "get_registry",
    "enable",
    "disable",
    "enabled",
    "reset",
    "current_trace_id",
    "span_to_dict",
    "spans_to_jsonl",
    "write_jsonl",
    "render_span_tree",
    "render_prometheus",
    "instrument",
]


def enable() -> None:
    """Turn on tracing and metrics collection process-wide."""
    TRACER.enabled = True


def disable() -> None:
    """Turn observability back off (finished spans are retained)."""
    TRACER.enabled = False


def enabled() -> bool:
    """Is observability currently on?"""
    return TRACER.enabled


def current_trace_id() -> str | None:
    """The trace ID of the innermost open span, if any."""
    return TRACER.current_trace_id()


def reset() -> None:
    """Drop all spans, restart IDs, and zero every metric (registrations
    survive, so module-level handles stay valid). For tests and CLI runs."""
    TRACER.reset()
    get_registry().reset()


def _init_from_env() -> None:
    if os.environ.get("REPRO_OBS", "").strip().lower() in {"1", "true", "yes", "on"}:
        enable()
    cap = os.environ.get("REPRO_OBS_MAX_SPANS", "").strip()
    if cap:
        TRACER.set_max_finished(int(cap))


_init_from_env()
